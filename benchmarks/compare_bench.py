"""Compare two benchmark JSON documents and fail on regression.

Usage::

    python benchmarks/compare_bench.py BENCH_baseline.json new.json \
        [--tolerance 0.30]

Both files are ``REPRO_BENCH_OUT`` documents (see
``benchmarks/conftest.py``).  The comparison is on the **speedup
ratio** per case, not absolute wall time: ratios are dimensionless
(fast path vs DES on the *same* machine in the *same* session), so the
committed baseline transfers across hardware where milliseconds would
not.  A case regresses when its new ratio drops more than
``--tolerance`` (default 30%) below the baseline ratio; cases present
in only one document are reported but do not fail, so adding a case
and committing the refreshed baseline is a one-PR operation.

Exit status: 0 clean, 1 on any regression.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_cases(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)["cases"]


def compare(baseline: dict, new: dict, tolerance: float) -> list[str]:
    """Human-readable regression lines (empty = clean)."""
    regressions = []
    for case in sorted(baseline):
        if case not in new:
            print(f"  ~ {case}: missing from new run (skipped)")
            continue
        old_ratio = baseline[case]["speedup"]
        new_ratio = new[case]["speedup"]
        floor = old_ratio * (1.0 - tolerance)
        status = "ok" if new_ratio >= floor else "REGRESSION"
        print(f"  {'-' if status == 'ok' else '!'} {case}: "
              f"baseline {old_ratio:.2f}x, now {new_ratio:.2f}x "
              f"(floor {floor:.2f}x) {status}")
        if new_ratio < floor:
            regressions.append(
                f"{case}: {old_ratio:.2f}x -> {new_ratio:.2f}x "
                f"(allowed floor {floor:.2f}x)"
            )
    for case in sorted(set(new) - set(baseline)):
        print(f"  + {case}: new case, {new[case]['speedup']:.2f}x "
              f"(no baseline)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed reference JSON")
    parser.add_argument("new", help="freshly measured JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional drop in per-case speedup "
             "(default 0.30 = 30%%)",
    )
    args = parser.parse_args(argv)
    print(f"comparing {args.new} against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    regressions = compare(
        load_cases(args.baseline), load_cases(args.new), args.tolerance
    )
    if regressions:
        print("\nspeedup regressions detected:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
