"""Shared fixtures for the benchmark harness.

Benchmarks operate at a reduced Mandelbrot window (the cluster
calibration keeps the paper's virtual timescale and communication
balance, so table/figure *shapes* are preserved) and print the
regenerated artifact once per session so `pytest benchmarks/
--benchmark-only` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_workload

#: Reduced window used by the benchmark harness (quarter scale).
BENCH_WIDTH = 1000
BENCH_HEIGHT = 500


@pytest.fixture(scope="session")
def bench_workload():
    wl = paper_workload(width=BENCH_WIDTH, height=BENCH_HEIGHT)
    wl.costs()  # warm the cost cache outside the timed region
    return wl
