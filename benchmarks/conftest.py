"""Shared fixtures for the benchmark harness.

Benchmarks operate at a reduced Mandelbrot window (the cluster
calibration keeps the paper's virtual timescale and communication
balance, so table/figure *shapes* are preserved) and print the
regenerated artifact once per session so `pytest benchmarks/
--benchmark-only` doubles as the reproduction report.

Machine-readable output: benchmarks record per-case measurements
through the :func:`bench_record` fixture, and when ``REPRO_BENCH_OUT``
names a file the session writes them there as one JSON document
(``{"cases": {case: {fields...}}}``).  ``BENCH_baseline.json`` at the
repo root is such a document, committed as the reference the CI
bench-smoke job compares against (see ``benchmarks/compare_bench.py``).
"""

from __future__ import annotations

import json
import os
import platform
import sys

import pytest

from repro.experiments import paper_workload

#: Environment variable naming the JSON file the session writes.
ENV_BENCH_OUT = "REPRO_BENCH_OUT"

#: Case -> measurement dict, accumulated across the session.
_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="session")
def bench_record():
    """Record one benchmark case for the session's JSON document."""

    def record(case: str, **fields) -> None:
        _RECORDS[case] = fields

    return record


def pytest_sessionfinish(session, exitstatus):
    out = os.environ.get(ENV_BENCH_OUT)
    if not out or not _RECORDS:
        return
    doc = {
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "cases": {case: _RECORDS[case] for case in sorted(_RECORDS)},
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

#: Reduced window used by the benchmark harness (quarter scale).
BENCH_WIDTH = 1000
BENCH_HEIGHT = 500


@pytest.fixture(scope="session")
def bench_workload():
    wl = paper_workload(width=BENCH_WIDTH, height=BENCH_HEIGHT)
    wl.costs()  # warm the cost cache outside the timed region
    return wl
