"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper artifacts; they quantify the knobs the paper
leaves as parameters:

* FSS rounding mode (the half-even choice that reproduces Table 1);
* ACP scale factor (classic integer division vs the Sec. 5.2 fix);
* sampling frequency ``S_f``;
* CSS chunk-size sweep (communication/imbalance trade-off);
* master service-time sweep (the contention behind the p = 2 dip).
"""

from __future__ import annotations

import pytest

from repro.analysis import chunk_sequence, chunk_stats
from repro.core.acp import AcpModel
from repro.experiments import paper_cluster
from repro.simulation import simulate
from repro.workloads import ReorderedWorkload


class TestFssRounding:
    @pytest.mark.parametrize("rounding", ["half-even", "ceil", "floor"])
    def test_bench_rounding_mode(self, benchmark, rounding):
        sizes = benchmark(
            chunk_sequence, "FSS", 100_000, 8, rounding=rounding
        )
        stats = chunk_stats(sizes)
        assert stats.total == 100_000
        # All modes agree on chunk count to within a couple of stages.
        assert stats.count < 200


class TestAcpScale:
    @pytest.mark.parametrize("scale", [1, 10, 100])
    def test_bench_acp_scale(self, benchmark, bench_workload, scale,
                             capsys):
        """Sec. 5.2-I: scale=1 starves loaded PEs; 10/100 do not."""
        from repro.experiments import overload_pattern

        model = AcpModel(scale=scale)
        cluster = paper_cluster(
            bench_workload, overloaded=overload_pattern(8)
        )
        result = benchmark.pedantic(
            simulate,
            args=("DTSS", bench_workload, cluster),
            kwargs=dict(acp_model=model),
            rounds=2,
            iterations=1,
        )
        assert result.total_iterations == bench_workload.size
        idle = sum(1 for w in result.workers if w.iterations == 0)
        if scale == 1:
            # Classic model: the loaded slow PEs floor to ACP 0 and are
            # excluded -- work concentrates on the remaining PEs.
            assert idle >= 1
        elif scale == 10:
            # The paper's recommended scale: every PE participates.
            assert idle == 0
        else:
            # Over-scaling (A ~ I) collapses chunk granularity: early
            # requesters drain the loop before late ones arrive.  This
            # is why the paper suggests 10, not "as large as possible".
            assert result.total_chunks <= 12
        with capsys.disabled():
            print(f"\n  scale={scale}: T_p={result.t_p:.1f}s, "
                  f"idle PEs={idle}, chunks={result.total_chunks}")


class TestSamplingFrequency:
    @pytest.mark.parametrize("sf", [1, 2, 4, 8, 16])
    def test_bench_sf_sweep(self, benchmark, small_inner, sf, capsys):
        wl = ReorderedWorkload(small_inner, sf=sf)
        cluster = paper_cluster(wl)
        result = benchmark.pedantic(
            simulate, args=("TSS", wl, cluster), rounds=2, iterations=1
        )
        assert result.total_iterations == wl.size
        with capsys.disabled():
            print(f"\n  S_f={sf}: T_p={result.t_p:.1f}s "
                  f"imbalance={result.comp_imbalance():.2f}")

    @pytest.fixture(scope="class")
    def small_inner(self):
        from repro.workloads import MandelbrotWorkload

        wl = MandelbrotWorkload(1000, 500, max_iter=64)
        wl.costs()
        return wl


class TestChunkSizeSweep:
    @pytest.mark.parametrize("k", [1, 8, 64, 256])
    def test_bench_css_k(self, benchmark, bench_workload, k, capsys):
        """CSS trade-off: small k = many messages, big k = imbalance."""
        cluster = paper_cluster(bench_workload)
        result = benchmark.pedantic(
            simulate,
            args=(f"CSS({k})", bench_workload, cluster),
            rounds=2,
            iterations=1,
        )
        assert result.total_iterations == bench_workload.size
        with capsys.disabled():
            print(f"\n  k={k}: T_p={result.t_p:.1f}s "
                  f"chunks={result.total_chunks}")


class TestMasterService:
    @pytest.mark.parametrize("service_ms", [0.1, 1.0, 10.0, 100.0])
    def test_bench_master_service(self, benchmark, bench_workload,
                                  service_ms, capsys):
        """Master contention sweep: service time inflates T_p for
        message-heavy schemes."""
        cluster = paper_cluster(bench_workload)
        cluster.master_service = service_ms / 1000.0
        result = benchmark.pedantic(
            simulate,
            args=("GSS", bench_workload, cluster),
            rounds=2,
            iterations=1,
        )
        assert result.total_iterations == bench_workload.size
        with capsys.disabled():
            print(f"\n  service={service_ms}ms: T_p={result.t_p:.1f}s")
