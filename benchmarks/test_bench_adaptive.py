"""Bench adaptive: the meta-scheduler wrapper must stay ~free.

The adaptive scheduler delegates every ``next_chunk`` to a registry
sub-scheduler and adds per-chunk bookkeeping (span recording, the
speed map) plus per-stage bandit/tuner work.  On a uniform workload
with a single candidate and a single stage it is *decision-equivalent*
to the fixed scheme it wraps (the unit suite proves the ledgers
identical), so the cost difference is pure wrapper overhead.

A wall-clock A/B of two full DES runs cannot resolve a 5% bound on a
noisy CI runner, so the guard composes two stable measurements, the
same way ``test_bench_obs.py`` bounds the disabled-observability path:

* **per-chunk wrapper cost** -- min-of-N pure scheduler drains (no
  DES) of ``adaptive:SS@1`` vs plain ``SS``: 6000 chunk hand-outs per
  drain, so the difference is the bookkeeping itself;
* **reference run cost** -- min-of-N of the fixed-scheme DES run the
  wrapper would ride along with.

The bound: summed wrapper cost over all chunks < 5% of the reference
DES runtime.  SS is the worst case (one chunk per iteration); every
real candidate amortises the same per-chunk cost over larger chunks.
"""

from __future__ import annotations

import time

from repro.core import make
from repro.core.base import WorkerView
from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.workloads import UniformWorkload

#: SS hands out one chunk per iteration: 6000 scheduler round-trips,
#: the worst case for per-chunk wrapper bookkeeping.
WL = UniformWorkload(size=6000, unit=1e-6)
#: Degenerate spec: one candidate, one stage -> same ledger as "SS".
DEGENERATE = "adaptive:SS@1"
MULTI = "adaptive:TSS+FSS+GSS@6"
#: Wrapper overhead bound vs the wrapped fixed scheme's DES run.
OVERHEAD = 0.05


def _cluster(n=4):
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


def _min_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _drain(spec):
    views = [WorkerView(worker_id=i) for i in range(4)]
    sched = make(spec, WL.size, 4)
    i = 0
    chunks = 0
    while True:
        chunk = sched.next_chunk(views[i % 4])
        if chunk is None:
            return chunks
        chunks += 1
        i += 1


def test_degenerate_adaptive_matches_fixed_result():
    """Sanity for the guard below: same chunks, same virtual time."""
    cluster = _cluster()
    fixed = simulate("SS", WL, cluster, fast=False)
    meta = simulate(DEGENERATE, WL, cluster, fast=False)
    assert meta.t_p == fixed.t_p
    assert [(c.worker, c.start, c.stop) for c in meta.chunks] == [
        (c.worker, c.start, c.stop) for c in fixed.chunks
    ]


def test_adaptive_wrapper_overhead_under_5pct(bench_record, capsys):
    cluster = _cluster()
    WL.costs()  # warm the cost cache outside the timed regions
    n_chunks = _drain("SS")
    assert n_chunks == WL.size  # SS really is one chunk per iteration
    fixed_drain = _min_of(lambda: _drain("SS"))
    meta_drain = _min_of(lambda: _drain(DEGENERATE))
    wrapper_cost = max(0.0, meta_drain - fixed_drain)
    des_s = _min_of(lambda: simulate("SS", WL, cluster, fast=False))
    multi_s = _min_of(lambda: simulate(MULTI, WL, cluster, fast=False))
    per_chunk = wrapper_cost / n_chunks
    ratio = wrapper_cost / des_s
    bench_record(
        "adaptive/wrapper-overhead",
        fixed_drain_seconds=round(fixed_drain, 6),
        adaptive_drain_seconds=round(meta_drain, 6),
        per_chunk_seconds=round(per_chunk, 9),
        des_seconds=round(des_s, 6),
        overhead_ratio=round(ratio, 4),
    )
    with capsys.disabled():
        print(
            f"\n[bench adaptive] drain fixed {fixed_drain * 1e3:.1f}ms"
            f"  adaptive {meta_drain * 1e3:.1f}ms  -> wrapper "
            f"{per_chunk * 1e9:.0f}ns/chunk = {ratio:.2%} of the "
            f"{des_s * 1e3:.1f}ms DES run"
        )
    assert wrapper_cost < OVERHEAD * des_s, (
        f"adaptive wrapper bookkeeping costs {wrapper_cost:.4f}s over "
        f"{n_chunks} chunks ({per_chunk * 1e9:.0f}ns/chunk) -- more "
        f"than {OVERHEAD:.0%} of the {des_s:.4f}s fixed-scheme DES run"
    )
    # the multi-candidate run does real extra work (stage rebuilds,
    # bandit updates) but must stay the same order of magnitude
    assert multi_s < 3.0 * des_s + 0.02
