"""Bench batch: the persistent cost cache and run_batch fan-out.

Two perf claims backed here (see ``docs/performance.md``):

* warm cost-profile loads (disk cache, cold process) are orders of
  magnitude cheaper than recomputing the Mandelbrot grid;
* ``run_batch(n_jobs=4)`` over the Figure 4 sweep is bit-identical to
  the serial loop, and on a multi-core host amortises the process
  fan-out (on a single-core CI box the parallel timing only records
  the pool overhead -- the equality assertion is the point there).
"""

from __future__ import annotations

import pytest

from repro import cache
from repro.batch import run_batch
from repro.experiments import figures, paper_workload

# Same reduced window as benchmarks/conftest.py (not importable as a
# module: the benchmark tree is not a package).
BENCH_WIDTH = 1000
BENCH_HEIGHT = 500


@pytest.fixture()
def private_cache(tmp_path):
    """An empty active cache, restored to the previous one after."""
    previous = cache.get_cache()
    store = cache.configure(directory=tmp_path / "bench-cache")
    yield store
    cache._active = previous


def _fresh_workload():
    return paper_workload(width=BENCH_WIDTH, height=BENCH_HEIGHT)


def test_bench_cost_profile_cold(benchmark, private_cache, tmp_path):
    """Full Mandelbrot grid computation: the cost the cache removes."""
    counter = iter(range(10 ** 6))

    def fresh_empty_cache():
        # Every round starts cold: new directory, empty memory layer.
        cache.configure(
            directory=tmp_path / f"cold{next(counter)}"
        )
        return (), {}

    def cold_costs():
        return _fresh_workload().costs()

    costs = benchmark.pedantic(
        cold_costs, setup=fresh_empty_cache, rounds=3, iterations=1,
    )
    assert costs.size == BENCH_WIDTH


def test_bench_cost_profile_warm(benchmark, private_cache):
    """Disk-layer load of the same profile (simulated fresh process)."""
    expected = _fresh_workload().costs()  # prime the disk entry

    def drop_memory_layer():
        private_cache.clear_memory()
        return (), {}

    def warm_costs():
        return _fresh_workload().costs()

    costs = benchmark.pedantic(
        warm_costs, setup=drop_memory_layer, rounds=10, iterations=1,
    )
    assert (costs == expected).all()


def _figure4_grid(workload):
    return figures.speedup_jobs(figures.SIMPLE, True, workload)


def test_bench_figure4_sweep_serial(benchmark, bench_workload):
    grid = _figure4_grid(bench_workload)
    results = benchmark.pedantic(
        run_batch,
        args=([job for _p, _s, job in grid],),
        kwargs=dict(n_jobs=1),
        rounds=3,
        iterations=1,
    )
    assert len(results) == len(grid)


def test_bench_figure4_sweep_parallel(benchmark, bench_workload,
                                      capsys):
    grid = _figure4_grid(bench_workload)
    jobs = [job for _p, _s, job in grid]
    serial = run_batch(jobs, n_jobs=1)
    results = benchmark.pedantic(
        run_batch,
        args=(jobs,),
        kwargs=dict(n_jobs=4),
        rounds=3,
        iterations=1,
    )
    assert [r.t_p for r in results] == [r.t_p for r in serial]
    assert [r.total_chunks for r in results] \
        == [r.total_chunks for r in serial]
    with capsys.disabled():
        print()
        print("Figure 4 sweep: run_batch(n_jobs=4) == serial "
              f"({len(jobs)} jobs, bit-identical)")
