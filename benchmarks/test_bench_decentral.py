"""Bench decentral: master-based vs shared-counter dispatch.

Claims backed here (numbers recorded in ``docs/performance.md``):

* **simulated makespan** at the paper cluster: the decentral engine's
  T_p tracks the master engine's when the master is cheap, and is
  unaffected when the master dispatch cost is inflated 25x -- the
  scenario where the master engine visibly degrades;
* **64-worker scale**: one simulated run at p=64 under SS-heavy claim
  traffic stays in the low milliseconds-per-event range on both
  engines (the decentral engine processes ~2 events per chunk vs the
  master engine's 4-5);
* **real wall-clock**: ``run_decentral`` on OS processes is in the
  same band as ``run_parallel`` for an equivalent chunk plan -- the
  flock'd counter is not a practical bottleneck at paper-cluster
  worker counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decentral import run_decentral, simulate_decentral
from repro.experiments import paper_cluster
from repro.runtime import run_parallel
from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.workloads import SpinWorkload, UniformWorkload

# Same reduced window as benchmarks/conftest.py (not importable as a
# module: the benchmark tree is not a package).
BENCH_WIDTH = 1000
BENCH_HEIGHT = 500

#: Inflated master dispatch cost (s) -- the degradation scenario.
EXPENSIVE_DISPATCH = 5e-3


def _scale_cluster(p: int, master_service: float = 2e-4) -> ClusterSpec:
    nodes = [
        NodeSpec(
            name=f"pe{i}",
            speed=4.4e4 if i % 2 == 0 else 1.66e4,
            latency=1e-4,
        )
        for i in range(p)
    ]
    return ClusterSpec(nodes=nodes, master_service=master_service)


def test_bench_sim_master_paper_cluster(benchmark, bench_workload):
    """Master engine at the paper cluster (baseline for the next two)."""
    cluster = paper_cluster(bench_workload)

    result = benchmark.pedantic(
        lambda: simulate("TSS", bench_workload, cluster),
        rounds=3, iterations=1,
    )
    assert result.total_iterations == bench_workload.size


def test_bench_sim_decentral_paper_cluster(benchmark, bench_workload):
    """Decentral engine, same workload/cluster: comparable event cost."""
    cluster = paper_cluster(bench_workload)

    result = benchmark.pedantic(
        lambda: simulate_decentral("TSS", bench_workload, cluster),
        rounds=3, iterations=1,
    )
    assert sum(c.size for c in result.chunks) == bench_workload.size


def test_bench_sim_decentral_ignores_dispatch_cost(bench_workload):
    """The makespan claim itself, asserted not just timed."""
    cheap = paper_cluster(bench_workload)
    import dataclasses

    dear = dataclasses.replace(cheap, master_service=EXPENSIVE_DISPATCH)
    master_cheap = simulate("TSS", bench_workload, cheap).t_p
    master_dear = simulate("TSS", bench_workload, dear).t_p
    dec_cheap = simulate_decentral("TSS", bench_workload, cheap).t_p
    dec_dear = simulate_decentral("TSS", bench_workload, dear).t_p
    assert master_dear > master_cheap
    assert dec_dear == dec_cheap


@pytest.mark.parametrize("engine", ["master", "decentral"])
def test_bench_sim_64_workers(benchmark, engine):
    """Claim-heavy traffic at p=64 on both engines."""
    wl = UniformWorkload(8192, unit=100.0)
    cluster = _scale_cluster(64)

    def run():
        if engine == "master":
            return simulate("CSS(8)", wl, cluster)
        return simulate_decentral("CSS(8)", wl, cluster)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sum(c.size for c in result.chunks) == wl.size


@pytest.mark.parametrize("runtime", ["master", "decentral"])
def test_bench_runtime_wall_clock(benchmark, runtime):
    """Real OS-process dispatch: counter vs master pipe protocol."""
    wl = SpinWorkload(96, spins=40, veclen=4096)
    serial = wl.execute_serial()

    def run():
        if runtime == "master":
            return run_parallel("FSS", wl, 4).results
        return run_decentral("FSS", wl, 4).results

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    np.testing.assert_array_equal(results, serial)


def test_bench_runtime_hierarchical(benchmark):
    """Leased (MPI+MPI-style) dispatch at the same scale."""
    wl = SpinWorkload(96, spins=40, veclen=4096)
    serial = wl.execute_serial()

    def run():
        return run_decentral("FSS", wl, 4, group_size=2, lease=8).results

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    np.testing.assert_array_equal(results, serial)
