"""Benches for the extensions: AS vs TreeS, replication, failures,
shared segments.

Not paper artifacts -- these quantify the repository's additions so
their costs and effects are on the record next to the reproduction
benches.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_cluster, replicate
from repro.simulation import (
    ClusterSpec,
    NodeSpec,
    simulate,
    simulate_affinity,
    simulate_tree,
)


def test_bench_affinity_vs_trees(benchmark, bench_workload, capsys):
    cluster = paper_cluster(bench_workload)
    result = benchmark.pedantic(
        simulate_affinity,
        args=(bench_workload, cluster),
        kwargs=dict(weighted=True),
        rounds=2,
        iterations=1,
    )
    tree = simulate_tree(bench_workload, cluster, weighted=True,
                         grain=8)
    assert result.total_iterations == bench_workload.size
    with capsys.disabled():
        print(f"\n  AS  T_p={result.t_p:.1f}s steals="
              f"{result.rederivations}")
        print(f"  TreeS T_p={tree.t_p:.1f}s steals="
              f"{tree.rederivations}")


def test_bench_replicated_comparison(benchmark, bench_workload, capsys):
    stats = benchmark.pedantic(
        replicate.replicated_comparison,
        kwargs=dict(
            schemes=("TSS", "DTSS", "DFISS"),
            replications=5,
            workload=bench_workload,
        ),
        rounds=1,
        iterations=1,
    )
    by_name = {s.scheme: s for s in stats}
    assert by_name["DTSS"].mean < by_name["TSS"].mean
    with capsys.disabled():
        print()
        for s in sorted(stats, key=lambda s: s.mean):
            print(f"  {s.scheme:6s} mean={s.mean:5.1f}s "
                  f"std={s.std:4.1f}")


@pytest.mark.parametrize("fail_time", [2.0, 10.0])
def test_bench_failure_recovery(benchmark, bench_workload, fail_time,
                                capsys):
    """Cost of losing a fast PE early vs late in the run."""
    cluster = paper_cluster(bench_workload)
    cluster.nodes[0].fails_at = fail_time
    result = benchmark.pedantic(
        simulate,
        args=("DTSS", bench_workload, cluster),
        rounds=2,
        iterations=1,
    )
    assert result.total_iterations == bench_workload.size
    with capsys.disabled():
        print(f"\n  fast1 dies at t={fail_time}s: "
              f"T_p={result.t_p:.1f}s")


@pytest.mark.parametrize("shared", [False, True])
def test_bench_shared_segment(benchmark, bench_workload, shared,
                              capsys):
    """Switched links vs one shared 10 Mb/s hub for the slow nodes."""
    cluster = paper_cluster(bench_workload)
    if shared:
        for node in cluster.nodes:
            if node.name.startswith("slow"):
                node.segment = "hub10"
    result = benchmark.pedantic(
        simulate,
        args=("TSS", bench_workload, cluster),
        rounds=2,
        iterations=1,
    )
    assert result.total_iterations == bench_workload.size
    with capsys.disabled():
        kind = "shared hub" if shared else "switched"
        print(f"\n  {kind}: T_p={result.t_p:.1f}s")
