"""Bench: analytic fast path vs the discrete-event simulator.

The fault-free benchmark window -- deterministic loads, no chaos, no
collector -- is exactly where million-run sweeps live, and where the
collapsed fast path (:mod:`repro.simulation.fastpath`) replaces the
DES.  Each case times both paths on the quarter-scale Mandelbrot
window, asserts the results are identical (the full bit-identity sweep
lives in ``tests/simulation/test_fastpath.py``; this is the smoke
guard), and records per-sim wall time, sims/sec and the speedup ratio
for the session's ``REPRO_BENCH_OUT`` JSON document.

The in-test floor is deliberately lower than the measured speedups
(master SS ~17x, CSS ~13x on the reference machine -- see
``BENCH_baseline.json``): CI containers are noisy, and the regression
guard proper is ``benchmarks/compare_bench.py`` against the committed
baseline.
"""

from __future__ import annotations

import time

import pytest

from repro.decentral import simulate_decentral
from repro.simulation import ClusterSpec, ConstantLoad, NodeSpec
from repro.simulation.engine import simulate
from repro.workloads import MandelbrotWorkload

#: (scheme, reps, floor).  Chunk-dominated schemes (SS, CSS) carry the
#: 10x headline claim; short-ladder schemes (TSS: ~30 chunks total)
#: are bounded by fixed per-sim overhead and get proportionally lower
#: floors.  Every floor sits well under the measured ratio (see
#: ``BENCH_baseline.json``) so a noisy runner does not flake, yet far
#: above "the fast path is broken".
MASTER_CASES = [
    ("SS", 20, 8.0), ("CSS(4)", 20, 6.0),
    ("FSS", 60, 3.0), ("TSS", 40, 2.5),
]
DECENTRAL_CASES = [
    ("SS", 20, 6.0), ("CSS(4)", 20, 4.0), ("TSS", 40, 1.3),
]


@pytest.fixture(scope="module")
def fast_workload():
    wl = MandelbrotWorkload(width=1000, height=500)
    wl.costs()  # outside the timed region
    return wl


@pytest.fixture(scope="module")
def fast_cluster():
    nodes = [
        NodeSpec(name=f"n{i}", speed=80.0 + 17.0 * i,
                 latency=1e-3 * (1 + i % 3),
                 bandwidth=1.0e6 * (1 + i),
                 load=ConstantLoad(1 + (i % 2)),
                 virtual_power=1.0 + 0.5 * i)
        for i in range(4)
    ]
    return ClusterSpec(nodes=nodes, master_bandwidth=8e6,
                       master_service=2e-4, request_bytes=64.0,
                       reply_bytes=128.0, result_bytes_per_item=40.0)


def _per_sim_seconds(fn, reps):
    """Best-of-3 averaged-over-reps wall time for one simulation."""
    fn()  # warm (cost prefix list, steppers, allocator caches)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def _bench_case(case, run, reps, floor, bench_record, capsys):
    a = run(fast=True)
    b = run(fast=False)
    assert a.t_p == b.t_p and len(a.chunks) == len(b.chunks), case
    fast = _per_sim_seconds(lambda: run(fast=True), reps)
    des = _per_sim_seconds(lambda: run(fast=False),
                           max(3, reps // 4))
    speedup = des / fast
    bench_record(
        case,
        fast_ms=round(fast * 1e3, 4),
        des_ms=round(des * 1e3, 4),
        speedup=round(speedup, 2),
        sims_per_sec=round(1.0 / fast, 1),
    )
    with capsys.disabled():
        print(f"\n{case}: fast {fast * 1e3:.3f}ms "
              f"des {des * 1e3:.3f}ms  {speedup:.1f}x "
              f"({1.0 / fast:.0f} sims/sec)")
    assert speedup >= floor, (
        f"{case}: fast path only {speedup:.1f}x over the DES "
        f"(floor {floor}x)"
    )


@pytest.mark.parametrize("scheme,reps,floor", MASTER_CASES)
def test_bench_fastpath_master(scheme, reps, floor, fast_workload,
                               fast_cluster, bench_record, capsys):
    def run(fast):
        return simulate(scheme, fast_workload, fast_cluster, fast=fast)

    _bench_case(f"master/{scheme}", run, reps, floor, bench_record,
                capsys)


@pytest.mark.parametrize("scheme,reps,floor", DECENTRAL_CASES)
def test_bench_fastpath_decentral(scheme, reps, floor, fast_workload,
                                  fast_cluster, bench_record, capsys):
    def run(fast):
        return simulate_decentral(scheme, fast_workload, fast_cluster,
                                  fast=fast)

    _bench_case(f"decentral/{scheme}", run, reps, floor, bench_record,
                capsys)
