"""Bench F1/F2: the Mandelbrot workload profile and fractal.

Figure 1's content is the per-column basic-computation profile of the
1200x1200 window, original and reordered with ``S_f = 4``.  The timed
kernel is the full vectorized escape-count pass (the library's hottest
numeric path).  The printed artifact is the block-profile series plus
the reordering's smoothing factor.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figures
from repro.workloads import MandelbrotWorkload


def test_bench_figure1_profile(benchmark, capsys):
    data = benchmark.pedantic(
        figures.figure1,
        kwargs=dict(width=1200, height=1200, max_iter=64, sf=4),
        rounds=2,
        iterations=1,
    )
    orig, reord = data["original"], data["reordered"]
    # Figure 1's qualitative content: the profile is strongly irregular
    # and reordering smooths contiguous windows toward the mean.
    assert orig.max() > 3 * orig.min()

    def worst_window(v, w=150):
        sums = np.convolve(v, np.ones(w), mode="valid")
        return sums.max() / (v.mean() * w)

    smoothing = worst_window(orig) / worst_window(reord)
    assert smoothing > 1.0
    with capsys.disabled():
        print()
        print("Figure 1 -- per-column basic computations (1200x1200)")
        print(f"  original : min={orig.min():.0f} max={orig.max():.0f}"
              f" mean={orig.mean():.0f}")
        print(f"  worst-150-column-window smoothing from S_f=4 "
              f"reordering: {smoothing:.2f}x")


def test_bench_figure2_fractal(benchmark, capsys):
    wl = benchmark.pedantic(
        lambda: MandelbrotWorkload(480, 320, max_iter=64).image(),
        rounds=2,
        iterations=1,
    )
    assert wl.shape == (320, 480)
    with capsys.disabled():
        print()
        print("Figure 2 -- Mandelbrot fractal (ASCII, reduced):")
        print(figures.figure2_ascii(width=72, height=24))
