"""Bench F4/F5: speedup of the simple schemes, dedicated/nondedicated.

Timed kernel: the full p in {1, 2, 4, 8} sweep over TSS/FSS/FISS/TFSS/
TreeS.  Shape checks: speedups grow with p, stay under the machine-mix
power cap, and the nondedicated sweep degrades every scheme.
"""

from __future__ import annotations

from repro.experiments import figures


def _check(fig):
    for scheme, points in fig.series.items():
        speedups = [s for _p, _t, s in points]
        assert speedups[-1] > speedups[0]
        assert speedups[-1] <= fig.cap + 0.5


def test_bench_figure4_simple_dedicated(benchmark, bench_workload,
                                        capsys):
    fig = benchmark.pedantic(
        figures.figure4,
        kwargs=dict(workload=bench_workload),
        rounds=2,
        iterations=1,
    )
    _check(fig)
    with capsys.disabled():
        print()
        print(fig.report())


def test_bench_figure5_simple_nondedicated(benchmark, bench_workload,
                                           capsys):
    fig = benchmark.pedantic(
        figures.figure5,
        kwargs=dict(workload=bench_workload),
        rounds=2,
        iterations=1,
    )
    ded = figures.figure4(workload=bench_workload)
    for scheme in fig.series:
        assert fig.series[scheme][-1][2] <= \
            ded.series[scheme][-1][2] + 1e-9
    with capsys.disabled():
        print()
        print(fig.report())
