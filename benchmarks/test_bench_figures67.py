"""Bench F6/F7: speedup of the distributed schemes.

Shape checks from the paper: distributed schemes outscale the simple
ones at p = 8, stay under the Figure 6 power cap (~4.67 for the
3-fast + 5-slow mix), and DTSS scales best (or near-best) in the
nondedicated sweep ("The DTSS scales the best").
"""

from __future__ import annotations

from repro.experiments import figures


def test_bench_figure6_distributed_dedicated(benchmark, bench_workload,
                                             capsys):
    fig = benchmark.pedantic(
        figures.figure6,
        kwargs=dict(workload=bench_workload),
        rounds=2,
        iterations=1,
    )
    simple = figures.figure4(workload=bench_workload)
    dist_best = max(
        pts[-1][2] for name, pts in fig.series.items()
        if name != "TreeS"
    )
    simple_best = max(
        pts[-1][2] for name, pts in simple.series.items()
        if name != "TreeS"
    )
    assert dist_best > simple_best
    assert dist_best <= fig.cap + 0.5
    with capsys.disabled():
        print()
        print(fig.report())


def test_bench_figure7_distributed_nondedicated(benchmark,
                                                bench_workload, capsys):
    fig = benchmark.pedantic(
        figures.figure7,
        kwargs=dict(workload=bench_workload),
        rounds=2,
        iterations=1,
    )
    finals = {
        name: pts[-1][2]
        for name, pts in fig.series.items()
        if name != "TreeS"
    }
    best = max(finals.values())
    # DTSS within 10% of the best master-driven distributed scheme.
    assert finals["DTSS"] >= 0.9 * best
    with capsys.disabled():
        print()
        print(fig.report())
