"""Bench obs: the disabled observability path must stay ~free.

Two guards back the "zero-cost off switch" claim in ``repro.obs``,
applied to every simulation substrate (master DES, decentral counter
engine, tree engine):

* **structural** -- a run without a collector must construct zero
  :class:`~repro.obs.ObsEvent` objects: every emission site gates on
  the falsy :class:`~repro.obs.NullCollector`, so the disabled path
  pays one truth test and nothing else;
* **timing** -- the summed cost of those truth tests stays under 1%
  of the reference simulation's runtime.  The bound composes a
  min-of-N measurement of the gate cost with the run's actual event
  count, which is robust where a direct A/B of two full runs would be
  noise-bound (the gate itself is nanoseconds).

The 1% budget is what lets the analytic fast path (and the DES hot
loop) keep unconditional ``if self.obs:`` guards instead of compiling
two variants of every handler.
"""

from __future__ import annotations

import time
import timeit

import pytest

from repro.decentral import simulate_decentral
from repro.obs import BufferedCollector, ObsEvent, capture
from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.simulation.tree_engine import simulate_tree
from repro.workloads import UniformWorkload

#: Reference run: big enough to dominate per-call overheads.
WL = UniformWorkload(size=4000, unit=1e-6)


def _cluster(n=4):
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


#: substrate name -> run(collector) callable, one per sim engine.
SUBSTRATES = {
    # fast=False pins the DES: the fast path is *rejected* when a
    # collector is attached, so the apples-to-apples gate count must
    # come from the engine that actually runs in both modes.
    "master": lambda collector=None: simulate(
        "TSS", WL, _cluster(), collector=collector, fast=False),
    "decentral": lambda collector=None: simulate_decentral(
        "TSS", WL, _cluster(), collector=collector, fast=False),
    "tree": lambda collector=None: simulate_tree(
        WL, _cluster(), weighted=True, grain=4, collector=collector),
}


def _min_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
def test_disabled_path_constructs_no_events(substrate, monkeypatch):
    run = SUBSTRATES[substrate]
    constructed = []
    orig_init = ObsEvent.__init__

    def counting_init(self, *args, **kwargs):
        constructed.append(1)
        orig_init(self, *args, **kwargs)

    monkeypatch.setattr(ObsEvent, "__init__", counting_init)
    run()
    assert constructed == [], (
        f"{substrate}: disabled run constructed {len(constructed)} "
        f"events -- an emission site is missing its `if self.obs:` gate"
    )
    # sanity: the counter does count when a collector is attached
    with capture() as trace:
        run(collector=trace)
    assert len(constructed) == len(trace.events) > 0


@pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
def test_null_collector_overhead_under_one_percent(substrate):
    run = SUBSTRATES[substrate]
    run_seconds = _min_of(run)
    # events the run *would* emit = gates the disabled run evaluates
    with capture() as trace:
        run(collector=trace)
    gates = len(trace.events)
    # min-of-N cost of one gate as the engines actually write it:
    # `if self.observing:` on the cached plain bool (set once at
    # construction), not a NullCollector.__bool__ method call.
    sim = type("S", (), {})()
    sim.observing = False
    per_gate = min(
        timeit.repeat("(1 if s.observing else 0)",
                      globals={"s": sim}, number=10_000, repeat=5)
    ) / 10_000
    overhead = gates * per_gate
    assert overhead < 0.01 * run_seconds, (
        f"{substrate}: {gates} gates x {per_gate:.2e}s = "
        f"{overhead:.6f}s exceeds 1% of the {run_seconds:.4f}s "
        f"reference run"
    )


def test_buffered_collection_cost_is_bounded():
    """Collection on is allowed to cost more, but not explode: the
    instrumented run stays within 2x of the disabled run."""
    base = _min_of(lambda: SUBSTRATES["master"]())

    def instrumented():
        SUBSTRATES["master"](collector=BufferedCollector())

    assert _min_of(instrumented) < 2.0 * base + 0.05


def test_streaming_overhead_under_five_percent(tmp_path):
    """Live telemetry must be ~free for the job being watched.

    The same service round-trip (submit + wait over a Unix socket,
    warm pool) is timed min-of-N twice: with no subscriber, and with
    an attached watcher whose jobs stream chunk-level events over the
    wire.  Worker-side batching (64 events/frame, flushed off the hot
    loop) plus the bounded fan-out queues must keep the delta under
    5% -- a watcher observes the schedule, it never slows it.  A
    small absolute slack absorbs scheduler jitter on runs this short.
    """
    import asyncio
    import threading

    from repro.runtime.config import RuntimeConfig
    from repro.service import ServiceClient
    from repro.service.server import ServiceConfig, ServiceServer

    spec = {
        "scheme": "TSS",
        "workload": {"kind": "uniform", "size": 200, "unit": 1e-4},
        "cluster": {"workers": 3},
    }
    sock = str(tmp_path / "bench.sock")
    server = ServiceServer(ServiceConfig(
        workers=1, socket_path=sock,
        runtime=RuntimeConfig(poll_timeout=0.05, worker_deadline=20.0,
                              heartbeat_interval=0.2, join_timeout=5.0),
        cache_dir=tmp_path / "cache",
    ))
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve(install_signals=False)),
        daemon=True,
    )
    thread.start()
    client = ServiceClient.connect(sock, tenant="bench",
                                   retry_for=10.0)
    watcher = None
    drainer = None
    try:
        client.run(spec, timeout=120)  # warm the pool + cost cache

        def round_trip():
            assert client.run(spec, timeout=120)["state"] == "done"

        plain = _min_of(round_trip)

        watcher = ServiceClient.connect(sock, tenant="bench")
        watcher.subscribe()

        def drain_frames():
            try:
                while watcher.next_frame(timeout=30.0) is not None:
                    pass
            except Exception:
                pass

        drainer = threading.Thread(target=drain_frames, daemon=True)
        drainer.start()
        streamed = _min_of(round_trip)
    finally:
        try:
            client.drain()
        finally:
            client.close()
            if watcher is not None:
                watcher.close()
        if drainer is not None:
            drainer.join(timeout=10.0)
        thread.join(timeout=30.0)
    assert streamed <= plain * 1.05 + 0.025, (
        f"streaming overhead {streamed - plain:.4f}s on a "
        f"{plain:.4f}s round-trip exceeds the 5% budget"
    )
