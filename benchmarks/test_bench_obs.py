"""Bench obs: the disabled observability path must stay ~free.

Two guards back the "zero-cost off switch" claim in ``repro.obs``,
applied to every simulation substrate (master DES, decentral counter
engine, tree engine):

* **structural** -- a run without a collector must construct zero
  :class:`~repro.obs.ObsEvent` objects: every emission site gates on
  the falsy :class:`~repro.obs.NullCollector`, so the disabled path
  pays one truth test and nothing else;
* **timing** -- the summed cost of those truth tests stays under 1%
  of the reference simulation's runtime.  The bound composes a
  min-of-N measurement of the gate cost with the run's actual event
  count, which is robust where a direct A/B of two full runs would be
  noise-bound (the gate itself is nanoseconds).

The 1% budget is what lets the analytic fast path (and the DES hot
loop) keep unconditional ``if self.obs:`` guards instead of compiling
two variants of every handler.
"""

from __future__ import annotations

import time
import timeit

import pytest

from repro.decentral import simulate_decentral
from repro.obs import BufferedCollector, ObsEvent, capture
from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.simulation.tree_engine import simulate_tree
from repro.workloads import UniformWorkload

#: Reference run: big enough to dominate per-call overheads.
WL = UniformWorkload(size=4000, unit=1e-6)


def _cluster(n=4):
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


#: substrate name -> run(collector) callable, one per sim engine.
SUBSTRATES = {
    # fast=False pins the DES: the fast path is *rejected* when a
    # collector is attached, so the apples-to-apples gate count must
    # come from the engine that actually runs in both modes.
    "master": lambda collector=None: simulate(
        "TSS", WL, _cluster(), collector=collector, fast=False),
    "decentral": lambda collector=None: simulate_decentral(
        "TSS", WL, _cluster(), collector=collector, fast=False),
    "tree": lambda collector=None: simulate_tree(
        WL, _cluster(), weighted=True, grain=4, collector=collector),
}


def _min_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
def test_disabled_path_constructs_no_events(substrate, monkeypatch):
    run = SUBSTRATES[substrate]
    constructed = []
    orig_init = ObsEvent.__init__

    def counting_init(self, *args, **kwargs):
        constructed.append(1)
        orig_init(self, *args, **kwargs)

    monkeypatch.setattr(ObsEvent, "__init__", counting_init)
    run()
    assert constructed == [], (
        f"{substrate}: disabled run constructed {len(constructed)} "
        f"events -- an emission site is missing its `if self.obs:` gate"
    )
    # sanity: the counter does count when a collector is attached
    with capture() as trace:
        run(collector=trace)
    assert len(constructed) == len(trace.events) > 0


@pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
def test_null_collector_overhead_under_one_percent(substrate):
    run = SUBSTRATES[substrate]
    run_seconds = _min_of(run)
    # events the run *would* emit = gates the disabled run evaluates
    with capture() as trace:
        run(collector=trace)
    gates = len(trace.events)
    # min-of-N cost of one gate as the engines actually write it:
    # `if self.observing:` on the cached plain bool (set once at
    # construction), not a NullCollector.__bool__ method call.
    sim = type("S", (), {})()
    sim.observing = False
    per_gate = min(
        timeit.repeat("(1 if s.observing else 0)",
                      globals={"s": sim}, number=10_000, repeat=5)
    ) / 10_000
    overhead = gates * per_gate
    assert overhead < 0.01 * run_seconds, (
        f"{substrate}: {gates} gates x {per_gate:.2e}s = "
        f"{overhead:.6f}s exceeds 1% of the {run_seconds:.4f}s "
        f"reference run"
    )


def test_buffered_collection_cost_is_bounded():
    """Collection on is allowed to cost more, but not explode: the
    instrumented run stays within 2x of the disabled run."""
    base = _min_of(lambda: SUBSTRATES["master"]())

    def instrumented():
        SUBSTRATES["master"](collector=BufferedCollector())

    assert _min_of(instrumented) < 2.0 * base + 0.05
