"""Bench obs: the disabled observability path must stay ~free.

Two guards back the "zero-cost off switch" claim in ``repro.obs``:

* **structural** -- a run without a collector must construct zero
  :class:`~repro.obs.ObsEvent` objects: every emission site gates on
  the falsy :class:`~repro.obs.NullCollector`, so the disabled path
  pays one truth test and nothing else;
* **timing** -- the summed cost of those truth tests stays under 2%
  of the reference simulation's runtime.  The bound composes a
  min-of-N measurement of the gate cost with the run's actual event
  count, which is robust where a direct A/B of two full runs would be
  noise-bound (the gate itself is nanoseconds).
"""

from __future__ import annotations

import time
import timeit

from repro.obs import NULL, BufferedCollector, ObsEvent, capture
from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.workloads import UniformWorkload

#: Reference run: big enough to dominate per-call overheads.
WL = UniformWorkload(size=4000, unit=1e-6)


def _cluster(n=4):
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


def _min_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_path_constructs_no_events(monkeypatch):
    constructed = []
    orig_init = ObsEvent.__init__

    def counting_init(self, *args, **kwargs):
        constructed.append(1)
        orig_init(self, *args, **kwargs)

    monkeypatch.setattr(ObsEvent, "__init__", counting_init)
    simulate("TSS", WL, _cluster())
    assert constructed == [], (
        f"disabled run constructed {len(constructed)} events -- an "
        f"emission site is missing its `if self.obs:` gate"
    )
    # sanity: the counter does count when a collector is attached
    with capture() as trace:
        simulate("TSS", WL, _cluster(), collector=trace)
    assert len(constructed) == len(trace.events) > 0


def test_null_collector_overhead_under_two_percent():
    run_seconds = _min_of(lambda: simulate("TSS", WL, _cluster()))
    # events the run *would* emit = gates the disabled run evaluates
    with capture() as trace:
        simulate("TSS", WL, _cluster(), collector=trace)
    gates = len(trace.events)
    # min-of-N cost of one `if NULL:` truth test
    per_gate = min(
        timeit.repeat("bool(sink)", globals={"sink": NULL},
                      number=10_000, repeat=5)
    ) / 10_000
    overhead = gates * per_gate
    assert overhead < 0.02 * run_seconds, (
        f"{gates} gates x {per_gate:.2e}s = {overhead:.6f}s exceeds "
        f"2% of the {run_seconds:.4f}s reference run"
    )


def test_buffered_collection_cost_is_bounded():
    """Collection on is allowed to cost more, but not explode: the
    instrumented run stays within 2x of the disabled run."""
    base = _min_of(lambda: simulate("TSS", WL, _cluster()))

    def instrumented():
        simulate("TSS", WL, _cluster(), collector=BufferedCollector())

    assert _min_of(instrumented) < 2.0 * base + 0.05
