"""Bench service: framing cost, daemon overhead, pool throughput.

Three claims back the service layer's "thin multiplexer" design (see
``docs/service.md``):

* the wire codec is microseconds per frame -- encode + incremental
  decode of a typical submit document stays far below any job's
  runtime;
* daemon round-trip overhead (connect, submit, wait over a Unix
  socket, against a warm pool) adds bounded latency on top of the
  same job run one-shot in-process;
* a shared pool sustains a stream of small jobs from multiple
  tenants without the ledger or dispatch lock becoming the
  bottleneck (throughput scales with job cost, not bookkeeping).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.runtime.config import RuntimeConfig
from repro.service import ServiceClient
from repro.service.jobs import job_from_spec
from repro.service.pool import JobRecord, WorkerPool
from repro.service.protocol import FrameDecoder, encode_frame
from repro.service.server import ServiceConfig, ServiceServer

SNAPPY = RuntimeConfig(
    poll_timeout=0.05,
    worker_deadline=20.0,
    heartbeat_interval=0.2,
    join_timeout=5.0,
)

SPEC = {
    "scheme": "TSS",
    "workload": {"kind": "uniform", "size": 200, "unit": 1e-4},
    "cluster": {"workers": 3},
}

SUBMIT_DOC = {
    "op": "submit", "seq": 17, "tenant": "bench", "spec": SPEC,
}


def test_bench_frame_codec_roundtrip(benchmark, bench_record):
    """Encode + byte-stream decode of one submit frame."""
    decoder = FrameDecoder()

    def roundtrip():
        return decoder.feed(encode_frame(SUBMIT_DOC))

    docs = benchmark(roundtrip)
    assert docs == [
        {"op": "submit", "seq": 17, "tenant": "bench", "spec": SPEC}
    ]
    bench_record(
        "service_frame_roundtrip",
        seconds=benchmark.stats.stats.mean,
    )


def test_bench_daemon_round_trip_overhead(
    benchmark, bench_record, tmp_path
):
    """submit+wait through a live daemon vs the one-shot run."""
    import time

    job = job_from_spec(SPEC)
    t0 = time.perf_counter()
    job.run()
    one_shot = time.perf_counter() - t0

    sock = str(tmp_path / "bench.sock")
    server = ServiceServer(ServiceConfig(
        workers=1, socket_path=sock, runtime=SNAPPY,
        cache_dir=tmp_path / "cache",
    ))
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve(install_signals=False)),
        daemon=True,
    )
    thread.start()
    client = ServiceClient.connect(sock, tenant="bench", retry_for=10.0)
    try:
        client.run(SPEC, timeout=120)  # warm the pool + cost cache

        def round_trip():
            out = client.run(SPEC, timeout=120)
            assert out["state"] == "done"
            return out

        out = benchmark.pedantic(round_trip, rounds=5, iterations=1)
        assert out["digest"]
        service = benchmark.stats.stats.min
        bench_record(
            "service_round_trip",
            one_shot_seconds=one_shot,
            service_seconds=service,
            overhead_seconds=max(0.0, service - one_shot),
        )
    finally:
        try:
            client.drain()
        finally:
            client.close()
        thread.join(timeout=30.0)


def test_bench_pool_throughput_small_jobs(benchmark, bench_record):
    """A burst of small jobs from 3 tenants through a 2-slot pool."""
    n_jobs = 12

    def burst():
        done = []
        event = threading.Event()

        def on_complete(record):
            done.append(record)
            if len(done) == n_jobs:
                event.set()

        with WorkerPool(size=2, config=SNAPPY,
                        on_complete=on_complete) as pool:
            for i in range(n_jobs):
                pool.submit(JobRecord(
                    job_id=f"j{i}", tenant=f"t{i % 3}",
                    job=job_from_spec(SPEC),
                ))
            assert event.wait(timeout=120.0)
        assert all(r.state == "done" for r in done)
        return len(done)

    count = benchmark.pedantic(burst, rounds=3, iterations=1)
    assert count == n_jobs
    bench_record(
        "service_pool_burst",
        jobs=n_jobs,
        seconds=benchmark.stats.stats.min,
        jobs_per_second=n_jobs / benchmark.stats.stats.min,
    )
