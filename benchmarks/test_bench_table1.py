"""Bench T1: regenerate the paper's Table 1 (chunk-size rows).

Run with ``pytest benchmarks/test_bench_table1.py --benchmark-only``.
The timed kernel is the full analytic chunk-trace generation for every
scheme; the printed artifact is the paper-layout table with the
verbatim-match check.
"""

from __future__ import annotations

from repro.analysis import table1_rows
from repro.experiments import table1


def test_bench_table1_rows(benchmark, capsys):
    rows = benchmark(table1_rows, 1000, 4)
    for scheme, expected in table1.PAPER_TABLE1.items():
        assert rows[scheme][: len(expected)] == expected
    with capsys.disabled():
        print()
        print(table1.report())


def test_bench_table1_large_instance(benchmark):
    # Scheduling-decision throughput at a realistic loop size.
    rows = benchmark(table1_rows, 100_000, 16)
    assert sum(rows["FSS"]) == 100_000
