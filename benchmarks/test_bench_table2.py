"""Bench T2: the paper's Table 2 (simple schemes, p = 8, ded/nonded).

The timed kernel simulates all five Table 2 columns on the paper
cluster; the printed artifact is the two table halves in the paper's
layout, plus the shape checks the paper's prose makes:

* TSS/TFSS post the best master-scheme ``T_p`` (paper: "TSS performed
  best, followed by TFSS");
* the execution is *not* well balanced across the heterogeneous PEs.
"""

from __future__ import annotations

from repro.analysis import format_time_table
from repro.experiments import table2


def test_bench_table2_dedicated(benchmark, bench_workload, capsys):
    results = benchmark.pedantic(
        table2.run,
        kwargs=dict(workload=bench_workload, dedicated=True),
        rounds=3,
        iterations=1,
    )
    master = {k: v.t_p for k, v in results.items() if k != "TreeS"}
    assert min(master, key=master.get) in ("TSS", "TFSS")
    with capsys.disabled():
        print()
        print("Table 2 (Dedicated, quarter scale)")
        print(format_time_table(results))


def test_bench_table2_nondedicated(benchmark, bench_workload, capsys):
    results = benchmark.pedantic(
        table2.run,
        kwargs=dict(workload=bench_workload, dedicated=False),
        rounds=3,
        iterations=1,
    )
    for res in results.values():
        assert res.total_iterations == bench_workload.size
    with capsys.disabled():
        print()
        print("Table 2 (NonDedicated, quarter scale)")
        print(format_time_table(results))
