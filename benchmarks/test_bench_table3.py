"""Bench T3: the paper's Table 3 (distributed schemes, p = 8).

Timed kernel: all five Table 3 columns on the paper cluster.  Shape
checks from the paper's prose:

* distributed schemes beat their simple counterparts' ``T_p``;
* computation times are well balanced across the heterogeneous PEs;
* DTSS is the best (or ties the best) master-driven distributed scheme.
"""

from __future__ import annotations

from repro.analysis import format_time_table
from repro.experiments import table2, table3


def test_bench_table3_dedicated(benchmark, bench_workload, capsys):
    results = benchmark.pedantic(
        table3.run,
        kwargs=dict(workload=bench_workload, dedicated=True),
        rounds=3,
        iterations=1,
    )
    simple = table2.run(workload=bench_workload, dedicated=True)
    pairs = [("TSS", "DTSS"), ("FSS", "DFSS"), ("FISS", "DFISS"),
             ("TFSS", "DTFSS")]
    wins = sum(results[d].t_p < simple[s].t_p for s, d in pairs)
    assert wins >= 3
    assert results["DTSS"].comp_imbalance() \
        < simple["TSS"].comp_imbalance()
    with capsys.disabled():
        print()
        print("Table 3 (Dedicated, quarter scale)")
        print(format_time_table(results))


def test_bench_table3_nondedicated(benchmark, bench_workload, capsys):
    results = benchmark.pedantic(
        table3.run,
        kwargs=dict(workload=bench_workload, dedicated=False),
        rounds=3,
        iterations=1,
    )
    master = {k: v.t_p for k, v in results.items() if k != "TreeS"}
    best = min(master, key=master.get)
    assert best in ("DTSS", "DTFSS")
    with capsys.disabled():
        print()
        print("Table 3 (NonDedicated, quarter scale)")
        print(format_time_table(results))
