"""Extending the library: write, register, and evaluate a new scheme.

Run:  python examples/custom_scheme.py

Implements a scheme the paper does *not* have -- "QSS", quadratic
self-scheduling, whose chunks decrease quadratically instead of TSS's
linear ramp -- registers it, and then puts it through the full
evaluation pipeline unchanged: Table-1-style chunk trace, simulated
heterogeneous cluster (vs TSS/TFSS/DTSS), and a real multiprocessing
run verified against serial.  Everything works because schemes are
pure policies behind one interface.
"""

from __future__ import annotations

import numpy as np

from repro import drain, make, paper_cluster, paper_workload, simulate
from repro.core import Scheduler, WorkerView, register
from repro.runtime import run_parallel


class QuadraticScheduler(Scheduler):
    """QSS: chunk i is proportional to the square of the steps left.

    With ``N = 2p`` planned steps, step ``i`` gets
    ``C_i ~ (N - i + 1)^2`` scaled to cover ``I`` -- a steeper front
    ramp than TSS and a gentler tail than GSS.
    """

    name = "QSS"

    def __init__(self, total: int, workers: int) -> None:
        super().__init__(total, workers)
        steps = max(2 * workers, 2)
        weights = [(steps - i) ** 2 for i in range(steps)]
        scale = total / sum(weights) if weights else 0.0
        self._plan = [max(1, int(w * scale)) for w in weights]
        self._step_idx = 0

    def _chunk_size(self, worker: WorkerView) -> int:
        if self._step_idx < len(self._plan):
            size = self._plan[self._step_idx]
            self._step_idx += 1
            return size
        # Plan exhausted (rounding leftovers): GSS-style tail.
        return max(1, self.remaining // (2 * self.workers))


def main() -> None:
    register("QSS", QuadraticScheduler)

    print("QSS chunk trace for I = 1000, p = 4:")
    sizes = [c.size for c in drain(make("QSS", 1000, 4))]
    print(f"  {sizes}  (sum = {sum(sizes)})\n")

    workload = paper_workload(width=800, height=400)
    cluster = paper_cluster(workload)
    print("Simulated on the paper cluster (3 fast + 5 slow):")
    for name in ("QSS", "TSS", "TFSS", "DTSS"):
        result = simulate(name, workload, cluster)
        print(f"  {name:5s} T_p = {result.t_p:6.1f}s  "
              f"chunks = {result.total_chunks:3d}  "
              f"imbalance = {result.comp_imbalance():.2f}")
    print()

    small = paper_workload(width=200, height=100)
    run = run_parallel("QSS", small, 3)
    serial = small.execute_serial()
    ok = np.array_equal(
        np.asarray(run.results).reshape(serial.shape), serial
    )
    print(f"Real multiprocessing run: {run.elapsed:.2f}s on 3 workers, "
          f"results identical to serial: {ok}")


if __name__ == "__main__":
    main()
