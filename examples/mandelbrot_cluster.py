"""The paper's experiment end-to-end: Mandelbrot on the Sun cluster.

Run:  python examples/mandelbrot_cluster.py [--width 2000 --height 1000]

Reproduces the full Sec. 5/6 pipeline at a configurable scale:

  1. build the Mandelbrot column workload and reorder it with S_f = 4;
  2. simulate every simple and distributed scheme (plus TreeS) on the
     3-fast + 5-slow cluster, dedicated and nondedicated;
  3. verify each scheduled run reproduces the serial result exactly;
  4. render the fractal (Figure 2) as ASCII art.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import paper_cluster, paper_workload, simulate, simulate_tree
from repro.experiments.config import overload_pattern
from repro.workloads import render_ascii

SIMPLE = ("TSS", "FSS", "FISS", "TFSS")
DISTRIBUTED = ("DTSS", "DFSS", "DFISS", "DTFSS")


def run_family(workload, cluster, schemes, weighted_tree: bool):
    rows = []
    serial = workload.execute_serial()
    for name in schemes:
        result = simulate(name, workload, cluster, collect_results=True)
        got = np.asarray(result.results).reshape(serial.shape)
        assert np.array_equal(got, serial), f"{name} corrupted results"
        rows.append((name, result))
    tree = simulate_tree(workload, cluster, weighted=weighted_tree,
                         grain=8, collect_results=True)
    got = np.asarray(tree.results).reshape(serial.shape)
    assert np.array_equal(got, serial), "TreeS corrupted results"
    rows.append(("TreeS", tree))
    return rows


def report(rows, title: str) -> None:
    print(title)
    for name, result in rows:
        workers = result.workers
        waits = sum(w.t_wait for w in workers) / len(workers)
        comms = sum(w.t_com for w in workers) / len(workers)
        print(
            f"  {name:6s} T_p = {result.t_p:6.1f}s  "
            f"avg T_com = {comms:5.1f}s  avg T_wait = {waits:5.1f}s  "
            f"imbalance = {result.comp_imbalance():.2f}"
        )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=1000)
    parser.add_argument("--height", type=int, default=500)
    parser.add_argument("--sf", type=int, default=4)
    args = parser.parse_args()

    workload = paper_workload(width=args.width, height=args.height,
                              sf=args.sf)
    print(
        f"Mandelbrot {args.width}x{args.height}, S_f={args.sf}: "
        f"{workload.size} column tasks, "
        f"{workload.total_cost():.3g} basic computations\n"
    )

    dedicated = paper_cluster(workload)
    report(
        run_family(workload, dedicated, SIMPLE, weighted_tree=False),
        "Simple schemes, dedicated (every run verified against serial):",
    )
    report(
        run_family(workload, dedicated, DISTRIBUTED, weighted_tree=True),
        "Distributed schemes, dedicated:",
    )

    overloaded = paper_cluster(workload, overloaded=overload_pattern(8))
    report(
        run_family(workload, overloaded, SIMPLE, weighted_tree=False),
        "Simple schemes, nondedicated (1 fast + 3 slow PEs overloaded):",
    )
    report(
        run_family(workload, overloaded, DISTRIBUTED,
                   weighted_tree=True),
        "Distributed schemes, nondedicated:",
    )

    print("Figure 2 (the fractal itself):")
    from repro.workloads import MandelbrotWorkload

    thumb = MandelbrotWorkload(76, 28, max_iter=48)
    print(render_ascii(thumb.image()))


if __name__ == "__main__":
    main()
