"""MPI smoke test: a Mandelbrot strip across real MPI ranks.

Run:  mpiexec -n 3 python examples/mpi_mandelbrot.py [--scheme TSS]

The paper's actual substrate is MPI; this script drives the optional
mpi4py backend (:func:`repro.runtime.run_mpi`) on a small Mandelbrot
strip -- rank 0 is the master, the other ranks self-schedule columns --
and verifies the reassembled escape counts bit-for-bit against the
serial loop.  Exits non-zero on any mismatch, so CI can gate on it.

Without mpi4py installed (the default offline environment) the script
prints the graceful-degradation message and exits 0: the multiprocessing
backend (``examples/real_multiprocessing.py``) covers the same protocol
without MPI.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.runtime import have_mpi, run_mpi
from repro.workloads import MandelbrotWorkload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scheme", default="TSS")
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=80)
    args = parser.parse_args()

    if not have_mpi():
        print("mpi4py not installed; skipping the MPI smoke test "
              "(use examples/real_multiprocessing.py instead)")
        return 0

    from mpi4py import MPI

    comm = MPI.COMM_WORLD
    if comm.Get_size() < 2:
        print("launch with mpiexec -n 3 (need a master and >= 1 worker)")
        return 2

    workload = MandelbrotWorkload(args.width, args.height, max_iter=64)
    results = run_mpi(args.scheme, workload)
    if comm.Get_rank() != 0:
        return 0  # workers are done once the master releases them
    serial = workload.execute_serial()
    if not np.array_equal(results, serial):
        print(f"FAIL: {args.scheme} results diverge from serial")
        return 1
    print(
        f"OK: {args.scheme} on {comm.Get_size() - 1} MPI workers, "
        f"{workload.size} columns bit-identical to serial"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
