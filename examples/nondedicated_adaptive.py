"""Adaptive scheduling under changing load -- the DTSS design case.

Run:  python examples/nondedicated_adaptive.py

The paper motivates DTSS's re-derivation rule with the scenario where
"a new user logs in to the system and starts a computational resources
expensive task on some of the processors" mid-run.  This example builds
exactly that scenario with a StepLoad trace, then a noisy RandomLoad
one, and shows:

  * the simple TSS ignores the event and stalls on the loaded PEs;
  * DTSS re-derives its trapezoid over the remaining iterations (the
    `rederivations` counter) and keeps the cluster balanced;
  * the ACP availability threshold (`A_min`) can fence off PEs that are
    too loaded to be worth using.
"""

from __future__ import annotations

from repro import paper_workload, simulate
from repro.core.acp import AcpModel
from repro.simulation import ClusterSpec, NodeSpec, RandomLoad, StepLoad


def build_cluster(workload, traces) -> ClusterSpec:
    """Four equal PEs whose load follows the given traces."""
    speed = workload.total_cost() / 60.0  # serial = 60 virtual seconds
    nodes = [
        NodeSpec(name=f"pe{i}", speed=speed, bandwidth=1.25e7,
                 load=trace)
        for i, trace in enumerate(traces)
    ]
    return ClusterSpec(nodes=nodes, master_service=1e-3,
                       result_bytes_per_item=8000.0)


def login_storm() -> None:
    """A batch job lands on every machine of the cluster at t = 6s.

    All eight ACPs change, which crosses DTSS's "more than half" rule:
    the master re-derives its trapezoid over the *remaining* iterations
    with the up-to-date power picture.  (A shock confined to PEs that
    are mid-way through large chunks cannot trigger the rule until
    those chunks complete -- the majority must *report* the change --
    which is exactly the trade-off the paper's rule makes between
    responsiveness and parameter-churn.)
    """
    workload = paper_workload(width=1000, height=500)
    speed = workload.total_cost() / 60.0
    nodes = [
        NodeSpec(name=f"fast{i}", speed=speed, bandwidth=1.25e7,
                 load=StepLoad([(6.0, 3)]))
        for i in range(3)
    ] + [
        NodeSpec(name=f"slow{i}", speed=speed / 3, bandwidth=1.25e6,
                 load=StepLoad([(6.0, 3)]))
        for i in range(5)
    ]
    cluster = ClusterSpec(nodes=nodes, master_service=1e-3,
                          result_bytes_per_item=8000.0)
    print("Scenario 1: a batch job hits all 8 PEs (3 fast + 5 slow) "
          "at t = 6s")
    for name in ("TSS", "DTSS", "DFSS", "DFISS"):
        result = simulate(name, workload, cluster)
        extra = (
            f"  re-derivations = {result.rederivations}"
            if name != "TSS"
            else ""
        )
        print(f"  {name:6s} T_p = {result.t_p:6.1f}s"
              f"  imbalance = {result.comp_imbalance():.2f}{extra}")
    print()


def noisy_cluster() -> None:
    """Every PE has random busy periods (seeded, reproducible)."""
    workload = paper_workload(width=1000, height=500)
    traces = [
        RandomLoad(seed=i, arrival_rate=0.08, mean_duration=6.0)
        for i in range(4)
    ]
    print("Scenario 2: random background busy periods on every PE")
    for name in ("TSS", "FSS", "DTSS", "DFSS"):
        result = simulate(name, workload,
                          build_cluster(workload, traces))
        print(f"  {name:6s} T_p = {result.t_p:6.1f}s"
              f"  imbalance = {result.comp_imbalance():.2f}")
    print()


def availability_fence() -> None:
    """A_min: refuse to schedule onto drowned PEs (paper Sec. 5.2-I)."""
    workload = paper_workload(width=1000, height=500)
    speed = workload.total_cost() / 60.0
    nodes = [
        NodeSpec(name="healthy0", speed=speed, bandwidth=1.25e7),
        NodeSpec(name="healthy1", speed=speed, bandwidth=1.25e7),
        NodeSpec(name="drowned", speed=speed, bandwidth=1.25e7,
                 load=StepLoad([], initial=8)),  # Q = 8 forever
    ]
    cluster = ClusterSpec(nodes=nodes, result_bytes_per_item=8000.0)
    print("Scenario 3: one PE is drowning under Q = 8")
    for a_min in (1, 3):
        model = AcpModel(scale=10, a_min=a_min)
        result = simulate("DTSS", workload, cluster, acp_model=model)
        used = [w.name for w in result.workers if w.iterations]
        print(f"  A_min = {a_min}: T_p = {result.t_p:6.1f}s, "
              f"PEs used = {used}")


if __name__ == "__main__":
    login_storm()
    noisy_cluster()
    availability_fence()
