"""Quickstart: chunk policies and a first simulated run.

Run:  python examples/quickstart.py

Walks the library's three layers in ~40 lines of user code:
  1. schemes as pure chunk policies (the paper's Table 1);
  2. a simulated heterogeneous cluster run (T_com/T_wait/T_comp);
  3. simple vs distributed scheduling on the same cluster.
"""

from __future__ import annotations

from repro import drain, make, paper_cluster, paper_workload, simulate


def show_chunk_policies() -> None:
    """The paper's Table 1: chunk sizes for I = 1000, p = 4."""
    print("Chunk sizes for I = 1000, p = 4")
    for name in ("S", "GSS", "TSS", "FSS", "FISS", "TFSS"):
        scheduler = make(name, total=1000, workers=4)
        sizes = [chunk.size for chunk in drain(scheduler)]
        print(f"  {name:5s} {sizes}")
    print()


def simulate_one_run() -> None:
    """TFSS (the paper's new scheme) on the paper's 8-slave cluster."""
    workload = paper_workload(width=800, height=400)  # Mandelbrot
    cluster = paper_cluster(workload)  # 3 fast + 5 slow, calibrated
    result = simulate("TFSS", workload, cluster)
    print("One simulated TFSS run on the paper cluster:")
    print(result.summary())
    print()


def simple_vs_distributed() -> None:
    """The paper's headline: ACP-aware schemes balance the cluster."""
    workload = paper_workload(width=800, height=400)
    cluster = paper_cluster(workload)
    print("Simple vs distributed on 3 fast + 5 slow PEs:")
    for name in ("TSS", "DTSS", "FSS", "DFSS"):
        result = simulate(name, workload, cluster)
        print(
            f"  {name:5s} T_p = {result.t_p:6.1f}s  "
            f"comp imbalance = {result.comp_imbalance():.2f}  "
            f"chunks = {result.total_chunks}"
        )


if __name__ == "__main__":
    show_chunk_policies()
    simulate_one_run()
    simple_vs_distributed()
