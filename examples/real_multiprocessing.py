"""Real parallel execution: the MPI-style runtime on OS processes.

Run:  python examples/real_multiprocessing.py [--workers 4]

Where the other examples *simulate* a cluster, this one actually runs
the master--worker protocol on local processes (the mpi4py stand-in):

  1. a serial baseline of the Mandelbrot loop;
  2. parallel runs under several schemes, each verified bit-for-bit
     against the serial result (chunks are piggy-backed and
     reassembled, exactly the paper's protocol);
  3. a heterogeneous run with emulated slow workers (slowdown factors);
  4. a nondedicated run with the paper's matrix-add background load.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.runtime import (
    BackgroundLoad,
    WorkerSpec,
    run_parallel,
    run_serial,
)
from repro.workloads import MandelbrotWorkload, ReorderedWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--width", type=int, default=600)
    parser.add_argument("--height", type=int, default=400)
    args = parser.parse_args()

    def fresh() -> ReorderedWorkload:
        return ReorderedWorkload(
            MandelbrotWorkload(args.width, args.height, max_iter=128),
            sf=4,
        )

    # Time the serial baseline on its own instance: the Mandelbrot
    # workload memoizes computed columns, and a pre-warmed cache would
    # be pickled into the workers and fake the parallel timings.
    serial, serial_t = run_serial(fresh())
    workload = fresh()  # cold instance shipped to the workers
    print(f"Serial: {serial_t:.2f}s for {workload.size} column tasks\n")

    print(f"Parallel on {args.workers} workers "
          "(every run verified against serial):")
    for scheme in ("CSS(8)", "GSS", "TSS", "FSS", "TFSS", "DTSS"):
        run = run_parallel(scheme, workload, args.workers)
        got = np.asarray(run.results).reshape(serial.shape)
        assert np.array_equal(got, serial), f"{scheme} mismatch!"
        print(f"  {scheme:7s} {run.elapsed:5.2f}s  "
              f"speedup {serial_t / run.elapsed:4.1f}x  "
              f"chunks {run.total_chunks:4d}")
    print()

    print("Emulated heterogeneity (worker 0 runs 3x slower):")
    specs = [WorkerSpec(slowdown=3.0, virtual_power=1.0)] + [
        WorkerSpec(virtual_power=3.0)
        for _ in range(args.workers - 1)
    ]
    for scheme in ("TSS", "DTSS"):
        run = run_parallel(scheme, workload, args.workers, specs=specs)
        got = np.asarray(run.results).reshape(serial.shape)
        assert np.array_equal(got, serial)
        per_worker = {w: 0 for w in range(args.workers)}
        for wid, start, stop in run.chunks:
            per_worker[wid] += stop - start
        print(f"  {scheme:5s} {run.elapsed:5.2f}s  "
              f"iterations/worker = {list(per_worker.values())}")
    print()

    print("Nondedicated: two matrix-add stressors running "
          "(the paper's load):")
    with BackgroundLoad(processes=2, size=600):
        run = run_parallel("DTSS", workload, args.workers)
    got = np.asarray(run.results).reshape(serial.shape)
    assert np.array_equal(got, serial)
    print(f"  DTSS under load: {run.elapsed:.2f}s "
          f"(dedicated serial was {serial_t:.2f}s)")


if __name__ == "__main__":
    main()
