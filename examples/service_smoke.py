"""Multi-tenant service smoke: daemon, chaos, digests, drain.

Run:  python examples/service_smoke.py [--workers 2]

This is the CI ``service`` job's scenario, runnable locally:

  1. start a real ``repro-service`` daemon as a subprocess;
  2. connect two tenants (alice, bob) on separate sockets;
  3. compute each job's *one-shot* canonical stream digest in this
     process -- the reference the service must hit bit-for-bit;
  4. submit alice's (slow) job, SIGKILL the pool worker executing it
     mid-loop, and submit bob's job while the pool recovers;
  5. assert: alice's job re-executed exactly once (requeues == 1,
     ledger audit clean) and BOTH digests equal their one-shot
     references -- a fault in one tenant's job must not perturb any
     tenant's results, including the victim's own;
  6. SIGTERM the daemon and assert it drains gracefully (exit 0).
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.obs import stream_digest
from repro.service import ServiceClient
from repro.service.jobs import job_from_spec
from repro.verify import audit_service_log

# "Slow" = wall-clock slow inside the worker: SS over a large loop
# keeps the DES busy ~2s, a wide window to SIGKILL mid-job.
SLOW = {
    "scheme": "SS",
    "workload": {"kind": "uniform", "size": 60000, "unit": 1e-4},
    "cluster": {"workers": 2},
    "tag": "alice-victim",
}
FAST = {
    "scheme": "TSS",
    "workload": {"kind": "uniform", "size": 400, "unit": 1e-4},
    "cluster": {"workers": 4},
    "tag": "bob-bystander",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    print("== one-shot reference digests ==")
    ref_slow = stream_digest(job_from_spec(SLOW).run().obs_events)
    ref_fast = stream_digest(job_from_spec(FAST).run().obs_events)
    print(f"   alice (slow): {ref_slow[:16]}…")
    print(f"   bob   (fast): {ref_fast[:16]}…")

    sock = os.path.join(tempfile.mkdtemp(), "repro.sock")
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "serve",
            "--socket", sock, "--workers", str(args.workers),
        ],
        env={**os.environ,
             "PYTHONPATH": os.environ.get("PYTHONPATH", "src")},
    )
    try:
        alice = ServiceClient.connect(sock, tenant="alice",
                                      retry_for=15.0)
        bob = ServiceClient.connect(sock, tenant="bob", retry_for=5.0)
        print(f"== daemon up (pid {daemon.pid}) ==")

        jid_a = alice.submit(SLOW)
        # Wait until alice's job is actually on a worker, then find
        # the slot from the ledger and SIGKILL it mid-loop.
        slot = None
        deadline = time.monotonic() + 15.0
        while slot is None and time.monotonic() < deadline:
            for entry in alice.log():
                if entry["ev"] == "assign" and entry["job"] == jid_a:
                    slot = entry["worker"]
            if slot is None:
                time.sleep(0.05)
        assert slot is not None, "alice's job never got assigned"
        assert alice.kill_worker(slot), "victim slot had no live worker"
        print(f"== SIGKILLed slot {slot} while it ran alice's job ==")

        jid_b = bob.submit(FAST)
        out_b = bob.wait(jid_b, timeout=120)
        out_a = alice.wait(jid_a, timeout=240)

        print(f"   alice: state={out_a['state']} "
              f"requeues={out_a['requeues']}")
        print(f"   bob:   state={out_b['state']} "
              f"requeues={out_b['requeues']}")
        assert out_a["state"] == "done", out_a
        assert out_a["requeues"] >= 1, \
            "the kill must have forced at least one requeue"
        assert out_a["digest"] == ref_slow, \
            "victim tenant's digest diverged from one-shot"
        assert out_b["digest"] == ref_fast, \
            "bystander tenant's digest was perturbed by the fault"

        report = audit_service_log(alice.log())
        print("   " + report.summary().splitlines()[0])
        report.raise_if_failed()

        metrics = alice.metrics()
        assert metrics["worker_deaths_total"]["value"] >= 1
        print("== digests bit-equal, ledger audit clean ==")

        alice.close()
        bob.close()
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=60)
        assert code == 0, f"daemon exited {code} on SIGTERM drain"
        print("== SIGTERM drain: clean exit ==")
        print("service smoke: PASS")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
