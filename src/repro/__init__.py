"""repro -- loop self-scheduling for heterogeneous clusters.

A from-scratch Python reproduction of Chronopoulos, Andonie, Benche &
Grosu, *A Class of Loop Self-Scheduling for Heterogeneous Clusters*
(IEEE CLUSTER 2001):

* :mod:`repro.core` -- every self-scheduling scheme in the paper
  (S, SS, CSS, GSS, TSS, FSS, FISS, the new TFSS, Weighted Factoring,
  Tree Scheduling) and the distributed ACP-aware family (DTSS with the
  paper's improvements, plus the new DFSS, DFISS, DTFSS);
* :mod:`repro.workloads` -- the Mandelbrot column workload, the
  Sec. 2.1 synthetic loop styles, and sampling-based loop reordering;
* :mod:`repro.simulation` -- a deterministic discrete-event simulator
  of a heterogeneous master--slave cluster (the stand-in for the
  paper's Sun workstation testbed);
* :mod:`repro.runtime` -- a real multiprocessing master--worker engine
  (the stand-in for MPI);
* :mod:`repro.decentral` -- the master-less substrate: pure chunk
  calculators, a SIGKILL-safe shared-counter runtime
  (``run_decentral``) and a counter-contention simulator
  (``simulate_decentral``), with a hierarchical (MPI+MPI-style)
  leased mode;
* :mod:`repro.analysis` -- chunk traces, balance metrics, speedup;
* :mod:`repro.experiments` -- regenerates every table and figure;
* :mod:`repro.batch` -- process-parallel fan-out of independent
  simulation jobs (``run_batch``);
* :mod:`repro.obs` -- the unified observability layer: one span/event
  model for the chunk lifecycle emitted by every substrate, metrics,
  JSONL / Chrome-trace exporters, structured logging;
* :mod:`repro.verify` -- the trace invariant auditor
  (``audit_sim`` / ``audit_run`` / ``audit_events``);
* :mod:`repro.cache` -- the persistent, content-addressed cost-profile
  cache behind ``Workload.costs()``.

Quick start::

    from repro import make, drain
    sched = make("TFSS", total=1000, workers=4)
    print([c.size for c in drain(sched)])

    from repro import simulate, paper_workload, paper_cluster
    wl = paper_workload(width=800, height=400)
    res = simulate("DTSS", wl, paper_cluster(wl))
    print(res.summary())

Capture the unified event stream from any substrate -- the same
schema whether the run is simulated or real::

    import repro.obs
    from repro import simulate, run_decentral

    with repro.obs.capture() as trace:
        simulate("TSS", wl, paper_cluster(wl), collector=trace)
    print(repro.obs.trace_report(trace.events))
    print(repro.obs.stream_digest(trace.events))  # substrate-agnostic

    from repro import audit_events
    audit_events(trace.events, scheme="TSS").raise_if_failed()
"""

from .batch import SimJob, run_batch, stream_batch
from .cache import CostCache, configure as configure_cache, get_cache
from .chaos import FaultPlan, run_chaos
from .core import (
    ChunkAssignment,
    Scheduler,
    SchemeError,
    WorkerView,
    drain,
    make,
    names,
)
from .decentral import (
    DECENTRAL_SCHEMES,
    make_calculator,
    run_decentral,
    simulate_decentral,
)
from .experiments.config import paper_cluster, paper_workload
from .obs import ObsEvent, capture, stream_digest, trace_report
from .simulation import ClusterSpec, NodeSpec, SimResult, simulate, simulate_tree
from .verify import AuditError, AuditReport, audit_events, audit_run, audit_sim
from .workloads import MandelbrotWorkload, ReorderedWorkload, Workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Scheduler",
    "SchemeError",
    "ChunkAssignment",
    "WorkerView",
    "drain",
    "make",
    "names",
    "Workload",
    "MandelbrotWorkload",
    "ReorderedWorkload",
    "ClusterSpec",
    "NodeSpec",
    "SimResult",
    "simulate",
    "simulate_tree",
    "DECENTRAL_SCHEMES",
    "make_calculator",
    "run_decentral",
    "simulate_decentral",
    "paper_workload",
    "paper_cluster",
    "SimJob",
    "run_batch",
    "stream_batch",
    "CostCache",
    "get_cache",
    "configure_cache",
    "FaultPlan",
    "run_chaos",
    "AuditError",
    "AuditReport",
    "audit_sim",
    "audit_run",
    "audit_events",
    "ObsEvent",
    "capture",
    "stream_digest",
    "trace_report",
]
