"""Adaptive meta-scheduler: pick and retune the scheme *during* the loop.

The paper fixes one scheme (TSS/FSS/TFSS/...) before the loop starts,
but its own tables show no scheme wins on every workload/cluster shape.
Following "An Adaptive Self-Scheduling Loop Scheduler" (arXiv:2007.07977)
and "OpenMP Loop Scheduling Revisited" (arXiv:1809.03188), this module
chooses and retunes the scheme *online*:

* the remaining iteration space is split into **stages**; each stage is
  scheduled by a fresh fixed-scheme sub-scheduler from the registry,
  offset to the stage's base -- so the concatenated stages tile
  ``[0, N)`` exactly once *by construction*, faults or not;
* a **discounted UCB bandit** over a configurable candidate set picks
  the scheme for each stage: every candidate is explored once (in a
  seeded order), then the arm with the best discounted efficiency
  estimate plus an exploration bonus wins;
* an **online tuner** (Booth-style runtime chunk adaptation) re-derives
  the chosen scheme's chunk parameters between stages from the observed
  per-chunk cost mean/variance -- e.g. high variance shrinks CSS's
  ``k`` and raises FSS's ``alpha``.

The policy is **deterministic given its seed and its observations**: in
the default ``feedback="cost"`` mode observations are the per-chunk
workload costs (substrate-independent), so the same spec + seed +
workload reproduce the same decision sequence bit for bit on the
simulator and the real runtime.  ``feedback="timing"`` uses observed
chunk durations instead (virtual time on the simulators -- still
deterministic; wall time on the real runtime -- adaptive to the actual
machine, not replayable).

Every decision lands in :attr:`AdaptiveScheduler.decisions` (a
:class:`StageDecision` log) and is mirrored to the substrates'
``adapt`` ObsEvents, so a trace explains every switch and retune;
:func:`repro.verify.audit_adaptive` replays each stage's cut points
from that log.  Being feedback-dependent, adaptive runs refuse the
analytic fast path (see ``docs/performance.md``) and the decentral
chunk calculators (there is no pure ladder to precompute).

Build one via the registry -- ``make("adaptive:TSS+FSS+GSS@6", N, p)``
-- or any string-scheme entry point (``simulate``, ``run_parallel``,
``SimJob``, the CLIs).  Spec grammar::

    adaptive                          # default candidates + stages
    adaptive:TSS+CSS(64)+GSS          # explicit candidate set
    adaptive:TSS+FSS@8                # ~8 stages over the loop
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional, Sequence

from .core import registry as _registry
from .core.base import Scheduler, SchemeError, WorkerView

__all__ = [
    "DEFAULT_CANDIDATES",
    "StageDecision",
    "StageStats",
    "DiscountedUCB",
    "AdaptiveScheduler",
    "retune_kwargs",
]

#: Default candidate set: the paper's strongest simple schemes plus GSS
#: -- all decent everywhere, so exploration is never catastrophic.
DEFAULT_CANDIDATES: tuple[str, ...] = ("TSS", "FSS", "GSS", "TFSS")

#: Per-chunk dispatch overhead expressed in *mean iterations*: the
#: efficiency proxy charges each chunk this many average-cost
#: iterations, so finer chunking is penalized scale-freely.
OVERHEAD_ITERS = 2.0


@dataclasses.dataclass(frozen=True)
class StageDecision(object):
    """One policy decision, recorded when a stage opens.

    ``kind`` is ``"select"`` (the bandit chose ``scheme`` for the stage
    ``[base, base + size)``) or ``"retune"`` (the tuner changed the
    scheme's parameters away from their defaults; always paired with
    the same stage's select).  ``reward`` is the efficiency posted for
    the *previous* stage (None for the first).
    """

    stage: int  # 1-based stage ordinal
    base: int
    size: int
    scheme: str  # candidate spec, e.g. "CSS(64)"
    kind: str  # "select" | "retune"
    params: dict
    reward: Optional[float] = None
    seed: int = 0

    def summary(self) -> str:
        """Compact human-readable form (rides in ObsEvent.detail)."""
        extra = ""
        if self.kind == "retune" and self.params:
            extra = " " + " ".join(
                f"{k}={v}" for k, v in sorted(self.params.items())
            )
        return f"{self.kind} {self.scheme}{extra}"


@dataclasses.dataclass(frozen=True)
class StageStats(object):
    """What the tuner learned from one completed stage."""

    chunks: int
    iterations: int
    mean_cost: float  # mean per-iteration cost
    cv: float  # coefficient of variation of per-chunk iteration cost
    reward: float  # efficiency posted to the bandit


@dataclasses.dataclass
class _StageRecord(object):
    """Internal per-stage ledger: the chunks this stage handed out."""

    index: int
    base: int
    size: int
    arm: int
    spans: list = dataclasses.field(default_factory=list)
    #: (start, stop) -> (worker, elapsed); filled by observe_completion.
    elapsed: dict = dataclasses.field(default_factory=dict)


class DiscountedUCB(object):
    """Discounted UCB bandit over ``n_arms`` arms, seeded + deterministic.

    ``select`` first plays every arm once in a seeded shuffle order,
    then maximizes ``q + explore * sqrt(log(T + 1) / n)`` where counts
    and value sums decay by ``discount`` at every update -- recent
    stages dominate, so the policy tracks drifting workloads (load
    spikes, phase changes).  Ties break on the shuffle order, so the
    whole trajectory is a pure function of (seed, reward sequence).
    """

    def __init__(
        self,
        n_arms: int,
        seed: int = 0,
        discount: float = 0.9,
        explore: float = 0.15,
    ) -> None:
        if n_arms < 1:
            raise SchemeError(f"bandit needs >= 1 arm, got {n_arms}")
        if not 0.0 < discount <= 1.0:
            raise SchemeError(f"discount must be in (0, 1], got {discount}")
        self.n_arms = int(n_arms)
        self.discount = float(discount)
        self.explore = float(explore)
        self.counts = [0.0] * n_arms
        self.sums = [0.0] * n_arms
        self.updates = 0
        order = list(range(n_arms))
        random.Random(seed).shuffle(order)
        #: seeded exploration order; doubles as the tie-break priority.
        self.order = order
        self._priority = {arm: i for i, arm in enumerate(order)}

    def select(self) -> int:
        for arm in self.order:
            if self.counts[arm] == 0.0:
                return arm
        horizon = math.log(self.updates + 1.0)
        best_arm = self.order[0]
        best_key: Optional[tuple[float, float]] = None
        for arm in range(self.n_arms):
            n = self.counts[arm]
            ucb = self.sums[arm] / n + self.explore * math.sqrt(
                horizon / n
            )
            # Higher UCB wins; equal UCBs fall back to shuffle priority.
            key = (-ucb, self._priority[arm])
            if best_key is None or key < best_key:
                best_key = key
                best_arm = arm
        return best_arm

    def update(self, arm: int, reward: float) -> None:
        g = self.discount
        for a in range(self.n_arms):
            self.counts[a] *= g
            self.sums[a] *= g
        self.counts[arm] += 1.0
        self.sums[arm] += float(reward)
        self.updates += 1


def _weighted_cv(costs: Sequence[float], sizes: Sequence[int]) -> float:
    """Size-weighted coefficient of variation of per-iteration cost."""
    iters = sum(sizes)
    total = sum(costs)
    if iters <= 0 or total <= 0:
        return 0.0
    mean = total / iters
    var = 0.0
    for c, s in zip(costs, sizes):
        u = c / s
        var += s * (u - mean) ** 2
    var /= iters
    return math.sqrt(var) / mean


def _balance_efficiency(
    costs: Sequence[float], speeds: Sequence[float], overhead: float
) -> float:
    """Self-scheduling emulation as an efficiency in ``(0, 1]``.

    Chunks are replayed in hand-out order against the known effective
    speeds ``V_i / Q_i``: each goes to the PE that frees up first,
    charged ``overhead`` extra (the per-chunk dispatch penalty), and
    the reward is ideal parallel time over the emulated makespan.

    Ties -- notably the stage front, where every PE is free -- break
    toward the *slowest* PE: self-scheduling gives no control over
    which PE requests first, so a scheme whose front chunk is huge is
    scored as if that chunk lands badly.  This is what makes the score
    heterogeneity-aware (GSS's coarse front on a slow PE scores low)
    while staying a pure function of (span sequence, speed map) --
    identical on every substrate, unlike the actual worker identities,
    which depend on wall-clock arrival order.
    """
    if not costs:
        return 1.0
    speeds = [max(float(s), 1e-12) for s in speeds] or [1.0]
    p = len(speeds)
    loads = [0.0] * p
    for c in costs:
        i = min(
            range(p), key=lambda w: (loads[w] / speeds[w], speeds[w], w)
        )
        loads[i] += c + overhead
    makespan = max(l / s for l, s in zip(loads, speeds))
    if makespan <= 0.0:
        return 1.0
    ideal = sum(loads) / sum(speeds)
    return min(1.0, ideal / makespan)


def retune_kwargs(
    key: str,
    inline: dict,
    stats: StageStats,
    stage_size: int,
    workers: int,
) -> dict:
    """Booth-style parameter re-derivation for the next stage.

    Given the observed cost variation ``stats.cv``, re-derive the
    scheme's chunk parameters over the coming ``stage_size`` iterations:
    low variance coarsens chunks (dispatch overhead dominates), high
    variance refines them (load balance dominates).  Deterministic;
    schemes without a retunable knob return ``{}``.
    """
    cv = min(stats.cv, 1.5)
    if key == "CSS":
        # Target ~2 chunks/worker when uniform, up to ~11 when spiky.
        per_worker = 2.0 + 6.0 * cv
        k = max(1, math.ceil(stage_size / (per_worker * workers)))
        if inline.get("k") == k:
            return {}
        return {"k": k}
    if key == "GSS":
        min_chunk = max(
            1, int(stage_size / (workers * (4.0 + 12.0 * min(cv, 1.0))))
        )
        if min_chunk == inline.get("min_chunk", 1):
            return {}
        return {"min_chunk": min_chunk}
    if key in ("TSS", "TFSS"):
        first = max(
            1,
            math.ceil(stage_size / ((2.0 + 2.0 * min(cv, 1.0)) * workers)),
        )
        return {"first": first}
    if key == "FSS":
        alpha = round(2.0 + 2.0 * min(cv, 1.0), 3)
        if alpha == 2.0:
            return {}
        return {"alpha": alpha}
    return {}


def _normalize_candidates(
    candidates: Optional[Sequence[str]],
) -> tuple[str, ...]:
    """Validate a candidate set; each entry must be a fixed, master-
    servable registry scheme (no nesting, no ACP-driven family)."""
    cands = (
        DEFAULT_CANDIDATES if candidates is None else tuple(candidates)
    )
    if not cands:
        raise SchemeError(
            "adaptive candidate set is empty; give at least one scheme, "
            f"e.g. {'+'.join(DEFAULT_CANDIDATES)}"
        )
    normalized = []
    for cand in cands:
        key, _inline = _registry.parse(cand)
        if key == "ADAPTIVE":
            raise SchemeError(
                "adaptive candidates must be fixed schemes; nesting "
                "'adaptive' inside itself is not allowed"
            )
        if _registry.SCHEMES[key].distributed:
            fixed = [
                n for n, cls in _registry.SCHEMES.items()
                if not cls.distributed
            ]
            raise SchemeError(
                f"candidate {cand!r} is ACP-driven (distributed) and "
                f"cannot be adaptively staged; pick from: "
                f"{', '.join(fixed)}"
            )
        normalized.append(cand.strip().upper())
    return tuple(normalized)


class AdaptiveScheduler(Scheduler):
    """Stage-wise meta-scheduler over the fixed-scheme registry.

    Implements the standard :class:`~repro.core.base.Scheduler`
    protocol, so every master-dispatch substrate (simulator engine,
    runtime master, batch/CLI) drives it unchanged.  Internally each
    stage delegates to a fresh sub-scheduler built over the stage's
    size; the inherited cursor does the offsetting, so exactly-once
    tiling holds no matter what the policy decides.

    Substrate hooks (all optional for the substrate):

    * :meth:`bind_workload` -- gives the cost feedback loop the
      workload's per-chunk costs (wired by the sim engine and
      ``run_parallel``);
    * :meth:`observe_completion` -- per-chunk duration reports for
      ``feedback="timing"``;
    * :meth:`drain_decisions` -- fresh :class:`StageDecision` records
      for ``adapt`` ObsEvent emission.
    """

    name = "adaptive"
    distributed = False
    #: Marks the scheduler as adapting to runtime observations: the
    #: analytic fast path must refuse it (decisions depend on feedback
    #: the collapsed recurrence never produces).
    feedback_dependent = True

    def __init__(
        self,
        total: int,
        workers: int,
        candidates: Optional[Sequence[str]] = None,
        stages: Optional[int] = None,
        seed: int = 0,
        feedback: str = "cost",
        discount: float = 0.9,
        explore: float = 0.15,
        explore_frac: float = 0.25,
    ) -> None:
        super().__init__(total, workers)
        self.candidates = _normalize_candidates(candidates)
        n_cand = len(self.candidates)
        if stages is None:
            stages = n_cand + 3
        if int(stages) < 1:
            raise SchemeError(
                f"bad stage count {stages!r} for adaptive: must be a "
                f"positive integer"
            )
        self.stages = int(stages)
        if feedback not in ("cost", "timing"):
            raise SchemeError(
                f"feedback must be 'cost' or 'timing', got {feedback!r}"
            )
        self.feedback = feedback
        self._timing = feedback == "timing"
        self._cur_spans: list[tuple[int, int]] = []
        self.seed = int(seed)
        if not 0.0 < explore_frac < 1.0:
            raise SchemeError(
                f"explore_frac must be in (0, 1), got {explore_frac}"
            )
        self.explore_frac = float(explore_frac)
        self._bandit = DiscountedUCB(
            n_cand, seed=self.seed, discount=discount, explore=explore
        )
        self._min_stage = max(1, 2 * self.workers)
        #: worker id -> last observed effective speed V_i / Q_i.
        self._speeds: dict[int, float] = {}
        self._workload = None
        self._sub: Optional[Scheduler] = None
        self._sub_base = 0
        self._records: list[_StageRecord] = []
        #: full decision log, in decision order (never cleared).
        self.decisions: list[StageDecision] = []
        self._fresh: list[StageDecision] = []
        self._stage_count = 0

    # -- substrate hooks ---------------------------------------------------

    def bind_workload(self, workload) -> None:
        """Attach the workload whose per-chunk costs drive feedback."""
        if workload.size != self.total:
            raise SchemeError(
                f"workload has {workload.size} iterations but the "
                f"scheduler covers {self.total}"
            )
        self._workload = workload

    def observe_completion(
        self, worker_id: int, start: int, stop: int, elapsed: float
    ) -> None:
        """Report one completed chunk's duration (timing feedback).

        No-op in cost mode: the cost signal is already known at
        assignment time and keeps the policy substrate-independent.
        """
        if self.feedback != "timing":
            return
        for rec in reversed(self._records):
            if rec.base <= start:
                rec.elapsed[(start, stop)] = (worker_id, float(elapsed))
                return

    def drain_decisions(self) -> list[StageDecision]:
        """Decisions made since the last drain (for ObsEvent emission)."""
        if not self._fresh:
            return []
        fresh = self._fresh
        self._fresh = []
        return fresh

    # -- policy ------------------------------------------------------------

    def _chunk_size(self, worker: WorkerView) -> int:
        sub = self._sub
        if sub is None or sub._cursor >= sub.total:
            self._open_stage()
            sub = self._sub
        # Inlined delegation: call the sub-scheduler's sizing hook and
        # replicate the base-class cursor/clip bookkeeping ourselves,
        # skipping its ChunkAssignment construction.  The outer base
        # class builds the one assignment the master actually sees, so
        # the wrapper costs one chunk record per chunk, not two.  (The
        # registry refuses distributed candidates, which are the only
        # schedulers that override ``next_chunk`` itself.)
        size = int(sub._chunk_size(worker))
        if size < 1:
            size = 1
        left = sub.total - sub._cursor
        if size > left:
            size = left
        start = self._sub_base + sub._cursor
        sub._cursor += size
        sub._step += 1
        # Cost mode sticks to the *static* virtual power: the run
        # queue is runtime-observed state (the simulator's load model
        # sees a spike, the real runtime's view does not), so folding
        # it in would break substrate-invariant decisions.  Timing
        # mode is the observed-state mode, so there it counts.
        speed = worker.virtual_power
        if self._timing:
            speed /= max(1, worker.run_queue)
        self._speeds[worker.worker_id] = speed
        self._cur_spans.append((start, start + size))
        return size

    def _current_stage(self) -> int:
        return self._stage_count

    def _next_stage_size(self, remaining: int) -> int:
        n_cand = len(self.candidates)
        opened = self._stage_count
        if opened < n_cand and n_cand > 1:
            # Exploration round: one small stage per candidate, jointly
            # covering ~explore_frac of the loop, so a bad candidate
            # can only hurt a bounded slice.
            size = max(
                self._min_stage,
                math.ceil(self.total * self.explore_frac / n_cand),
            )
        else:
            left = max(1, self.stages - opened)
            size = math.ceil(remaining / left)
        return max(1, min(size, remaining))

    def _stage_stats(self, rec: _StageRecord) -> StageStats:
        sizes = [stop - start for start, stop in rec.spans]
        workload = self._workload
        if self.feedback == "timing" and rec.elapsed:
            costs = []
            for span in rec.spans:
                obs = rec.elapsed.get(span)
                if obs is not None:
                    costs.append(obs[1])
                elif workload is not None:
                    costs.append(float(workload.chunk_cost(*span)))
                else:
                    costs.append(float(span[1] - span[0]))
        elif workload is not None:
            costs = [
                float(workload.chunk_cost(start, stop))
                for start, stop in rec.spans
            ]
        else:
            costs = [float(s) for s in sizes]
        iters = sum(sizes)
        mean_cost = (sum(costs) / iters) if iters else 0.0
        cv = _weighted_cv(costs, sizes)
        overhead = OVERHEAD_ITERS * mean_cost
        # Unseen PEs default to speed 1.0 -- virtual power is relative
        # to the slowest PE, so "unknown" scores as "slowest".
        speeds = [
            self._speeds.get(w, 1.0) for w in range(self.workers)
        ]
        reward = _balance_efficiency(costs, speeds, overhead)
        return StageStats(
            chunks=len(rec.spans),
            iterations=iters,
            mean_cost=mean_cost,
            cv=cv,
            reward=reward,
        )

    def _close_stage(self) -> Optional[StageStats]:
        if not self._records:
            return None
        rec = self._records[-1]
        stats = self._stage_stats(rec)
        self._bandit.update(rec.arm, stats.reward)
        return stats

    def _open_stage(self) -> None:
        stats = self._close_stage()
        base = self._cursor
        remaining = self.total - base
        size = self._next_stage_size(remaining)
        arm = self._bandit.select()
        candidate = self.candidates[arm]
        key, inline = _registry.parse(candidate)
        retuned: dict = {}
        if stats is not None:
            retuned = retune_kwargs(
                key, inline, stats, size, self.workers
            )
        sub = _registry.make(candidate, size, self.workers, **retuned)
        self._sub = sub
        self._sub_base = base
        self._stage_count += 1
        rec = _StageRecord(
            index=self._stage_count, base=base, size=size, arm=arm
        )
        self._records.append(rec)
        self._cur_spans = rec.spans
        params = dict(inline)
        params.update(retuned)
        decision = StageDecision(
            stage=self._stage_count,
            base=base,
            size=size,
            scheme=candidate,
            kind="select",
            params=params,
            reward=None if stats is None else stats.reward,
            seed=self.seed,
        )
        self.decisions.append(decision)
        self._fresh.append(decision)
        if retuned:
            tune = dataclasses.replace(
                decision, kind="retune", params=dict(retuned)
            )
            self.decisions.append(tune)
            self._fresh.append(tune)

    # -- introspection -----------------------------------------------------

    def stage_decisions(self) -> list[StageDecision]:
        """The ``select`` decisions only, in stage order."""
        return [d for d in self.decisions if d.kind == "select"]

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["params"]["candidates"] = "+".join(self.candidates)
        return info
