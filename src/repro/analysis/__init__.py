"""Post-hoc analysis: chunk traces (Table 1), balance metrics,
speedup series (Figures 4-7), and paper-layout text tables."""

from .balance import balance_report, cov, max_over_mean, range_over_mean
from .chunks import (
    ChunkStats,
    chunk_sequence,
    chunk_stats,
    per_worker_sizes,
    table1_rows,
)
from .plots import bar_chart, line_chart, profile_chart
from .speedup import SpeedupPoint, efficiency, power_cap, speedup_series
from .tables import (
    format_chunk_row,
    format_matrix,
    format_runtime_table,
    format_time_table,
)
from .theory import (
    css_steps,
    fiss_steps,
    fss_steps,
    gss_steps,
    predicted_steps,
    tfss_steps,
    tss_executable_steps,
    tss_planned_steps,
)

__all__ = [
    "cov",
    "max_over_mean",
    "range_over_mean",
    "balance_report",
    "chunk_sequence",
    "per_worker_sizes",
    "ChunkStats",
    "chunk_stats",
    "table1_rows",
    "SpeedupPoint",
    "speedup_series",
    "power_cap",
    "efficiency",
    "format_time_table",
    "format_matrix",
    "format_runtime_table",
    "format_chunk_row",
    "line_chart",
    "profile_chart",
    "bar_chart",
    "css_steps",
    "gss_steps",
    "tss_planned_steps",
    "tss_executable_steps",
    "fss_steps",
    "fiss_steps",
    "tfss_steps",
    "predicted_steps",
]
