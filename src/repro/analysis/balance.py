"""Load-balance metrics over per-PE quantities.

The paper's balance claims are qualitative ("the execution is
well-balanced, in terms of the computation times"); these metrics make
them checkable: coefficient of variation, max/mean (a direct bound on
achievable speedup loss), and range/mean.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["cov", "max_over_mean", "range_over_mean", "balance_report"]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def cov(values: Sequence[float]) -> float:
    """Coefficient of variation: stddev / mean (0 = perfectly even)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var) / mean


def max_over_mean(values: Sequence[float]) -> float:
    """``max / mean`` >= 1; equals 1 for perfect balance.

    Directly bounds efficiency: a PE-time profile with ``max/mean = r``
    wastes at least ``1 - 1/r`` of the cluster.
    """
    values = list(values)
    mean = _mean(values)
    if not values or mean == 0:
        return 1.0
    return max(values) / mean


def range_over_mean(values: Sequence[float]) -> float:
    """``(max - min) / mean``; the paper-style imbalance measure."""
    values = list(values)
    mean = _mean(values)
    if not values or mean == 0:
        return 0.0
    return (max(values) - min(values)) / mean


def balance_report(values: Sequence[float]) -> dict[str, float]:
    """All three metrics in one dict (for experiment summaries)."""
    return {
        "cov": cov(values),
        "max_over_mean": max_over_mean(values),
        "range_over_mean": range_over_mean(values),
    }
