"""Chunk-trace analytics: regenerate and dissect scheduling decisions.

The paper's Table 1 ("Sample chunk sizes for I = 1000 and p = 4") is a
pure function of the schemes, no cluster needed;
:func:`chunk_sequence` drains a scheme analytically and
:func:`table1_rows` formats the table's rows, including the nominal TSS
row the paper prints (which over-covers ``I`` -- see EXPERIMENTS.md).

Also here: per-PE grouping (the staged schemes' "4 PEs per stage" view)
and summary statistics used by the ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..core import (
    Scheduler,
    WorkerView,
    drain,
    make,
    nominal_tss_chunks,
    tfss_stage_chunks,
)

__all__ = [
    "chunk_sequence",
    "per_worker_sizes",
    "ChunkStats",
    "chunk_stats",
    "table1_rows",
]


def chunk_sequence(
    scheme: str | Scheduler,
    total: int,
    workers: int,
    worker_views: Optional[Sequence[WorkerView]] = None,
    **kwargs,
) -> list[int]:
    """Chunk sizes from a synchronous round-robin drain of ``scheme``."""
    scheduler = (
        make(scheme, total, workers, **kwargs)
        if isinstance(scheme, str)
        else scheme
    )
    cycle = list(worker_views) if worker_views else None
    return [c.size for c in drain(scheduler, cycle)]


def per_worker_sizes(
    scheme: str | Scheduler, total: int, workers: int, **kwargs
) -> dict[int, list[int]]:
    """Chunk sizes grouped by requesting worker (round-robin order)."""
    scheduler = (
        make(scheme, total, workers, **kwargs)
        if isinstance(scheme, str)
        else scheduler_guard(scheme)
    )
    out: dict[int, list[int]] = {w: [] for w in range(workers)}
    for chunk in drain(scheduler):
        out[chunk.worker_id].append(chunk.size)
    return out


def scheduler_guard(scheduler: Scheduler) -> Scheduler:
    """Reject reuse of a partially drained scheduler."""
    if scheduler.steps_taken:
        raise ValueError(
            "scheduler already used; schedulers are single-use"
        )
    return scheduler


@dataclasses.dataclass(frozen=True)
class ChunkStats(object):
    """Summary of a chunk-size sequence."""

    count: int
    total: int
    largest: int
    smallest: int
    mean: float

    @property
    def messages(self) -> int:
        """Master round-trips implied (one per chunk, plus terminations)."""
        return self.count


def chunk_stats(sizes: Sequence[int]) -> ChunkStats:
    """Compute :class:`ChunkStats` for a sequence of chunk sizes."""
    sizes = list(sizes)
    if not sizes:
        return ChunkStats(count=0, total=0, largest=0, smallest=0, mean=0.0)
    return ChunkStats(
        count=len(sizes),
        total=sum(sizes),
        largest=max(sizes),
        smallest=min(sizes),
        mean=sum(sizes) / len(sizes),
    )


def table1_rows(total: int = 1000, workers: int = 4) -> dict[str, list[int]]:
    """The paper's Table 1, scheme -> chunk-size row.

    Matches the paper's presentation conventions: the TSS and TFSS rows
    are the *nominal* formula sequences (both over-cover ``total`` --
    the executable schedulers clip; see EXPERIMENTS.md); FSS/FISS rows
    are executable traces which already conserve ``total``; CSS is
    omitted (its printed row is the symbolic ``k k k ...``); SS is
    truncated in print but full here.
    """
    tfss_nominal = [
        size
        for size in tfss_stage_chunks(total, workers)
        for _ in range(workers)
    ]
    return {
        "S": chunk_sequence("S", total, workers),
        "SS": chunk_sequence("SS", total, workers),
        "GSS": chunk_sequence("GSS", total, workers),
        "TSS": nominal_tss_chunks(total, workers),
        "FSS": chunk_sequence("FSS", total, workers),
        "FISS": chunk_sequence("FISS", total, workers),
        "TFSS": tfss_nominal,
    }
