"""Terminal plots: render the paper's figures as ASCII charts.

The experiment runner is a CLI, so "figures" are drawn with characters:

* :func:`line_chart` -- multi-series line chart (Figures 4-7, speedup
  vs p);
* :func:`profile_chart` -- a filled area profile (Figure 1, per-column
  cost);
* :func:`bar_chart` -- labelled horizontal bars (T_p comparisons).

These are deliberately dependency-free (no matplotlib offline) and
deterministic, so their output can be snapshotted in tests.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_chart", "profile_chart", "bar_chart"]

#: Series glyphs, assigned to series in order.
_MARKERS = "o*x+#@%&"


def _scale(
    value: float, lo: float, hi: float, cells: int
) -> int:
    """Map ``value`` in [lo, hi] to a cell row/column index."""
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return int(round(frac * (cells - 1)))


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart over shared axes.

    ``series`` maps a name to ``(x, y)`` points.  Points are plotted
    with per-series markers and joined by linear interpolation in cell
    space; a legend line maps markers to names.
    """
    if not series:
        raise ValueError("need at least one series")
    all_pts = [pt for pts in series.values() for pt in pts]
    if not all_pts:
        raise ValueError("series contain no points")
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(0.0, min(ys)), max(ys)
    grid = [[" "] * width for _ in range(height)]

    def plot(col: int, row: int, ch: str) -> None:
        grid[height - 1 - row][col] = ch

    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        cells = [
            (_scale(x, xlo, xhi, width), _scale(y, ylo, yhi, height))
            for x, y in sorted(pts)
        ]
        # Connect consecutive points with '.' interpolation.
        for (c0, r0), (c1, r1) in zip(cells, cells[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for s in range(steps + 1):
                c = round(c0 + (c1 - c0) * s / steps)
                r = round(r0 + (r1 - r0) * s / steps)
                if grid[height - 1 - r][c] == " ":
                    plot(c, r, ".")
        for c, r in cells:
            plot(c, r, marker)

    lines = []
    if title:
        lines.append(title)
    top_label = f"{yhi:.2f} {y_label}".rstrip()
    lines.append(top_label)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{xlo:g}" + " " * max(1, width - 12) + f"{xhi:g}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def profile_chart(
    values: Sequence[float],
    width: int = 72,
    height: int = 12,
    title: str = "",
) -> str:
    """Filled area chart of a 1-D profile (Figure 1 style).

    The profile is block-averaged down to ``width`` columns; each
    column is a bar of '#' proportional to the block mean.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    blocks = [b.mean() for b in np.array_split(arr, min(width, arr.size))]
    hi = max(blocks) or 1.0
    cols = [max(0, _scale(b, 0.0, hi, height + 1)) for b in blocks]
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max block mean = {hi:.0f}")
    for row in range(height, 0, -1):
        lines.append(
            "|" + "".join("#" if c >= row else " " for c in cols)
        )
    lines.append("+" + "-" * len(cols))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal labelled bars (T_p comparisons)."""
    if not values:
        raise ValueError("need at least one bar")
    hi = max(values.values())
    if hi <= 0:
        raise ValueError("bar values must include a positive maximum")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, v in values.items():
        bar = "#" * max(1, _scale(v, 0.0, hi, width))
        lines.append(f"{name.rjust(label_w)} |{bar} {v:.1f}{unit}")
    return "\n".join(lines)
