"""Speedup series -- the quantity behind Figures 4-7.

The paper plots speedup against PE count for each scheme.  Its
denominator is the one-fast-PE configuration ("For p = 1: 1 fast PE"),
so speedup can exceed the PE count only through measurement noise, and
heterogeneous mixes cap below ``p``: Figure 6's caption works the cap
out explicitly -- 3 fast + 5 slow with fast ~= 3x slow gives total power
``3 + 5/3 ~= 4.67``, "thus, without Tcom/Twait we expect S_p <= 4.5".
:func:`power_cap` computes that bound for any mix.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

__all__ = ["SpeedupPoint", "speedup_series", "power_cap", "efficiency"]


@dataclasses.dataclass(frozen=True)
class SpeedupPoint(object):
    """One (p, T_p) measurement and its derived speedup."""

    workers: int
    t_p: float
    speedup: float


def speedup_series(
    serial_time: float,
    measurements: Sequence[tuple[int, float]],
) -> list[SpeedupPoint]:
    """Turn ``(p, T_p)`` pairs into speedup points vs ``serial_time``."""
    if serial_time <= 0:
        raise ValueError(f"serial_time must be > 0, got {serial_time}")
    points = []
    for workers, t_p in measurements:
        if t_p <= 0:
            raise ValueError(f"T_p must be > 0, got {t_p} at p={workers}")
        points.append(
            SpeedupPoint(
                workers=workers, t_p=t_p, speedup=serial_time / t_p
            )
        )
    return points


def power_cap(virtual_powers: Sequence[float], fast: float | None = None
              ) -> float:
    """Upper bound on speedup vs one PE of power ``fast``.

    ``fast`` defaults to the largest virtual power in the mix (the
    paper's p=1 baseline is a fast PE).  Example: powers
    ``[3, 3, 3, 1, 1, 1, 1, 1]`` -> ``14/3 ~= 4.67`` (Figure 6's
    "we expect S_p <= 4.5" modulo their rounding of the speed ratio).
    """
    powers = [float(v) for v in virtual_powers]
    if not powers or any(v <= 0 for v in powers):
        raise ValueError(f"virtual powers must be positive: {powers}")
    denom = float(fast) if fast is not None else max(powers)
    return sum(powers) / denom


def efficiency(points: Sequence[SpeedupPoint]) -> list[float]:
    """Parallel efficiency ``speedup / p`` per point."""
    return [pt.speedup / pt.workers for pt in points]
