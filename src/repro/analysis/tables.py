"""Fixed-width text tables in the paper's layout.

Tables 2 and 3 tabulate, per slave PE, ``T_com/T_wait/T_comp`` with a
final ``T_p`` row, one column per scheme.  :func:`format_time_table`
renders exactly that shape from :class:`~repro.simulation.SimResult`
objects so experiment output is visually comparable with the paper.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

from ..simulation.metrics import SimResult


class _WorkerClock(Protocol):
    """What a runtime per-worker stats record must expose."""

    wait_seconds: float
    compute_seconds: float


class _RuntimeRun(Protocol):
    """Structural view of :class:`repro.runtime.RunResult`.

    A Protocol instead of the concrete class keeps this analysis layer
    import-free of the multiprocessing runtime (and lets tests feed
    simple stand-ins).
    """

    elapsed: float
    stats: Mapping[int, _WorkerClock]

__all__ = ["format_time_table", "format_runtime_table", "format_matrix", "format_chunk_row"]


def format_matrix(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    row_labels: Sequence[str],
    corner: str = "",
) -> str:
    """Generic fixed-width table with a label column."""
    if any(len(r) != len(headers) for r in rows):
        raise ValueError("every row must have one cell per header")
    if len(rows) != len(row_labels):
        raise ValueError("need one label per row")
    cells = [[corner, *headers]] + [
        [label, *row] for label, row in zip(row_labels, rows)
    ]
    widths = [
        max(len(line[col]) for line in cells)
        for col in range(len(headers) + 1)
    ]
    out = []
    for i, line in enumerate(cells):
        out.append(
            "  ".join(cell.rjust(w) for cell, w in zip(line, widths))
        )
        if i == 0:
            out.append("-" * len(out[0]))
    return "\n".join(out)


def format_time_table(results: Mapping[str, SimResult]) -> str:
    """The paper's Table 2/3 layout: PE rows x scheme columns.

    Each cell is ``T_com/T_wait/T_comp`` (seconds, 1 decimal); the last
    row is ``T_p`` per scheme.
    """
    if not results:
        raise ValueError("no results to tabulate")
    schemes = list(results)
    n_pe = {len(r.workers) for r in results.values()}
    if len(n_pe) != 1:
        raise ValueError(f"inconsistent PE counts across schemes: {n_pe}")
    count = n_pe.pop()
    rows = []
    labels = []
    for pe in range(count):
        labels.append(str(pe + 1))
        rows.append(
            [results[s].workers[pe].row() for s in schemes]
        )
    labels.append("T_p")
    rows.append([f"{results[s].t_p:.1f}" for s in schemes])
    return format_matrix(schemes, rows, labels, corner="PE")


def format_runtime_table(results: Mapping[str, _RuntimeRun]) -> str:
    """Paper-style table from *real* runtime runs.

    Takes ``scheme -> RunResult`` (from
    :func:`repro.runtime.run_parallel`).  Real pipes have no separable
    link-occupancy meter, so cells are ``T_wait/T_comp`` (wall seconds)
    with an ``elapsed`` total row instead of ``T_p``.
    """
    if not results:
        raise ValueError("no results to tabulate")
    schemes = list(results)
    worker_ids = sorted(
        {wid for r in results.values() for wid in r.stats}
    )
    rows = []
    labels = []
    for wid in worker_ids:
        labels.append(str(wid + 1))
        cells = []
        for s in schemes:
            stats = results[s].stats.get(wid)
            cells.append(
                f"{stats.wait_seconds:.2f}/{stats.compute_seconds:.2f}"
                if stats is not None
                else "-"
            )
        rows.append(cells)
    labels.append("elapsed")
    rows.append(
        [f"{results[s].elapsed:.2f}" for s in schemes]
    )
    return format_matrix(schemes, rows, labels, corner="PE")


def format_chunk_row(sizes: Sequence[int], per_line: int = 14) -> str:
    """Render a chunk-size row Table-1 style, wrapped."""
    parts = [str(s) for s in sizes]
    lines = [
        " ".join(parts[i:i + per_line])
        for i in range(0, len(parts), per_line)
    ]
    return "\n".join(lines) if lines else "(empty)"
