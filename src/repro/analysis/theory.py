"""Closed-form scheduling theory, cross-checked against the code.

Each scheme's literature gives closed forms for the number of
scheduling steps (= master messages, the overhead the schemes trade
against balance).  This module implements those formulas so tests can
verify the executable schedulers against theory, and so users can
predict message counts without running anything:

* CSS(k):  ``N = ceil(I / k)``.
* GSS:     ``N ~= p * ln(I/p)`` (geometric decay; exact count computed
  by recurrence here).
* TSS:     ``N = floor(2I / (F + L))`` *planned*; the executable count
  is smaller when the nominal row over-covers ``I``.
* FSS:     ``p`` chunks per stage, stages halve the remainder:
  ``N ~= p * log2(I/p)``; exact by recurrence.
* FISS:    exactly ``sigma * p`` (fixed by construction).
* TFSS:    ``p`` per stage over ``ceil(N_TSS / p)`` stages.

These are *scheduling-step* counts for the synchronous lockstep drain;
asynchronous engines add the terminal round of termination replies.
"""

from __future__ import annotations

import math

from ..core.base import SchemeError
from ..core.factoring import ROUNDINGS
from ..core.trapezoid import TrapezoidParams

__all__ = [
    "css_steps",
    "gss_steps",
    "tss_planned_steps",
    "tss_executable_steps",
    "fss_steps",
    "fiss_steps",
    "tfss_steps",
    "predicted_steps",
]


def _check(total: int, workers: int) -> None:
    if total < 0:
        raise SchemeError(f"total must be >= 0, got {total}")
    if workers < 1:
        raise SchemeError(f"workers must be >= 1, got {workers}")


def css_steps(total: int, k: int) -> int:
    """``ceil(I/k)`` chunks for CSS(k)."""
    if k < 1:
        raise SchemeError(f"k must be >= 1, got {k}")
    return -(-total // k)


def gss_steps(total: int, workers: int) -> int:
    """Exact GSS chunk count by the defining recurrence."""
    _check(total, workers)
    remaining = total
    steps = 0
    while remaining > 0:
        remaining -= max(1, math.ceil(remaining / workers))
        steps += 1
    return steps


def tss_planned_steps(
    total: int, workers: int, first: int | None = None, last: int = 1
) -> int:
    """Tzen & Ni's planned ``N = floor(2I/(F+L))``."""
    params = TrapezoidParams.derive(total, workers, first=first,
                                    last=last)
    return params.steps


def tss_executable_steps(
    total: int, workers: int, first: int | None = None, last: int = 1
) -> int:
    """Chunks the executable TSS emits (clipping included)."""
    _check(total, workers)
    params = TrapezoidParams.derive(total, workers, first=first,
                                    last=last)
    remaining = total
    size = params.first
    steps = 0
    while remaining > 0:
        take = min(max(size, 1), remaining)
        remaining -= take
        size = max(params.last, int(size - params.decrement))
        steps += 1
    return steps


def fss_steps(
    total: int, workers: int, alpha: float = 2.0,
    rounding: str = "half-even",
) -> int:
    """Exact FSS chunk count: stages by recurrence, ``p`` chunks each.

    The final stage may be cut short by clipping, so the count is
    computed against the actual remaining-iterations ledger.
    """
    _check(total, workers)
    if rounding not in ROUNDINGS:
        raise SchemeError(f"unknown rounding {rounding!r}")
    round_fn = ROUNDINGS[rounding]
    remaining = total
    steps = 0
    while remaining > 0:
        chunk = max(1, round_fn(remaining / (alpha * workers)))
        for _ in range(workers):
            take = min(chunk, remaining)
            remaining -= take
            steps += 1
            if remaining <= 0:
                break
    return steps


def fiss_steps(
    total: int, workers: int, stages: int = 3, x: float | None = None
) -> int:
    """Exact FISS chunk count against the ledger.

    Nominally exactly ``sigma * p`` chunks; fewer when clipping ends
    the loop early (tiny ``I``), and slightly more when min-1 chunk
    floors push coverage past the plan.
    """
    from ..core.fixed_increase import fiss_parameters

    _check(total, workers)
    if total == 0:
        return 0
    c0, bump, _x = fiss_parameters(total, workers, stages, x)
    plan = [c0 + k * bump for k in range(stages - 1)]
    leftover = max(0, total - sum(plan) * workers)
    plan.append(max(1, math.ceil(leftover / workers)))
    remaining = total
    steps = 0
    idx = 0
    while remaining > 0:
        if idx < len(plan):
            chunk = plan[idx]
            for _ in range(workers):
                take = min(chunk, remaining)
                remaining -= take
                steps += 1
                if remaining <= 0:
                    break
            idx += 1
        else:
            take = min(
                max(1, math.ceil(remaining / (2 * workers))), remaining
            )
            remaining -= take
            steps += 1
    return steps


def tfss_steps(total: int, workers: int) -> int:
    """TFSS chunk count: ``p`` per stage against the actual ledger."""
    from ..core.tfss import tfss_stage_chunks

    _check(total, workers)
    remaining = total
    steps = 0
    plan = tfss_stage_chunks(total, workers)
    idx = 0
    while remaining > 0:
        if idx < len(plan):
            chunk = plan[idx]
            for _ in range(workers):
                take = min(chunk, remaining)
                remaining -= take
                steps += 1
                if remaining <= 0:
                    break
            idx += 1
        else:
            # Beyond-plan tail: the ladder recomputes the shrinking
            # factoring chunk per *request*, not per stage.
            take = min(
                max(1, math.ceil(remaining / (2 * workers))), remaining
            )
            remaining -= take
            steps += 1
    return steps


def predicted_steps(scheme: str, total: int, workers: int, **kwargs
                    ) -> int:
    """Dispatch: predicted synchronous-drain chunk count for a scheme."""
    key = scheme.strip().upper()
    if key == "CSS":
        return css_steps(total, kwargs.get("k", 1))
    if key == "SS":
        return css_steps(total, 1)
    if key == "GSS":
        return gss_steps(total, workers)
    if key == "TSS":
        return tss_executable_steps(total, workers, **kwargs)
    if key == "FSS":
        return fss_steps(total, workers, **kwargs)
    if key == "FISS":
        return fiss_steps(total, workers, kwargs.get("stages", 3))
    if key == "TFSS":
        return tfss_steps(total, workers)
    if key == "S":
        return min(workers, max(total, 0)) if total else 0
    raise SchemeError(f"no closed form registered for {scheme!r}")
