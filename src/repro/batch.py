"""Process-parallel fan-out of independent simulation jobs.

The paper's artifact set is a large sweep of *independent* runs --
schemes x p in {1, 2, 4, 8} x dedicated/nondedicated x seeds -- and the
discrete-event simulator is single-threaded pure Python, so the sweep
is embarrassingly parallel.  This module is the one place that
parallelism lives:

* :class:`SimJob` describes one run declaratively (scheme name,
  workload, cluster, engine kind, extra simulate kwargs).  Jobs are
  plain picklable data with a deterministic :meth:`SimJob.key`, so a
  batch is reproducible and auditable.
* :func:`run_batch` executes a job list and returns results **in
  submission order**.  ``n_jobs=1`` runs in-process (no pool, no
  subprocesses -- the hermetic path tests use); ``n_jobs>1`` fans out
  over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Every
  simulation is deterministic, so the two paths are bit-identical.

Before submission the parent resolves every workload's cost vector
(persistent cache hit or one computation) so pool workers receive a
precomputed profile inside the pickled workload and never re-derive
the grid; the Mandelbrot column memo is explicitly *excluded* from the
pickle (see ``MandelbrotWorkload.__getstate__``).

``n_jobs`` resolution: an explicit positive integer wins; ``0`` or
``None`` means "all cores" (``REPRO_JOBS`` overrides the core count).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional, Sequence

from .simulation import ClusterSpec, SimResult, simulate, simulate_tree
from .workloads import Workload

__all__ = ["SimJob", "run_batch", "resolve_jobs", "batch_keys"]

#: Environment variable overriding the "all cores" job count.
ENV_JOBS = "REPRO_JOBS"


@dataclasses.dataclass(frozen=True)
class SimJob(object):
    """One independent simulation: inputs only, no shared state.

    ``engine`` selects the executor: ``"master"`` (the centralized
    master--slave engine, :func:`repro.simulation.simulate`),
    ``"tree"`` (the decentralized tree engine,
    :func:`repro.simulation.simulate_tree`, for which ``scheme`` is
    cosmetic and ``params`` carries ``weighted``/``grain``) or
    ``"decentral"`` (the shared-counter contention model,
    :func:`repro.decentral.simulate_decentral`, where ``params`` may
    carry ``atomic_op_cost``/``group_size``/``lease``).
    ``params`` holds extra keyword arguments (``acp_model``, ``alpha``,
    ...); ``tag`` is a free-form caller label (e.g. ``"p=8/ded"``).

    ``collect_events=True`` additionally captures the unified
    observability trace (see :mod:`repro.obs`) and attaches it to the
    result as ``SimResult.obs_events``.  ``engine="event"`` is accepted
    as an alias for ``"master"`` (the master--slave engine *is* the
    event-driven one); it normalizes before hashing, so the alias does
    not perturb job keys.
    """

    scheme: str
    workload: Workload
    cluster: ClusterSpec
    engine: str = "master"
    params: dict = dataclasses.field(default_factory=dict)
    tag: str = ""
    collect_events: bool = False

    def __post_init__(self) -> None:
        if self.engine == "event":
            object.__setattr__(self, "engine", "master")
        if self.engine not in ("master", "tree", "decentral"):
            raise ValueError(
                f"engine must be 'master', 'tree', 'decentral' or "
                f"'event', got {self.engine!r}"
            )

    def describe(self) -> str:
        """A stable, human-readable descriptor of the job's inputs."""
        wl = self.workload
        wl_sig = wl.cost_signature()
        wl_part = (
            repr(wl_sig) if wl_sig is not None
            else f"{type(wl).__name__}(size={wl.size})"
        )
        cl = self.cluster
        nodes = ";".join(
            f"{n.name}:s={n.speed!r}:l={n.latency!r}:b={n.bandwidth!r}"
            f":v={n.virtual_power!r}:f={n.fails_at!r}"
            f":seg={n.segment!r}:load={n.load!r}"
            for n in cl.nodes
        )
        cl_part = (
            f"nodes=[{nodes}]:ms={cl.master_service!r}"
            f":req={cl.request_bytes!r}:rep={cl.reply_bytes!r}"
            f":res={cl.result_bytes_per_item!r}"
            f":mbw={cl.master_bandwidth!r}"
        )
        params = ",".join(
            f"{k}={self.params[k]!r}" for k in sorted(self.params)
        )
        # ``collect_events`` marks the descriptor only when on: the
        # trace does not change what the simulation computes, and the
        # silent default keeps pre-existing job keys byte-stable.
        events_part = "|events" if self.collect_events else ""
        return (
            f"{self.engine}|{self.scheme}|{self.tag}|{wl_part}"
            f"|{cl_part}|{params}{events_part}"
        )

    @property
    def key(self) -> str:
        """Deterministic job identity: sha256 of :meth:`describe`."""
        return hashlib.sha256(
            self.describe().encode("utf-8")
        ).hexdigest()

    def run(self) -> SimResult:
        """Execute this job in the current process."""
        kwargs = dict(self.params)
        trace = None
        if self.collect_events and "collector" not in kwargs:
            from .obs import BufferedCollector

            trace = BufferedCollector()
            kwargs["collector"] = trace
        if self.engine == "tree":
            result = simulate_tree(self.workload, self.cluster, **kwargs)
        elif self.engine == "decentral":
            from .decentral import simulate_decentral

            result = simulate_decentral(self.scheme, self.workload,
                                        self.cluster, **kwargs)
        else:
            result = simulate(self.scheme, self.workload, self.cluster,
                              **kwargs)
        if trace is not None:
            result.obs_events = trace.events
        return result


def _execute(job: SimJob) -> SimResult:
    """Top-level pool target (must be module-level for pickling)."""
    return job.run()


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count."""
    if n_jobs is None or n_jobs == 0:
        env = os.environ.get(ENV_JOBS)
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                pass
        return max(1, os.cpu_count() or 1)
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0 or None, got {n_jobs}")
    return int(n_jobs)


def run_batch(
    jobs: Iterable[SimJob],
    n_jobs: Optional[int] = 1,
    pool: Optional[ProcessPoolExecutor] = None,
) -> list[SimResult]:
    """Run every job; results come back in submission order.

    ``n_jobs=1`` (the default) executes in-process with no pool at all,
    guaranteeing hermetic, dependency-free behaviour; ``n_jobs>1`` (or
    ``0``/``None`` for all cores) fans out across processes.  The
    simulations are deterministic, so both paths produce bit-identical
    results.  An existing ``pool`` may be passed to amortize worker
    start-up across batches (``n_jobs`` is then ignored).
    """
    jobs = list(jobs)
    for job in jobs:
        if not isinstance(job, SimJob):
            raise TypeError(f"run_batch expects SimJob items, got {job!r}")
    # Resolve every distinct workload's cost vector in the parent so
    # pool workers receive a precomputed profile instead of re-deriving
    # the grid once per process.
    for workload in {id(j.workload): j.workload for j in jobs}.values():
        workload.costs()
    if pool is not None:
        return [f.result() for f in
                [pool.submit(_execute, job) for job in jobs]]
    workers = resolve_jobs(n_jobs)
    if workers == 1 or len(jobs) <= 1:
        return [job.run() for job in jobs]
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as ex:
        futures = [ex.submit(_execute, job) for job in jobs]
        return [f.result() for f in futures]


def batch_keys(jobs: Sequence[SimJob]) -> list[str]:
    """Deterministic keys for a job list (submission order)."""
    return [job.key for job in jobs]
