"""Process-parallel fan-out of independent simulation jobs.

The paper's artifact set is a large sweep of *independent* runs --
schemes x p in {1, 2, 4, 8} x dedicated/nondedicated x seeds -- and the
discrete-event simulator is single-threaded pure Python, so the sweep
is embarrassingly parallel.  This module is the one place that
parallelism lives:

* :class:`SimJob` describes one run declaratively (scheme name,
  workload, cluster, engine kind, extra simulate kwargs).  Jobs are
  plain picklable data with a deterministic :meth:`SimJob.key`, so a
  batch is reproducible and auditable.
* :func:`run_batch` executes a job list and returns results **in
  submission order**.  ``n_jobs=1`` runs in-process (no pool, no
  subprocesses -- the hermetic path tests use); ``n_jobs>1`` fans out
  over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Every
  simulation is deterministic, so the two paths are bit-identical.

Before submission the parent resolves every workload's cost vector
(persistent cache hit or one computation) so pool workers receive a
precomputed profile inside the pickled workload and never re-derive
the grid; the Mandelbrot column memo is explicitly *excluded* from the
pickle (see ``MandelbrotWorkload.__getstate__``).

``n_jobs`` resolution: an explicit positive integer wins; ``0`` or
``None`` means "all cores" (``REPRO_JOBS`` overrides the core count).

Million-run sweeps additionally need *streaming*: results must land on
disk as they finish, memory must stay bounded, and a killed sweep must
be resumable.  :func:`stream_batch` provides that -- a generator
yielding ``(index, result)`` in submission order with a bounded
in-flight window, optional incremental JSONL persistence (one
``json`` line per finished job, flushed immediately, keyed by
:meth:`SimJob.key`), and ``resume=True`` to skip any job whose key is
already in the file.  ``KeyboardInterrupt`` and ``SIGTERM`` flush
everything finished so far plus a ``<persist>.manifest.json`` resume
manifest before propagating.  :func:`run_batch` is now a thin list
collector over the same core.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import signal
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, Optional, Sequence

from .obs.logutil import get_logger
from .simulation import ClusterSpec, SimResult, simulate, simulate_tree
from .workloads import Workload

_log = get_logger("batch")

__all__ = [
    "SimJob",
    "run_batch",
    "stream_batch",
    "resolve_jobs",
    "batch_keys",
]

#: Environment variable overriding the "all cores" job count.
ENV_JOBS = "REPRO_JOBS"


@dataclasses.dataclass(frozen=True)
class SimJob(object):
    """One independent simulation: inputs only, no shared state.

    ``engine`` selects the executor: ``"master"`` (the centralized
    master--slave engine, :func:`repro.simulation.simulate`),
    ``"tree"`` (the decentralized tree engine,
    :func:`repro.simulation.simulate_tree`, for which ``scheme`` is
    cosmetic and ``params`` carries ``weighted``/``grain``) or
    ``"decentral"`` (the shared-counter contention model,
    :func:`repro.decentral.simulate_decentral`, where ``params`` may
    carry ``atomic_op_cost``/``group_size``/``lease``).
    ``params`` holds extra keyword arguments (``acp_model``, ``alpha``,
    ...); ``tag`` is a free-form caller label (e.g. ``"p=8/ded"``).

    ``collect_events=True`` additionally captures the unified
    observability trace (see :mod:`repro.obs`) and attaches it to the
    result as ``SimResult.obs_events``.  ``engine="event"`` is accepted
    as an alias for ``"master"`` (the master--slave engine *is* the
    event-driven one); it normalizes before hashing, so the alias does
    not perturb job keys.
    """

    scheme: str
    workload: Workload
    cluster: ClusterSpec
    engine: str = "master"
    params: dict = dataclasses.field(default_factory=dict)
    tag: str = ""
    collect_events: bool = False

    def __post_init__(self) -> None:
        if self.engine == "event":
            object.__setattr__(self, "engine", "master")
        if self.engine not in ("master", "tree", "decentral"):
            raise ValueError(
                f"engine must be 'master', 'tree', 'decentral' or "
                f"'event', got {self.engine!r}"
            )

    def describe(self) -> str:
        """A stable, human-readable descriptor of the job's inputs."""
        wl = self.workload
        wl_sig = wl.cost_signature()
        wl_part = (
            repr(wl_sig) if wl_sig is not None
            else f"{type(wl).__name__}(size={wl.size})"
        )
        cl = self.cluster
        nodes = ";".join(
            f"{n.name}:s={n.speed!r}:l={n.latency!r}:b={n.bandwidth!r}"
            f":v={n.virtual_power!r}:f={n.fails_at!r}"
            f":seg={n.segment!r}:load={n.load!r}"
            for n in cl.nodes
        )
        cl_part = (
            f"nodes=[{nodes}]:ms={cl.master_service!r}"
            f":req={cl.request_bytes!r}:rep={cl.reply_bytes!r}"
            f":res={cl.result_bytes_per_item!r}"
            f":mbw={cl.master_bandwidth!r}"
        )
        params = ",".join(
            f"{k}={self.params[k]!r}" for k in sorted(self.params)
        )
        # ``collect_events`` marks the descriptor only when on: the
        # trace does not change what the simulation computes, and the
        # silent default keeps pre-existing job keys byte-stable.
        events_part = "|events" if self.collect_events else ""
        return (
            f"{self.engine}|{self.scheme}|{self.tag}|{wl_part}"
            f"|{cl_part}|{params}{events_part}"
        )

    @property
    def key(self) -> str:
        """Deterministic job identity: sha256 of :meth:`describe`."""
        return hashlib.sha256(
            self.describe().encode("utf-8")
        ).hexdigest()

    def run(self, collector=None) -> SimResult:
        """Execute this job in the current process.

        ``collector`` (optional) replaces the internal buffer used
        when ``collect_events`` is set, so a caller can observe the
        identical events live (e.g. the service pool streaming them to
        subscribers) without perturbing the run: the collector must
        retain its events (``.events``) for ``SimResult.obs_events``.
        """
        kwargs = dict(self.params)
        trace = None
        if self.collect_events and "collector" not in kwargs:
            if collector is None:
                from .obs import BufferedCollector

                collector = BufferedCollector()
            trace = collector
            kwargs["collector"] = trace
        if self.engine == "tree":
            result = simulate_tree(self.workload, self.cluster, **kwargs)
        elif self.engine == "decentral":
            from .decentral import simulate_decentral

            result = simulate_decentral(self.scheme, self.workload,
                                        self.cluster, **kwargs)
        else:
            result = simulate(self.scheme, self.workload, self.cluster,
                              **kwargs)
        if trace is not None:
            result.obs_events = trace.events
        return result


def _execute(job: SimJob) -> SimResult:
    """Top-level pool target (must be module-level for pickling)."""
    return job.run()


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count."""
    if n_jobs is None or n_jobs == 0:
        env = os.environ.get(ENV_JOBS)
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                pass
        return max(1, os.cpu_count() or 1)
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0 or None, got {n_jobs}")
    return int(n_jobs)


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Translate SIGTERM into KeyboardInterrupt for the duration.

    A sweep killed by its supervisor (``kill <pid>``) then flushes
    exactly like a Ctrl-C one: finished results are already on disk,
    and the manifest records the partial state.  Signal handlers are
    main-thread-only; elsewhere this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _raise(signum, frame):  # pragma: no cover - exercised via kill
        raise KeyboardInterrupt(f"signal {signum}")

    try:
        signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):  # pragma: no cover - exotic runtimes
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class _Persister(object):
    """Incremental JSONL sink keyed by :meth:`SimJob.key`.

    One flushed ``json`` line per finished job, so a killed sweep
    loses at most the in-flight jobs.  On resume, a torn final line
    (the process died mid-write) is tolerated: it fails to parse, is
    ignored, and a newline is patched in before appending so the next
    record starts clean.
    """

    def __init__(self, path: Optional[str], resume: bool) -> None:
        self.path = path
        self.loaded: dict[str, dict] = {}
        self._fh = None
        if path is None:
            return
        if resume and os.path.exists(path):
            skipped = 0
            with open(path, "r", encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except ValueError:
                        # Torn tail from a killed sweep: skip it; the
                        # job re-runs and rewrites a whole record.
                        skipped += 1
                        continue
                    key = rec.get("key") if isinstance(rec, dict) \
                        else None
                    if not key:
                        # Parses as JSON but is not one of our records
                        # (e.g. a torn line that happens to be valid,
                        # or foreign content): same treatment.
                        skipped += 1
                        continue
                    self.loaded[key] = rec
            if skipped:
                _log.warning(
                    "resume from %s: skipped %d unusable line(s) "
                    "(torn tail or foreign content); the affected "
                    "job(s) will re-run and be rewritten", path, skipped,
                )
            with open(path, "rb+") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
        self._fh = open(path, "a", encoding="utf-8")

    def record(self, job: SimJob, index: int, result: SimResult) -> None:
        if self._fh is None:
            return
        rec = {
            "key": job.key,
            "index": index,
            "scheme": job.scheme,
            "engine": job.engine,
            "tag": job.tag,
            "result": result.to_dict(),
        }
        self._fh.write(json.dumps(rec) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _write_manifest(path: str, total: int, done: int,
                    complete: bool) -> None:
    with open(path + ".manifest.json", "w", encoding="utf-8") as fh:
        json.dump(
            {"total": total, "done": done, "complete": complete}, fh
        )
        fh.write("\n")


def stream_batch(
    jobs: Iterable[SimJob],
    n_jobs: Optional[int] = 1,
    *,
    window: Optional[int] = None,
    persist: Optional[str] = None,
    resume: bool = False,
    pool: Optional[ProcessPoolExecutor] = None,
) -> Iterator[tuple[int, SimResult]]:
    """Stream ``(index, result)`` pairs in submission order.

    The streaming core behind :func:`run_batch`:

    * **Bounded in-flight window** -- at most ``window`` jobs (default
      ``2 x workers``) are submitted ahead of the consumer, so a
      million-job sweep holds a handful of futures, not a million.
    * **Incremental persistence** -- ``persist="sweep.jsonl"`` appends
      one flushed JSON line per finished job (``SimResult.to_dict``
      round-trips exactly; ``obs_events`` traces are not persisted).
    * **Resume** -- ``resume=True`` loads the existing file and yields
      persisted results (rebuilt via :meth:`SimResult.from_dict`) for
      any job whose :meth:`SimJob.key` already appears, running only
      the remainder.
    * **Interrupt safety** -- ``KeyboardInterrupt`` or ``SIGTERM``
      cancels outstanding work, flushes ``<persist>.manifest.json``
      (``{"total", "done", "complete"}``) and propagates; a later
      ``resume=True`` call picks up where the sweep died.

    Job validation and workload cost resolution happen eagerly at call
    time; the returned generator does the work lazily.
    """
    jobs = list(jobs)
    for job in jobs:
        if not isinstance(job, SimJob):
            raise TypeError(
                f"stream_batch expects SimJob items, got {job!r}"
            )
    # Resolve every distinct workload's cost vector in the parent so
    # pool workers receive a precomputed profile instead of re-deriving
    # the grid once per process.
    for workload in {id(j.workload): j.workload for j in jobs}.values():
        workload.costs()
    return _stream(jobs, n_jobs, window, persist, resume, pool)


def _stream(jobs, n_jobs, window, persist, resume, pool):
    sink = _Persister(persist, resume)
    total = len(jobs)
    done = 0
    complete = False
    try:
        with _sigterm_as_interrupt():
            cached: dict[int, SimResult] = {}
            if sink.loaded:
                for idx, job in enumerate(jobs):
                    rec = sink.loaded.get(job.key)
                    if rec is not None:
                        cached[idx] = SimResult.from_dict(rec["result"])
            to_run = total - len(cached)
            workers = resolve_jobs(n_jobs)
            if pool is None and (workers == 1 or to_run <= 1):
                for idx, job in enumerate(jobs):
                    result = cached.pop(idx, None)
                    if result is None:
                        result = job.run()
                        sink.record(job, idx, result)
                    done += 1
                    yield idx, result
            else:
                own = pool is None
                ex = pool or ProcessPoolExecutor(
                    max_workers=min(workers, to_run)
                )
                try:
                    win = window or 2 * (
                        getattr(ex, "_max_workers", None) or workers
                    )
                    win = max(1, win)
                    inflight: deque = deque()
                    next_idx = 0
                    while next_idx < total or inflight:
                        while next_idx < total and len(inflight) < win:
                            if next_idx in cached:
                                inflight.append((next_idx, None))
                            else:
                                inflight.append((
                                    next_idx,
                                    ex.submit(_execute, jobs[next_idx]),
                                ))
                            next_idx += 1
                        idx, fut = inflight.popleft()
                        if fut is None:
                            result = cached.pop(idx)
                        else:
                            result = fut.result()
                            sink.record(jobs[idx], idx, result)
                        done += 1
                        yield idx, result
                finally:
                    if own:
                        ex.shutdown(cancel_futures=True)
        complete = True
    finally:
        # Runs on normal exhaustion, KeyboardInterrupt/SIGTERM, and
        # GeneratorExit (consumer broke out): everything finished is
        # already flushed line-by-line; stamp the manifest last.
        sink.close()
        if persist is not None:
            _write_manifest(persist, total, done, complete)


def run_batch(
    jobs: Iterable[SimJob],
    n_jobs: Optional[int] = 1,
    pool: Optional[ProcessPoolExecutor] = None,
    *,
    window: Optional[int] = None,
    persist: Optional[str] = None,
    resume: bool = False,
) -> list[SimResult]:
    """Run every job; results come back in submission order.

    ``n_jobs=1`` (the default) executes in-process with no pool at all,
    guaranteeing hermetic, dependency-free behaviour; ``n_jobs>1`` (or
    ``0``/``None`` for all cores) fans out across processes.  The
    simulations are deterministic, so both paths produce bit-identical
    results.  An existing ``pool`` may be passed to amortize worker
    start-up across batches (``n_jobs`` is then ignored).

    ``persist``/``resume``/``window`` stream through
    :func:`stream_batch`: incremental JSONL persistence, killed-sweep
    resume, and a bounded in-flight submission window.
    """
    return [
        result
        for _, result in stream_batch(
            jobs,
            n_jobs,
            window=window,
            persist=persist,
            resume=resume,
            pool=pool,
        )
    ]


def batch_keys(jobs: Sequence[SimJob]) -> list[str]:
    """Deterministic keys for a job list (submission order)."""
    return [job.key for job in jobs]
