"""Persistent, content-addressed cost-profile cache.

Every experiment module needs the same expensive artifact: the full
``L(i)`` cost vector of the paper's Mandelbrot loop (a whole-grid
escape-time pass -- seconds of CPU at the 4000x2000 window).  The
vector is a pure function of the workload's construction parameters,
so it is cached **content-addressed**: :meth:`repro.workloads.Workload
.cost_key` hashes the parameters (class, size, max_iter, domain,
``S_f``/permutation) and this module maps the key to the vector through
two layers:

* an **in-memory LRU** (per-process, bounded number of vectors) so
  repeated lookups inside one run are free;
* an **on-disk store** of ``.npy`` files under ``REPRO_CACHE_DIR``
  (default ``~/.cache/repro``) so a grid is computed once per machine,
  ever.  Files are written atomically (temp file + ``os.replace``) and
  carry a version stamp; corrupted or version-mismatched files are
  silently ignored and recomputed, never fatal.

The on-disk format is a plain 1-D float64 ``.npy`` whose first two
elements are a header -- ``[CACHE_VERSION, payload_length]`` -- followed
by the cost vector.  The header lets a reader reject stale formats and
truncated writes without a sidecar file.

The module keeps one process-wide active cache (:func:`get_cache`);
:func:`configure` swaps it, which is how the CLI's ``--cache-dir`` /
``--no-cache`` flags and the test suite's hermetic temp dirs plug in.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = [
    "CACHE_VERSION",
    "ENV_CACHE_DIR",
    "default_cache_dir",
    "signature_key",
    "CostCache",
    "get_cache",
    "configure",
]

#: On-disk format version; bump when the file layout changes.
CACHE_VERSION = 1

#: Environment variable overriding the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Header length (version stamp + payload length) in float64 slots.
_HEADER = 2


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def signature_key(signature: object) -> str:
    """Content address for a JSON-able signature (sha256 hex digest)."""
    blob = json.dumps(signature, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _wrap(costs: np.ndarray) -> np.ndarray:
    header = np.array([CACHE_VERSION, costs.size], dtype=np.float64)
    return np.concatenate((header, costs))


def _unwrap(raw: object) -> Optional[np.ndarray]:
    """Validate a loaded file; ``None`` for anything malformed/stale."""
    if not isinstance(raw, np.ndarray):
        return None
    if raw.ndim != 1 or raw.dtype != np.float64 or raw.size < _HEADER:
        return None
    version, length = raw[0], raw[1]
    if version != CACHE_VERSION or length != raw.size - _HEADER:
        return None
    return raw[_HEADER:]


class CostCache(object):
    """Two-layer (memory LRU + disk) store of cost vectors by key."""

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        memory_slots: int = 64,
        enabled: bool = True,
    ) -> None:
        if memory_slots < 0:
            raise ValueError(
                f"memory_slots must be >= 0, got {memory_slots}"
            )
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self.memory_slots = int(memory_slots)
        self.enabled = bool(enabled)
        self._memory: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- layout ----------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """On-disk location of one cache entry."""
        return self.directory / f"{key}.npy"

    # -- lookup ----------------------------------------------------------------

    def get(self, key: Optional[str]) -> Optional[np.ndarray]:
        """The cached vector for ``key``, or ``None`` on any miss.

        Disk problems of every kind (missing file, unreadable file,
        truncated write, foreign format, stale version stamp) count as
        misses: the caller recomputes and overwrites.
        """
        if not self.enabled or key is None:
            return None
        vec = self._memory.get(key)
        if vec is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return vec
        vec = self._load(key)
        if vec is None:
            self.misses += 1
            return None
        self.hits += 1
        self._remember(key, vec)
        return vec

    def _load(self, key: str) -> Optional[np.ndarray]:
        try:
            raw = np.load(self.path_for(key), allow_pickle=False)
        except (OSError, ValueError, EOFError):
            return None
        vec = _unwrap(raw)
        if vec is None:
            return None
        vec = np.ascontiguousarray(vec)
        vec.setflags(write=False)
        return vec

    # -- store -----------------------------------------------------------------

    def put(self, key: Optional[str], costs: np.ndarray) -> None:
        """Store ``costs`` under ``key`` (memory + atomic disk write)."""
        if not self.enabled or key is None:
            return
        vec = np.ascontiguousarray(costs, dtype=np.float64)
        if vec.ndim != 1:
            raise ValueError(
                f"cost vectors must be 1-D, got shape {vec.shape}"
            )
        frozen = vec.copy()
        frozen.setflags(write=False)
        self._remember(key, frozen)
        try:
            self._store(key, frozen)
        except OSError:
            # A read-only or full disk degrades to memory-only caching.
            pass

    def _store(self, key: str, vec: np.ndarray) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, _wrap(vec))
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _remember(self, key: str, vec: np.ndarray) -> None:
        if self.memory_slots == 0:
            return
        self._memory[key] = vec
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)

    # -- maintenance ------------------------------------------------------------

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the disk layer stays)."""
        self._memory.clear()

    def clear(self) -> None:
        """Drop both layers: memory and every on-disk entry."""
        self.clear_memory()
        if not self.directory.is_dir():
            return
        for path in self.directory.glob("*.npy"):
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (
            f"<CostCache [{state}] dir={self.directory} "
            f"mem={len(self._memory)}/{self.memory_slots} "
            f"hits={self.hits} misses={self.misses}>"
        )


#: The process-wide active cache (created lazily; see :func:`get_cache`).
_active: Optional[CostCache] = None


def get_cache() -> CostCache:
    """The active process-wide cache, creating the default on first use."""
    global _active
    if _active is None:
        _active = CostCache()
    return _active


def configure(
    directory: Optional[os.PathLike] = None,
    enabled: bool = True,
    memory_slots: int = 64,
) -> CostCache:
    """Replace the active cache (CLI flags, tests) and return it."""
    global _active
    _active = CostCache(
        directory=directory, enabled=enabled, memory_slots=memory_slots
    )
    return _active
