"""Seeded chaos engineering for both substrates.

One :class:`FaultPlan` -- worker fail-stop, restart/rejoin, message
delay/loss, master stalls, load spikes -- applies uniformly to the
discrete-event simulators (``simulate(..., chaos=plan)``,
``simulate_tree(..., chaos=plan)``) and to the real multiprocessing
runtime (:func:`run_chaos`).  The trace invariant auditor in
:mod:`repro.verify` checks that a faulty run still covered every
iteration exactly once; ``docs/fault_model.md`` documents the taxonomy
and the invariants.
"""

from .plan import (
    ChaosError,
    FaultEvent,
    FaultPlan,
    LoadSpike,
    MasterStall,
    MessageDelay,
    MessageLoss,
    WorkerDeath,
    WorkerRestart,
)
from .runtime import ChaosController, run_chaos
from .service import applicable_faults, inject_service_faults

__all__ = [
    "applicable_faults",
    "inject_service_faults",
    "ChaosError",
    "FaultEvent",
    "FaultPlan",
    "WorkerDeath",
    "WorkerRestart",
    "MessageDelay",
    "MessageLoss",
    "MasterStall",
    "LoadSpike",
    "ChaosController",
    "run_chaos",
]
