"""Seeded, serializable fault plans -- one fault model for every substrate.

The paper's distributed schemes exist because real clusters are
nondedicated and unreliable; a :class:`FaultPlan` makes that
unreliability *injectable, reproducible, and machine-checkable*.  A plan
is pure data: a time-ordered set of fault events that the discrete-event
engines (:func:`repro.simulation.simulate`,
:func:`repro.simulation.simulate_tree`) and the real multiprocessing
runtime (:func:`repro.chaos.run_chaos`) all interpret with the same
semantics:

* :class:`WorkerDeath` -- fail-stop at ``at``: every message in flight
  and every undelivered result of the worker is lost; the master
  requeues the lost intervals FIFO (loop order) and survivors recompute
  them, so coverage of ``[0, I)`` stays exactly-once.
* :class:`WorkerRestart` -- the PE rejoins at ``at`` (a fresh process in
  the runtime, a revived state in the simulator) and asks for work like
  any idle slave.  Only meaningful after a death of the same worker.
* :class:`MessageDelay` -- the worker's first request transmitted at or
  after ``at`` is delayed by ``delay`` seconds (accounted as wait time).
* :class:`MessageLoss` -- the worker's first request at or after ``at``
  is dropped and retransmitted after :attr:`FaultPlan.retry_after`
  (loss == delay-by-retransmission, the view a request/reply protocol
  has of a lost datagram).
* :class:`MasterStall` -- the master serves nothing during
  ``[at, at + duration)`` (GC pause / scheduler hiccup).
* :class:`LoadSpike` -- ``extra_q`` extra runnable processes on the
  worker's host during ``[at, at + duration)``; in the simulator this
  overlays the node's :class:`~repro.simulation.loadgen.LoadTrace`, in
  the runtime it starts real matrix-add stressor processes.

Times are in *substrate seconds*: virtual seconds when a plan is applied
to the simulator, wall-clock seconds (optionally scaled, see
:meth:`FaultPlan.scaled`) when applied to the runtime.

Plans round-trip through JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`) and can be generated reproducibly from a
seed (:meth:`FaultPlan.random`).  ``docs/fault_model.md`` documents the
full taxonomy and the invariants the auditor (:mod:`repro.verify`)
checks after a faulty run.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Iterable, Optional, Union, cast

import numpy as np

__all__ = [
    "ChaosError",
    "WorkerDeath",
    "WorkerRestart",
    "MessageDelay",
    "MessageLoss",
    "MasterStall",
    "LoadSpike",
    "FaultEvent",
    "FaultPlan",
]


class ChaosError(ValueError):
    """Raised for malformed fault plans or unsupported applications."""


def _check_time(at: float) -> None:
    if not (at >= 0.0):  # also rejects NaN
        raise ChaosError(f"event time must be >= 0, got {at}")


@dataclasses.dataclass(frozen=True)
class WorkerDeath(object):
    """Fail-stop: worker ``worker`` dies at time ``at``."""

    worker: int
    at: float
    kind: ClassVar[str] = "death"

    def __post_init__(self) -> None:
        _check_time(self.at)
        if self.worker < 0:
            raise ChaosError(f"worker must be >= 0, got {self.worker}")


@dataclasses.dataclass(frozen=True)
class WorkerRestart(object):
    """The (previously dead) worker rejoins at time ``at``."""

    worker: int
    at: float
    kind: ClassVar[str] = "restart"

    def __post_init__(self) -> None:
        _check_time(self.at)
        if self.worker < 0:
            raise ChaosError(f"worker must be >= 0, got {self.worker}")


@dataclasses.dataclass(frozen=True)
class MessageDelay(object):
    """The worker's first message at/after ``at`` is late by ``delay``."""

    worker: int
    at: float
    delay: float
    kind: ClassVar[str] = "delay"

    def __post_init__(self) -> None:
        _check_time(self.at)
        if self.worker < 0:
            raise ChaosError(f"worker must be >= 0, got {self.worker}")
        if not (self.delay > 0.0):
            raise ChaosError(f"delay must be > 0, got {self.delay}")


@dataclasses.dataclass(frozen=True)
class MessageLoss(object):
    """The worker's first message at/after ``at`` is dropped once."""

    worker: int
    at: float
    kind: ClassVar[str] = "loss"

    def __post_init__(self) -> None:
        _check_time(self.at)
        if self.worker < 0:
            raise ChaosError(f"worker must be >= 0, got {self.worker}")


@dataclasses.dataclass(frozen=True)
class MasterStall(object):
    """The master serves no request during ``[at, at + duration)``."""

    at: float
    duration: float
    kind: ClassVar[str] = "stall"

    def __post_init__(self) -> None:
        _check_time(self.at)
        if not (self.duration > 0.0):
            raise ChaosError(
                f"stall duration must be > 0, got {self.duration}"
            )


@dataclasses.dataclass(frozen=True)
class LoadSpike(object):
    """``extra_q`` extra runnable processes during the window."""

    worker: int
    at: float
    duration: float
    extra_q: int = 2
    kind: ClassVar[str] = "spike"

    def __post_init__(self) -> None:
        _check_time(self.at)
        if self.worker < 0:
            raise ChaosError(f"worker must be >= 0, got {self.worker}")
        if not (self.duration > 0.0):
            raise ChaosError(
                f"spike duration must be > 0, got {self.duration}"
            )
        if self.extra_q < 1:
            raise ChaosError(f"extra_q must be >= 1, got {self.extra_q}")


FaultEvent = Union[
    WorkerDeath, WorkerRestart, MessageDelay, MessageLoss, MasterStall,
    LoadSpike,
]

_EVENT_TYPES: dict[str, type] = {
    "death": WorkerDeath,
    "restart": WorkerRestart,
    "delay": MessageDelay,
    "loss": MessageLoss,
    "stall": MasterStall,
    "spike": LoadSpike,
}


@dataclasses.dataclass(frozen=True)
class FaultPlan(object):
    """An ordered, validated set of fault events plus plan-wide knobs.

    ``retry_after`` is the retransmission backoff applied when a
    :class:`MessageLoss` fires (the lost request is resent after that
    many seconds).  ``seed`` records provenance when the plan came from
    :meth:`random`; it does not affect application.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None
    retry_after: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if not (self.retry_after > 0.0):
            raise ChaosError(
                f"retry_after must be > 0, got {self.retry_after}"
            )
        for ev in self.events:
            if getattr(ev, "kind", None) not in _EVENT_TYPES:
                raise ChaosError(f"not a fault event: {ev!r}")
        # Deaths and restarts of one worker must alternate in time,
        # starting with a death (a restart needs something to restart).
        by_worker: dict[int, list[FaultEvent]] = {}
        for ev in self.events:
            if ev.kind in ("death", "restart"):
                by_worker.setdefault(ev.worker, []).append(ev)
        for worker, sequence in by_worker.items():
            sequence = sorted(sequence, key=lambda e: e.at)
            expected = "death"
            last_at = -1.0
            for ev in sequence:
                if ev.kind != expected:
                    raise ChaosError(
                        f"worker {worker}: {ev.kind} at t={ev.at} out of "
                        f"order (deaths and restarts must alternate, "
                        f"starting with a death)"
                    )
                if ev.at <= last_at:
                    raise ChaosError(
                        f"worker {worker}: death/restart times must "
                        f"strictly increase (got {ev.at} after {last_at})"
                    )
                last_at = ev.at
                expected = "restart" if expected == "death" else "death"

    # -- views -------------------------------------------------------------

    def of_kind(self, kind: str) -> tuple[FaultEvent, ...]:
        """All events of one kind, in time order."""
        return tuple(sorted(
            (e for e in self.events if e.kind == kind),
            key=lambda e: e.at,
        ))

    @property
    def deaths(self) -> tuple[WorkerDeath, ...]:
        # Each event class pins ``kind`` as a ClassVar, so filtering by
        # kind recovers the concrete type; cast records that invariant.
        return cast("tuple[WorkerDeath, ...]", self.of_kind("death"))

    @property
    def restarts(self) -> tuple[WorkerRestart, ...]:
        return cast("tuple[WorkerRestart, ...]", self.of_kind("restart"))

    @property
    def stalls(self) -> tuple[MasterStall, ...]:
        return cast("tuple[MasterStall, ...]", self.of_kind("stall"))

    @property
    def spikes(self) -> tuple[LoadSpike, ...]:
        return cast("tuple[LoadSpike, ...]", self.of_kind("spike"))

    def message_faults(self, worker: int) -> list[tuple[float, str, float]]:
        """``(at, kind, extra_seconds)`` per delay/loss of one worker."""
        faults = []
        for ev in self.events:
            if ev.kind == "delay" and ev.worker == worker:
                faults.append((ev.at, "delay", ev.delay))
            elif ev.kind == "loss" and ev.worker == worker:
                faults.append((ev.at, "loss", self.retry_after))
        faults.sort()
        return faults

    @property
    def max_worker(self) -> int:
        """Highest worker index referenced (-1 if none)."""
        indices = [
            ev.worker for ev in self.events if hasattr(ev, "worker")
        ]
        return max(indices) if indices else -1

    @property
    def horizon(self) -> float:
        """Latest instant any event is still in effect."""
        edge = 0.0
        for ev in self.events:
            edge = max(edge, ev.at + getattr(ev, "duration", 0.0))
        return edge

    def scaled(self, factor: float) -> "FaultPlan":
        """The same plan with every time (and duration) scaled.

        Used to map a virtual-time plan onto wall-clock seconds when
        replaying it on the real runtime.
        """
        if not (factor > 0.0):
            raise ChaosError(f"scale factor must be > 0, got {factor}")
        scaled = []
        for ev in self.events:
            updates = {"at": ev.at * factor}
            if hasattr(ev, "duration"):
                updates["duration"] = ev.duration * factor
            if hasattr(ev, "delay"):
                updates["delay"] = ev.delay * factor
            scaled.append(dataclasses.replace(ev, **updates))
        return dataclasses.replace(
            self,
            events=tuple(scaled),
            retry_after=self.retry_after * factor,
        )

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-able document that :meth:`from_json` restores exactly."""
        return {
            "seed": self.seed,
            "retry_after": self.retry_after,
            "events": [
                {"kind": ev.kind, **dataclasses.asdict(ev)}
                for ev in self.events
            ],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        events = []
        for entry in doc.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            if kind not in _EVENT_TYPES:
                raise ChaosError(f"unknown fault kind {kind!r}")
            events.append(_EVENT_TYPES[kind](**entry))
        return cls(
            events=tuple(events),
            seed=doc.get("seed"),
            retry_after=doc.get("retry_after", 0.05),
        )

    # -- generation --------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        workers: int,
        horizon: float = 1.0,
        deaths: int = 1,
        restart_probability: float = 0.5,
        delays: int = 1,
        losses: int = 1,
        stalls: int = 1,
        spikes: int = 1,
        retry_after: float = 0.05,
    ) -> "FaultPlan":
        """A reproducible plan drawn from ``seed``.

        Worker 0 is never killed, so at least one PE always survives and
        the loop can complete (the all-dead case is a separate,
        deliberately constructed test).  Deaths land in the first 80% of
        the horizon so the faults actually perturb the run.
        """
        if workers < 1:
            raise ChaosError(f"workers must be >= 1, got {workers}")
        if not (horizon > 0.0):
            raise ChaosError(f"horizon must be > 0, got {horizon}")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        mortal = list(range(1, workers))
        rng.shuffle(mortal)
        for victim in mortal[:max(0, int(deaths))]:
            at = float(rng.uniform(0.05, 0.8) * horizon)
            events.append(WorkerDeath(worker=victim, at=at))
            if rng.random() < restart_probability:
                back = float(rng.uniform(at + 1e-3, horizon))
                events.append(WorkerRestart(worker=victim, at=back))
        for _ in range(max(0, int(delays))):
            events.append(MessageDelay(
                worker=int(rng.integers(0, workers)),
                at=float(rng.uniform(0.0, horizon)),
                delay=float(rng.uniform(0.01, 0.10) * horizon),
            ))
        for _ in range(max(0, int(losses))):
            events.append(MessageLoss(
                worker=int(rng.integers(0, workers)),
                at=float(rng.uniform(0.0, horizon)),
            ))
        for _ in range(max(0, int(stalls))):
            events.append(MasterStall(
                at=float(rng.uniform(0.0, horizon)),
                duration=float(rng.uniform(0.01, 0.05) * horizon),
            ))
        for _ in range(max(0, int(spikes))):
            events.append(LoadSpike(
                worker=int(rng.integers(0, workers)),
                at=float(rng.uniform(0.0, 0.8) * horizon),
                duration=float(rng.uniform(0.1, 0.4) * horizon),
                extra_q=int(rng.integers(1, 4)),
            ))
        events.sort(key=lambda e: (e.at, e.kind,
                                   getattr(e, "worker", -1)))
        return cls(events=tuple(events), seed=int(seed),
                   retry_after=retry_after)

    def summary(self) -> str:
        """One line per event, time-ordered (for reports and the CLI)."""
        if not self.events:
            return "(empty fault plan)"
        lines = []
        for ev in sorted(self.events, key=lambda e: e.at):
            extra = ""
            if hasattr(ev, "duration"):
                extra = f" for {ev.duration:.3f}s"
            if hasattr(ev, "delay"):
                extra = f" by {ev.delay:.3f}s"
            target = (
                f"worker {ev.worker}" if hasattr(ev, "worker") else "master"
            )
            lines.append(f"  t={ev.at:8.3f}  {ev.kind:<7s} {target}{extra}")
        return "\n".join(lines)
