"""Replay a :class:`FaultPlan` against the real multiprocessing runtime.

:func:`run_chaos` is the runtime counterpart of
``simulate(..., chaos=plan)``: the same plan, interpreted on real OS
processes --

* **death**: the worker's current incarnation is SIGKILLed; the master
  detects the EOF and requeues the outstanding interval (FIFO, like the
  simulator);
* **restart**: a fresh process is spawned for the same worker id and
  admitted into the running master loop through
  :class:`~repro.runtime.master.MasterHooks`;
* **delay / loss**: translated to per-worker ``(at, extra)`` sleeps
  before the affected request (loss = the retransmission view:
  one request arrives ``retry_after`` late);
* **stall**: the master thread itself sleeps, so requests queue behind
  the stall exactly as in the simulator;
* **spike**: real ``matrix_add_load`` stressor processes run for the
  window (uniform background pressure -- per-worker pinning would need
  CPU affinity).

Plan times are wall-clock seconds after the run starts; use
``plan.scaled(...)`` (or the ``time_scale`` argument) to map a
virtual-time plan onto a wall-clock budget.

Whatever the plan does, the contract is the simulator's: the returned
``RunResult.results`` must equal ``workload.execute_serial()`` bit for
bit, and the trace must pass :func:`repro.verify.audit_run` -- the
cross-substrate acceptance test in ``tests/chaos/`` holds both engines
to the same seeded plans.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import signal
import tempfile
import threading
import time
from typing import Optional, Sequence

from ..core import Scheduler, make
from ..core.acp import IMPROVED_ACP, AcpModel
from ..obs import ObsEvent, get_logger, read_jsonl
from ..obs import resolve as _resolve_collector
from ..runtime.config import RuntimeConfig
from ..runtime.executor import RunResult, assemble_results
from ..runtime.master import MasterHooks, MasterResult, master_loop
from ..runtime.worker import WorkerSpec, worker_main
from ..workloads import Workload, matrix_add_load
from .plan import ChaosError, FaultPlan

__all__ = ["ChaosController", "run_chaos"]

#: Event-source tag for fault injections (the driver's own acts).
_SRC = "chaos"

logger = get_logger(__name__)


class ChaosController(MasterHooks):
    """Drives a fault plan from a side thread while the master serves.

    The controller owns the worker processes: it kills them on plan
    deaths, spawns replacements on restarts (handing the new pipe to
    the master via :meth:`admissions`), runs stressors for load spikes,
    and sleeps the master thread for stalls (:meth:`on_tick` runs on
    the master thread, so the sleep *is* the stall).
    """

    def __init__(
        self,
        plan: FaultPlan,
        ctx,
        workload: Workload,
        specs: Sequence[WorkerSpec],
        distributed: bool,
        acp_model: AcpModel,
        config: RuntimeConfig,
        stress_size: int = 200,
        collector=None,
        obs_dir: Optional[str] = None,
    ) -> None:
        self.plan = plan
        self.ctx = ctx
        self.workload = workload
        self.specs = list(specs)
        self.distributed = distributed
        self.acp_model = acp_model
        self.config = config
        self.stress_size = int(stress_size)
        #: injection events (source ``chaos``) land here; worker-side
        #: shards go under ``obs_dir`` (one file per incarnation).
        self.obs = _resolve_collector(collector)
        self.obs_dir = obs_dir
        self._obs_incarnation: dict[int, int] = {}
        self._lock = threading.Lock()
        self._procs: dict[int, mp.process.BaseProcess] = {}
        self._spawned: list[mp.process.BaseProcess] = []
        self._admissions: list[tuple[int, object, Optional[tuple]]] = []
        self._pending_restarts = 0
        self._stalls = sorted(
            ((ev.at, ev.duration) for ev in self.plan.stalls),
        )
        self._stress_stop = ctx.Event()
        self._stressors: list[mp.process.BaseProcess] = []
        self._thread: Optional[threading.Thread] = None
        self._abort = threading.Event()
        self._t0 = 0.0

    # -- lifecycle ---------------------------------------------------------

    def delays_for(self, worker: int) -> list[tuple[float, float]]:
        """The worker's delay/loss faults as ``(at, extra)`` sleeps."""
        return [
            (at, extra)
            for at, _kind, extra in self.plan.message_faults(worker)
        ]

    def _emit(self, kind: str, worker: int = -1, **fields) -> None:
        if self.obs:
            self.obs.emit(ObsEvent(
                kind, _SRC, time.monotonic() - self._t0, worker,
                wall=time.time(), **fields,
            ))

    def worker_obs_path(self, wid: int) -> Optional[str]:
        """Fresh shard path for the next incarnation of ``wid``."""
        if self.obs_dir is None:
            return None
        incarnation = self._obs_incarnation.get(wid, -1) + 1
        self._obs_incarnation[wid] = incarnation
        return os.path.join(
            self.obs_dir, f"worker-{wid:03d}-{incarnation:02d}.jsonl"
        )

    def spawn_worker(self, wid: int, initial: bool):
        """Create (pipe, process) for one worker incarnation."""
        parent, child = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=worker_main,
            args=(child, self.workload, wid),
            kwargs={
                "spec": self.specs[wid],
                "distributed": self.distributed,
                "acp_model": self.acp_model,
                "heartbeat_interval": self.config.heartbeat_interval,
                # Message faults apply to the original incarnation; a
                # restarted process starts with a clean wire.
                "delays": self.delays_for(wid) if initial else None,
                "obs_path": self.worker_obs_path(wid),
            },
            daemon=True,
        )
        return parent, proc

    def start(self, t0: float, procs: dict) -> None:
        """Arm the fault thread; ``procs`` maps wid -> live process."""
        self._t0 = t0
        self._procs = dict(procs)
        self._spawned = list(procs.values())
        self._pending_restarts = len(
            [ev for ev in self.plan.restarts]
        )
        self._thread = threading.Thread(
            target=self._drive, daemon=True
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop fault driving and stressors; kill leftover processes."""
        self._abort.set()
        self._stress_stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.config.join_timeout)
        for proc in self._stressors:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
        self._stressors.clear()

    @property
    def processes(self) -> list:
        """Every process ever spawned (for the executor's join loop)."""
        with self._lock:
            return list(self._spawned)

    # -- MasterHooks -------------------------------------------------------

    def on_tick(self) -> None:
        # Stalls run on the master thread: while it sleeps, requests
        # queue -- the runtime realization of the simulated stall.
        now = time.monotonic() - self._t0
        while self._stalls and self._stalls[0][0] <= now:
            _at, duration = self._stalls.pop(0)
            logger.info("injecting stall of %.3fs", duration)
            self._emit("fault", value=duration, detail="stall")
            time.sleep(duration)

    def admissions(self):
        with self._lock:
            batch = self._admissions
            self._admissions = []
            self._pending_restarts -= len(batch)
        return batch

    def expects_more(self) -> bool:
        with self._lock:
            return self._pending_restarts > 0

    # -- fault thread ------------------------------------------------------

    def _sleep_until(self, at: float) -> bool:
        """Sleep to plan time ``at``; False if the run ended first."""
        remaining = (self._t0 + at) - time.monotonic()
        while remaining > 0:
            if self._abort.wait(min(remaining, 0.05)):
                return False
            remaining = (self._t0 + at) - time.monotonic()
        return not self._abort.is_set()

    def _drive(self) -> None:
        # Deaths, restarts and spike starts in one time-ordered script;
        # spikes release their stressors via the shared stop event when
        # their window closes.
        script = []
        for ev in self.plan.deaths:
            script.append((ev.at, "death", ev))
        for ev in self.plan.restarts:
            script.append((ev.at, "restart", ev))
        for ev in self.plan.spikes:
            script.append((ev.at, "spike", ev))
        script.sort(key=lambda item: item[0])
        spike_ends: list[float] = []
        for at, kind, ev in script:
            if not self._sleep_until(at):
                break
            if kind == "death":
                self._kill(ev.worker)
            elif kind == "restart":
                self._restart(ev.worker)
            elif kind == "spike":
                self._spike(ev)
                spike_ends.append(ev.at + ev.duration)
        for end in sorted(spike_ends):
            if not self._sleep_until(end):
                break
        self._stress_stop.set()

    def _kill(self, wid: int) -> None:
        with self._lock:
            proc = self._procs.get(wid)
        if proc is None or proc.pid is None:
            return
        if proc.is_alive():
            logger.info("injecting death of worker %d", wid)
            self._emit("fault", wid, detail="kill")
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - lost race
                return
        proc.join(timeout=self.config.join_timeout)

    def _restart(self, wid: int) -> None:
        logger.info("injecting restart of worker %d", wid)
        self._emit("restart", wid, detail="spawn")
        parent, proc = self.spawn_worker(wid, initial=False)
        proc.start()
        spec = self.specs[wid]
        with self._lock:
            self._procs[wid] = proc
            self._spawned.append(proc)
            self._admissions.append(
                (wid, parent, (spec.virtual_power, spec.run_queue))
            )

    def _spike(self, ev) -> None:
        self._emit(
            "fault", ev.worker, value=ev.duration, detail="spike",
        )
        for i in range(ev.extra_q):
            proc = self.ctx.Process(
                target=matrix_add_load,
                args=(self._stress_stop,),
                kwargs={"size": self.stress_size, "seed": i},
                daemon=True,
            )
            proc.start()
            self._stressors.append(proc)


def run_chaos(
    scheme: str | Scheduler,
    workload: Workload,
    n_workers: int,
    plan: FaultPlan,
    specs: Optional[Sequence[WorkerSpec]] = None,
    acp_model: AcpModel = IMPROVED_ACP,
    collect_results: bool = True,
    mp_context: str = "fork",
    config: Optional[RuntimeConfig] = None,
    time_scale: float = 1.0,
    stress_size: int = 200,
    collector=None,
    **scheme_kwargs,
) -> RunResult:
    """Run ``workload`` under ``scheme`` while injecting ``plan``.

    The mirror image of ``simulate(..., chaos=plan)`` on real
    processes; see the module docstring for the per-fault semantics.
    Raises :class:`~repro.runtime.master.IncompleteRunError` if the
    plan kills every worker with no restart ahead (the runtime analogue
    of the simulator's all-dead ``SimulationError``).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if plan.max_worker >= n_workers:
        raise ChaosError(
            f"fault plan targets worker {plan.max_worker} but the run "
            f"has {n_workers} workers"
        )
    if time_scale != 1.0:
        plan = plan.scaled(time_scale)
    specs = list(specs or [])
    while len(specs) < n_workers:
        specs.append(WorkerSpec())
    scheduler = (
        make(scheme, workload.size, n_workers, **scheme_kwargs)
        if isinstance(scheme, str)
        else scheme
    )
    if getattr(scheduler, "feedback_dependent", False):
        scheduler.bind_workload(workload)
    base = config or RuntimeConfig.from_env()
    # Fast polling keeps death detection and restart admission snappy
    # relative to plan timescales (callers can still override).
    config = dataclasses.replace(
        base, poll_timeout=min(base.poll_timeout, 0.25)
    )
    ctx = mp.get_context(mp_context)
    obs = _resolve_collector(collector)
    obs_tmp = (
        tempfile.TemporaryDirectory(prefix="repro-chaos-obs-")
        if obs else None
    )
    controller = ChaosController(
        plan, ctx, workload, specs, scheduler.distributed, acp_model,
        config, stress_size=stress_size, collector=collector,
        obs_dir=obs_tmp.name if obs_tmp else None,
    )
    pipes = {}
    procs = {}
    for wid in range(n_workers):
        parent, proc = controller.spawn_worker(wid, initial=True)
        pipes[wid] = parent
        procs[wid] = proc
    t0 = time.monotonic()
    wall0 = time.perf_counter()
    for proc in procs.values():
        proc.start()
    controller.start(t0, procs)
    meta = {
        wid: (specs[wid].virtual_power, specs[wid].run_queue)
        for wid in range(n_workers)
    }
    try:
        master: MasterResult = master_loop(
            scheduler, pipes, meta, config=config, hooks=controller,
            collector=collector,
        )
    finally:
        controller.shutdown()
        for proc in controller.processes:
            proc.join(timeout=config.join_timeout)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
        if obs_tmp is not None:
            # Worker shards (every incarnation, SIGKILLed ones
            # included -- the JSONL reader tolerates a torn tail).
            for name in sorted(os.listdir(obs_tmp.name)):
                for ev in read_jsonl(os.path.join(obs_tmp.name, name)):
                    obs.emit(ev)
            obs_tmp.cleanup()
    elapsed = time.perf_counter() - wall0
    combined = (
        assemble_results(master.results) if collect_results else None
    )
    return RunResult(
        scheme=scheduler.name,
        elapsed=elapsed,
        results=combined,
        stats=master.stats,
        chunks=master.chunks,
        requeued=master.requeued,
    )
