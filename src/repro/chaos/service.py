"""Chaos for a *live* service: FaultPlans against real pool workers.

The one-shot chaos paths take a :class:`~repro.chaos.FaultPlan` into a
run before it starts (simulator hooks, :func:`run_chaos`).  A daemon
has no "before": workers are long-lived and shared across tenants, so
faults must land on whatever incarnation occupies a slot *when the
fault fires*.  :func:`inject_service_faults` maps a plan's
``WorkerDeath`` events onto asyncio timers that SIGKILL the pool slot
at the scaled wall-clock offset -- the pool's heartbeat/deadline
machinery then detects the death, requeues the victim's job at the
head of its tenant's queue, and respawns the slot with a bumped
incarnation.  That full loop (kill -> detect -> requeue -> re-execute
exactly once, other tenants untouched) is exactly what
``tests/service/test_chaos.py`` and the CI service smoke job assert.

Only deaths translate: restarts are implicit (the pool always
respawns), and message delay/loss/stall/spike have no analogue on a
local pipe transport -- they are counted and reported as skipped so a
caller can tell a partially-applicable plan from a fully-applied one.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from ..obs.logutil import get_logger
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.server import ServiceServer

__all__ = ["applicable_faults", "inject_service_faults"]

_log = get_logger("chaos.service")


def applicable_faults(plan: FaultPlan, slots: int) -> list:
    """The subset of ``plan`` a live pool of ``slots`` workers can
    absorb: deaths whose worker index names an existing slot."""
    return [
        ev for ev in plan.events
        if ev.kind == "death" and 0 <= ev.worker < slots
    ]


def inject_service_faults(
    server: "ServiceServer",
    plan: FaultPlan,
    time_scale: float = 1.0,
) -> list[asyncio.Task]:
    """Schedule ``plan``'s worker deaths against a running daemon.

    Must be called from the daemon's event loop (the ``chaos`` op
    does).  ``time_scale`` maps the plan's (often virtual) times onto
    wall-clock seconds: a plan authored for a simulator horizon of
    ``H`` virtual seconds replayed over ``W`` wall seconds wants
    ``time_scale=W/H``.  Returns the scheduled tasks (cancelled on
    server shutdown).
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be > 0, got {time_scale}")
    deaths = applicable_faults(plan, server.pool.size)
    skipped = len(plan.events) - len(deaths)
    if skipped:
        _log.info(
            "fault plan: %d of %d events have no service analogue "
            "(only worker deaths translate to a live pool)",
            skipped, len(plan.events),
        )
    tasks: list[asyncio.Task] = []
    for ev in deaths:
        tasks.append(
            asyncio.get_running_loop().create_task(
                _kill_later(server, ev.worker, ev.at * time_scale)
            )
        )
    return tasks


async def _kill_later(
    server: "ServiceServer", slot: int, delay: float
) -> None:
    await asyncio.sleep(max(0.0, delay))
    hit = server.pool.kill_worker(slot)
    _log.info(
        "chaos: SIGKILL slot %d at +%.3fs (%s)",
        slot, delay, "live worker hit" if hit else "slot empty",
    )
