"""Loop self-scheduling schemes -- the paper's core contribution.

Simple schemes (paper Sec. 2): S, SS, CSS(k), GSS(k), TSS, FSS, FISS and
the new TFSS (Sec. 4).  Distributed schemes (Sec. 3 & 6): DTSS, DFSS,
DFISS, DTFSS, built on the ACP load model.  Tree Scheduling lives in
:mod:`repro.core.tree` (decentralized, driven by its own engine).
"""

from .acp import CLASSIC_ACP, IMPROVED_ACP, AcpModel
from .base import ChunkAssignment, Scheduler, SchemeError, WorkerView, drain
from .chunk import ChunkScheduler, PureScheduler
from .distributed import (
    DistributedFactoringScheduler,
    DistributedFixedIncreaseScheduler,
    DistributedSchedulerBase,
    DistributedTrapezoidFactoringScheduler,
    DistributedTrapezoidScheduler,
)
from .factoring import FactoringScheduler, WeightedFactoringScheduler
from .fixed_increase import FixedIncreaseScheduler, fiss_parameters
from .guided import GuidedScheduler
from .kernel import (
    CALCULATORS,
    ChunkCalculator,
    ChunkLadder,
    assign_ladder,
    evaluate_ladder,
    ladder_costs,
    make_calculator,
)
from .registry import (
    DISTRIBUTED_SCHEMES,
    SCHEMES,
    SIMPLE_SCHEMES,
    make,
    make_many,
    names,
    register,
)
from .static_ import BlockCyclicScheduler, StaticScheduler, weighted_block_sizes
from .tfss import TrapezoidFactoringScheduler, tfss_stage_chunks
from .trapezoid import TrapezoidParams, TrapezoidScheduler, nominal_tss_chunks
from .tree import TreePartition, partner_order, steal_split

__all__ = [
    "AcpModel",
    "CLASSIC_ACP",
    "IMPROVED_ACP",
    "ChunkAssignment",
    "Scheduler",
    "SchemeError",
    "WorkerView",
    "drain",
    "ChunkScheduler",
    "PureScheduler",
    "GuidedScheduler",
    "TrapezoidParams",
    "TrapezoidScheduler",
    "nominal_tss_chunks",
    "FactoringScheduler",
    "WeightedFactoringScheduler",
    "FixedIncreaseScheduler",
    "fiss_parameters",
    "TrapezoidFactoringScheduler",
    "tfss_stage_chunks",
    "StaticScheduler",
    "BlockCyclicScheduler",
    "weighted_block_sizes",
    "DistributedSchedulerBase",
    "DistributedTrapezoidScheduler",
    "DistributedFactoringScheduler",
    "DistributedFixedIncreaseScheduler",
    "DistributedTrapezoidFactoringScheduler",
    "TreePartition",
    "partner_order",
    "steal_split",
    "ChunkCalculator",
    "ChunkLadder",
    "CALCULATORS",
    "make_calculator",
    "evaluate_ladder",
    "ladder_costs",
    "assign_ladder",
    "SCHEMES",
    "SIMPLE_SCHEMES",
    "DISTRIBUTED_SCHEMES",
    "make",
    "make_many",
    "names",
    "register",
]
