"""Available Computing Power (ACP) model -- paper Sec. 3.1 and 5.2.

The distributed schemes scale chunks by each PE's share of the cluster's
total power.  The model (from Xu & Chronopoulos's DTSS):

* ``V_i``  -- *virtual power* of PE ``i`` relative to the slowest PE
  (``V_i = 1`` for the slowest).  The paper's Sec. 5.2-II improvement
  allows decimal values (a real machine is never an exact integer
  multiple of another).
* ``Q_i``  -- number of processes in the PE's run queue, *including*
  the loop process itself, so ``Q_i >= 1``.  This is the entire load
  model: "a process running on a computer will take an equal share of
  its computing resources".
* ``A_i`` -- the available computing power.  Classic DTSS uses
  ``A_i = floor(V_i / Q_i)``, which the paper shows can deadlock the
  whole computation: with ``V = (1, 3)`` and ``Q = (2, 3)`` both ACPs
  floor to zero and "the solving of the problem will have to wait".

The paper's Sec. 5.2-I fix, implemented here as the default, is decimal
division scaled by a constant integer before flooring:

    ``A_i = floor(scale * V_i / Q_i)``,   scale in {10, 100, ...}.

With ``scale = 10`` the example becomes ``A = (5, 7)`` and the loop can
start.  The same fix enables an availability threshold ``A_min``: a PE
whose ``A_i < A_min`` is excluded from the computation (e.g.
``A_min = 6`` in the paper's example admits only the fast PE).
"""

from __future__ import annotations

import dataclasses
import math

from .base import SchemeError

__all__ = ["AcpModel", "CLASSIC_ACP", "IMPROVED_ACP"]


@dataclasses.dataclass(frozen=True)
class AcpModel(object):
    """Maps ``(V_i, Q_i)`` to an integer ACP ``A_i``.

    Parameters
    ----------
    scale:
        Integer multiplier applied before flooring.  ``1`` reproduces
        classic DTSS (integer division, starvation-prone); ``10`` is the
        paper's suggested improvement and the default.
    a_min:
        Minimum ACP for a PE to be considered *available*.  A PE with
        ``A_i < a_min`` reports itself unavailable and receives no work
        (paper: "a lower bound for the load of a processor that will
        make it unavailable for another computation").
    """

    scale: int = 10
    a_min: int = 1

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise SchemeError(f"scale must be >= 1, got {self.scale}")
        if self.a_min < 0:
            raise SchemeError(f"a_min must be >= 0, got {self.a_min}")

    def acp(self, virtual_power: float, run_queue: int) -> int:
        """Compute ``A_i = floor(scale * V_i / Q_i)``."""
        if virtual_power <= 0:
            raise SchemeError(
                f"virtual_power must be > 0, got {virtual_power}"
            )
        if run_queue < 1:
            raise SchemeError(f"run_queue must be >= 1, got {run_queue}")
        return math.floor(self.scale * virtual_power / run_queue)

    def available(self, virtual_power: float, run_queue: int) -> bool:
        """True when the PE meets the availability threshold.

        A PE must always have positive ACP to receive work, so the
        effective threshold is ``max(1, a_min)``.
        """
        return self.acp(virtual_power, run_queue) >= max(1, self.a_min)


#: Classic DTSS integer-division model (paper Sec. 3.1): starves loaded PEs.
CLASSIC_ACP = AcpModel(scale=1, a_min=1)

#: The paper's Sec. 5.2 improvement: decimal division scaled by 10.
IMPROVED_ACP = AcpModel(scale=10, a_min=1)
