"""Core abstractions shared by every self-scheduling scheme.

A *scheme* is a chunk-size policy: given the loop size ``I`` and the set
of workers, it decides how many consecutive iterations to hand to each
worker request.  The paper's master--slave protocol (Sec. 2.2) is:

    1. an idle slave sends a request to the master;
    2. the master computes the next chunk size ``C_i`` from the remaining
       iteration count ``R_{i-1}`` (Eq. 1: ``C_i = f(R_{i-1}, p)``) and
       replies with an interval ``[start, stop)``;
    3. the slave computes the interval and piggy-backs the results onto
       its next request.

Schemes here are *pure policies*, independent of any execution substrate:
the discrete-event simulator (:mod:`repro.simulation`), the real
multiprocessing runtime (:mod:`repro.runtime`), and the analytical
chunk-trace tools (:mod:`repro.analysis.chunks`) all drive the same
objects through the :class:`Scheduler` interface.

Two families exist:

* **simple** schemes (paper Sec. 2) ignore worker identity except for
  stage bookkeeping -- every request at the same scheduling step gets the
  same size regardless of which PE asked;
* **distributed** schemes (paper Sec. 3 and 6) scale chunks by the
  requesting worker's *available computing power* (ACP), carried in the
  :class:`WorkerView` passed to :meth:`Scheduler.next_chunk`.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Iterator, Optional

__all__ = [
    "WorkerView",
    "ChunkAssignment",
    "Scheduler",
    "SchemeError",
    "drain",
]


class SchemeError(ValueError):
    """Raised for invalid scheme parameters (e.g. non-positive loop size)."""


@dataclasses.dataclass(frozen=True)
class WorkerView(object):
    """What the master knows about the requesting worker at request time.

    Attributes
    ----------
    worker_id:
        Stable identifier of the requesting PE (0-based).
    virtual_power:
        The PE's *virtual power* ``V_i`` relative to the slowest PE
        (paper Sec. 3.1); 1.0 for homogeneous treatment.  May be a
        decimal value (paper Sec. 5.2-II).
    run_queue:
        Number of processes in the PE's run queue ``Q_i`` *including*
        the loop process itself; hence ``run_queue >= 1``.
    acp:
        The available computing power ``A_i`` as computed by the ACP
        model in force (an integer after scaling).  Simple schemes
        ignore it.  ``None`` means "not reported" (simple protocol).
    """

    worker_id: int
    virtual_power: float = 1.0
    run_queue: int = 1
    acp: Optional[int] = None

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise SchemeError(f"worker_id must be >= 0, got {self.worker_id}")
        if self.virtual_power <= 0:
            raise SchemeError(
                f"virtual_power must be > 0, got {self.virtual_power}"
            )
        if self.run_queue < 1:
            raise SchemeError(f"run_queue must be >= 1, got {self.run_queue}")


@dataclasses.dataclass(frozen=True)
class ChunkAssignment(object):
    """A half-open interval of loop iterations handed to one worker.

    The master replies to each request "with a pair of numbers
    representing the interval of iterations the slave should work on"
    (paper Sec. 5); this is that pair plus bookkeeping.
    """

    start: int
    stop: int
    worker_id: int
    step: int  # scheduling step index (1-based, paper's ``i``)
    stage: int = 0  # stage index for staged schemes (FSS/FISS/TFSS), else 0

    @property
    def size(self) -> int:
        """Number of iterations in the chunk (paper's ``C_i``)."""
        return self.stop - self.start

    def indices(self) -> range:
        """The iteration indices covered, as a :class:`range`."""
        return range(self.start, self.stop)

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise SchemeError(
                f"empty/negative chunk [{self.start}, {self.stop})"
            )


class Scheduler(ABC):
    """Abstract chunk-size policy over a loop of ``total`` iterations.

    Concrete schemes implement :meth:`_chunk_size`; this base class owns
    the interval bookkeeping (cursor, remaining count, clipping, step
    numbering) so that subclasses only compute sizes.

    A scheduler instance is single-use: it walks the loop from iteration
    0 to ``total`` exactly once.  Create a fresh instance per run (the
    :func:`repro.core.registry.make` factory does this for you).
    """

    #: human-readable scheme name (e.g. ``"TSS"``); set by subclasses.
    name: str = "?"
    #: True for schemes that consume worker ACP (paper Sec. 6 pattern).
    distributed: bool = False
    #: True for schemes whose decisions depend on runtime feedback
    #: beyond ACP (e.g. :class:`repro.adaptive.AdaptiveScheduler`).
    #: Substrates then wire the feedback hooks (``bind_workload``,
    #: ``observe_completion``, ``drain_decisions``) and the analytic
    #: fast path refuses the run.
    feedback_dependent: bool = False

    def __init__(self, total: int, workers: int) -> None:
        if total < 0:
            raise SchemeError(f"total iterations must be >= 0, got {total}")
        if workers < 1:
            raise SchemeError(f"workers must be >= 1, got {workers}")
        self.total = int(total)
        self.workers = int(workers)
        self._cursor = 0
        self._step = 0

    # -- public protocol ---------------------------------------------------

    @property
    def remaining(self) -> int:
        """Iterations not yet assigned (paper's ``R_i``)."""
        return self.total - self._cursor

    @property
    def steps_taken(self) -> int:
        """Number of chunks assigned so far (paper's ``N`` at the end)."""
        return self._step

    @property
    def finished(self) -> bool:
        """True once every iteration has been assigned."""
        return self._cursor >= self.total

    def next_chunk(self, worker: WorkerView) -> Optional[ChunkAssignment]:
        """Assign the next chunk to ``worker``.

        Returns ``None`` when the loop is exhausted (the master then
        replies with a termination message).  The returned interval is
        clipped to the remaining iterations, so chunk sizes always
        conserve the loop: the sizes over a full drain sum to ``total``.
        """
        if self.finished:
            return None
        size = int(self._chunk_size(worker))
        if size < 1:
            size = 1
        size = min(size, self.remaining)
        start = self._cursor
        self._cursor += size
        self._step += 1
        return ChunkAssignment(
            start=start,
            stop=self._cursor,
            worker_id=worker.worker_id,
            step=self._step,
            stage=self._current_stage(),
        )

    # -- subclass hooks ----------------------------------------------------

    @abstractmethod
    def _chunk_size(self, worker: WorkerView) -> int:
        """Return the *nominal* next chunk size (>=1; clipping is ours)."""

    def _current_stage(self) -> int:
        """Stage index recorded on assignments; staged schemes override."""
        return 0

    # -- ACP plumbing (distributed schemes override) -------------------------

    def observe_acp(self, worker_id: int, acp: int) -> None:
        """Record a worker's freshly reported ACP.

        Simple schemes ignore ACP reports; distributed schemes
        (:mod:`repro.core.distributed`) use them for chunk scaling and
        for the "more than half changed -> re-derive parameters" rule.
        """

    def describe(self) -> dict[str, object]:
        """Introspection: the scheme's identity and public parameters.

        Returns name, class, distributed flag, loop size, and every
        public scalar attribute set by the constructor (``alpha``,
        ``stages``, ``k``, ...).  Used by the CLI's ``schemes`` listing
        and handy for experiment logging.
        """
        skip = {"name", "total", "workers", "distributed"}
        params = {}
        for key, value in vars(self).items():
            if key.startswith("_") or key in skip:
                continue
            if isinstance(value, (int, float, str, bool)):
                params[key] = value
        return {
            "name": self.name,
            "class": type(self).__name__,
            "distributed": self.distributed,
            "total": self.total,
            "workers": self.workers,
            "params": params,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name} total={self.total} "
            f"workers={self.workers} remaining={self.remaining}>"
        )


def drain(scheduler: Scheduler, worker_cycle: Optional[list[WorkerView]] = None
          ) -> Iterator[ChunkAssignment]:
    """Exhaust ``scheduler`` by round-robin requests; yield assignments.

    This is the analytical driver used for chunk traces (Table 1): it
    mimics a perfectly synchronous master--slave round in which workers
    request in a fixed cyclic order.  Execution substrates issue requests
    in completion order instead.
    """
    if worker_cycle is None:
        worker_cycle = [WorkerView(i) for i in range(scheduler.workers)]
    if not worker_cycle:
        raise SchemeError("worker_cycle must not be empty")
    i = 0
    while True:
        chunk = scheduler.next_chunk(worker_cycle[i % len(worker_cycle)])
        if chunk is None:
            return
        yield chunk
        i += 1
