"""Pure and fixed-chunk self-scheduling (paper Sec. 2.2, CSS/SS).

**Chunk Self-Scheduling (CSS)** assigns a user-chosen constant ``k``
iterations per request: ``C_i = k``.  For ``k = 1`` this is *pure*
self-scheduling (SS), the finest-grained and therefore
best-load-balanced but highest-overhead policy.

Paper's assessment -- *Weaknesses*: load imbalance risk because the
optimal ``k`` is hard to predict; non-adaptive.  *Strengths*: minimal
scheduling logic and, for large ``k``, few messages.
"""

from __future__ import annotations

from .base import Scheduler, SchemeError, WorkerView

__all__ = ["ChunkScheduler", "PureScheduler"]


class ChunkScheduler(Scheduler):
    """CSS(k): every request receives ``k`` iterations."""

    name = "CSS"

    def __init__(self, total: int, workers: int, k: int = 1) -> None:
        super().__init__(total, workers)
        if k < 1:
            raise SchemeError(f"chunk size k must be >= 1, got {k}")
        self.k = int(k)
        if self.k != 1:
            self.name = f"CSS({self.k})"

    def _chunk_size(self, worker: WorkerView) -> int:
        return self.k


class PureScheduler(ChunkScheduler):
    """SS: pure self-scheduling, one iteration per request (CSS(1))."""

    name = "SS"

    def __init__(self, total: int, workers: int) -> None:
        super().__init__(total, workers, k=1)
        self.name = "SS"
