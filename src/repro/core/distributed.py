"""Distributed self-scheduling schemes -- paper Sec. 3.1 and Sec. 6.

A scheme is *distributed*, in the paper's sense, when it uses **both**
the initial virtual powers of the PEs **and** run-time load information
(the run-queue length each slave piggy-backs onto every request).  The
common pattern, lifted from DTSS (Xu & Chronopoulos 1999):

Master
    1a. Wait for all workers with ``A_i > 0`` to report their ACP;
        compute ``A = sum(A_i)``.
    1b. Derive the base scheme's parameters with ``p := A`` -- i.e. the
        cluster is modelled as ``A`` *virtual unit processors*.
    2a. On each request, record the freshly reported ``A_i``.
    2b. Reply with a chunk scaled by the requester's power share.
    2c. If more than half of the ``A_i`` changed since the parameters
        were derived, re-derive them over the *remaining* iterations.

Schemes implemented on this pattern:

* :class:`DistributedTrapezoidScheduler` (**DTSS**, reviewed; with the
  paper's Sec. 5.2 ACP improvements) -- the trapezoid is laid over the
  ``A`` virtual unit processors and a request from a PE with power
  ``A_i`` receives the next ``A_i`` unit chunks in one message:
  ``C = A_i * (F - D * (S + (A_i - 1)/2))`` with ``S`` the ACP already
  serviced since derivation.
* :class:`DistributedFactoringScheduler` (**DFSS**, new) -- factoring
  stage totals ``SC_k = floor(R / alpha)`` split as ``C_j = SC_k A_j/A``.
* :class:`DistributedFixedIncreaseScheduler` (**DFISS**, new) --
  ``SC_0 = floor(I / X)``, bump ``B = ceil(2I(1-sigma/X)/(sigma(sigma-1)))``,
  final stage takes the exact remainder.
* :class:`DistributedTrapezoidFactoringScheduler` (**DTFSS**, new) --
  stage totals are sums of the next ``A`` nominal unit-trapezoid chunks
  (the DTSS trapezoid grouped stage-wise), split by power share.

Stage accounting under asynchrony: a stage is *consumed* when the ACP
serviced within it reaches ``A`` (the distributed generalization of
"every PE got one chunk").  Fast PEs that re-request early therefore
draw the next stage open exactly as in the simple staged schemes.
"""

from __future__ import annotations

import math
from typing import Optional

from .acp import IMPROVED_ACP, AcpModel
from .base import ChunkAssignment, Scheduler, SchemeError, WorkerView
from .trapezoid import TrapezoidParams

__all__ = [
    "DistributedSchedulerBase",
    "DistributedTrapezoidScheduler",
    "DistributedFactoringScheduler",
    "DistributedFixedIncreaseScheduler",
    "DistributedTrapezoidFactoringScheduler",
]


class DistributedSchedulerBase(Scheduler):
    """Shared ACP bookkeeping + the "half changed -> re-derive" rule."""

    distributed = True

    def __init__(
        self,
        total: int,
        workers: int,
        acp_model: AcpModel = IMPROVED_ACP,
    ) -> None:
        super().__init__(total, workers)
        self.acp_model = acp_model
        self._acps: dict[int, int] = {}
        self._derive_acps: Optional[dict[int, int]] = None
        self.rederivations = 0  # observability: parameter refresh count

    # -- ACP reports -------------------------------------------------------

    def observe_acp(self, worker_id: int, acp: int) -> None:
        """Record a worker's reported ACP (piggy-backed on its request)."""
        if acp < 0:
            raise SchemeError(f"ACP must be >= 0, got {acp}")
        self._acps[int(worker_id)] = int(acp)

    def _effective_acp(self, worker: WorkerView) -> int:
        """The ACP to use for this request, recording it as observed."""
        if worker.acp is not None:
            acp = int(worker.acp)
        elif worker.worker_id in self._acps:
            acp = self._acps[worker.worker_id]
        else:
            acp = self.acp_model.acp(worker.virtual_power, worker.run_queue)
        self._acps[worker.worker_id] = acp
        return max(1, acp)

    @property
    def total_acp(self) -> int:
        """``A``: summed ACP of the registered workers (>= 1)."""
        return max(1, sum(max(0, a) for a in self._acps.values()))

    # -- derivation --------------------------------------------------------

    def _ensure_registered(self) -> None:
        """Fill in defaults for workers that never reported (V=Q=1).

        Execution engines always register real ACPs before scheduling;
        this fallback keeps the schemes usable analytically (e.g. via
        :func:`repro.core.base.drain`) without an engine.
        """
        for wid in range(self.workers):
            self._acps.setdefault(wid, self.acp_model.acp(1.0, 1))

    def _maybe_rederive(self) -> None:
        if self._derive_acps is None:
            self._ensure_registered()
            self._derive_acps = dict(self._acps)
            self._derive(self.remaining)
            return
        baseline = self._derive_acps
        changed = sum(
            1
            for wid, acp in self._acps.items()
            if baseline.get(wid) != acp
        )
        changed += sum(1 for wid in baseline if wid not in self._acps)
        if changed > len(baseline) / 2:
            self.rederivations += 1
            self._derive_acps = dict(self._acps)
            self._derive(self.remaining)

    def _derive(self, iterations: int) -> None:
        """Recompute scheme parameters over ``iterations`` with p := A."""
        raise NotImplementedError

    def next_chunk(
        self, worker: WorkerView
    ) -> Optional[ChunkAssignment]:
        # ACP observation must precede sizing so this request's own
        # report participates in the "half changed" check (paper 2a/2c).
        if worker.acp is not None:
            self.observe_acp(worker.worker_id, worker.acp)
        if not self.finished:
            self._maybe_rederive()
        return super().next_chunk(worker)


class DistributedTrapezoidScheduler(DistributedSchedulerBase):
    """DTSS with the paper's improved ACP model (Sec. 3.1 + 5.2)."""

    name = "DTSS"

    def __init__(
        self,
        total: int,
        workers: int,
        acp_model: AcpModel = IMPROVED_ACP,
        last: int = 1,
    ) -> None:
        super().__init__(total, workers, acp_model)
        self.last = int(last)
        self.params: Optional[TrapezoidParams] = None
        self._served_acp = 0  # S: ACP units serviced since derivation

    def _derive(self, iterations: int) -> None:
        self.params = TrapezoidParams.derive(
            iterations, self.total_acp, last=self.last,
            integer_decrement=False,
        )
        self._served_acp = 0

    def _chunk_size(self, worker: WorkerView) -> int:
        assert self.params is not None
        a = self._effective_acp(worker)
        f, d = self.params.first, self.params.decrement
        chunk = a * (f - d * (self._served_acp + (a - 1) / 2.0))
        self._served_acp += a
        return max(1, math.floor(chunk))


class _StagedDistributed(DistributedSchedulerBase):
    """Stage machinery shared by DFSS / DFISS / DTFSS.

    Subclasses implement :meth:`_plan_stages`, the lockstep sequence of
    stage *totals* ``SC_1, SC_2, ...`` over a given iteration count.
    Each worker walks its own stage ladder: its ``k``-th request (since
    the last parameter derivation) receives ``round(SC_k * A_j / A)``
    (min 1; the base class clips to the loop's remaining iterations).
    Per-worker ladders are the asynchronous reading of "at stage k
    every PE gets its power share of SC_k": global-stage bookkeeping
    either lets fast PEs consume slow PEs' shares (request counting) or
    skips stages wholesale (advance-on-repeat), both of which pile
    compensating work onto stragglers.

    A re-derivation (the "more than half the ACPs changed" rule)
    replans the stages over the remaining iterations and resets every
    ladder -- the distributed schemes' load-adaptation step.
    """

    def __init__(
        self,
        total: int,
        workers: int,
        acp_model: AcpModel = IMPROVED_ACP,
    ) -> None:
        super().__init__(total, workers)
        self.acp_model = acp_model
        self._stage_totals: list[int] = [max(1, total)]
        self._worker_stage: dict[int, int] = {}
        self._last_stage = 0

    def _derive(self, iterations: int) -> None:
        self._worker_stage.clear()
        totals = [int(sc) for sc in self._plan_stages(iterations) if sc > 0]
        self._stage_totals = totals or [max(1, iterations)]

    def _plan_stages(self, iterations: int) -> list[int]:
        """Lockstep stage totals ``SC_k`` covering ``iterations``."""
        raise NotImplementedError

    def _chunk_size(self, worker: WorkerView) -> int:
        a = self._effective_acp(worker)
        total_acp = self.total_acp
        k = self._worker_stage.get(worker.worker_id, 0)
        self._worker_stage[worker.worker_id] = k + 1
        self._last_stage = k + 1
        if k < len(self._stage_totals):
            share = self._stage_totals[k] * a / total_acp
        else:
            # Beyond the plan (rounding/clipping leftovers): shrinking
            # factoring-style tail.  Replaying the final rung would
            # hand out the plan's *largest* chunks late for increasing
            # schemes (DFISS) -- the straggler pattern stages exist to
            # avoid.
            share = self.remaining * a / (2.0 * total_acp)
        return max(1, round(share))

    def _current_stage(self) -> int:
        return self._last_stage


class DistributedFactoringScheduler(_StagedDistributed):
    """DFSS: factoring stage totals split by ACP share (paper Sec. 6).

    ``SC_k = floor(R_k / alpha)`` with ``R_k`` the lockstep remainder.
    """

    name = "DFSS"

    def __init__(
        self,
        total: int,
        workers: int,
        acp_model: AcpModel = IMPROVED_ACP,
        alpha: float = 2.0,
    ) -> None:
        if alpha <= 1.0:
            raise SchemeError(f"alpha must be > 1, got {alpha}")
        self.alpha = float(alpha)
        super().__init__(total, workers, acp_model)

    def _plan_stages(self, iterations: int) -> list[int]:
        totals: list[int] = []
        remaining = iterations
        while remaining > 0:
            sc = max(1, int(remaining / self.alpha))
            sc = min(sc, remaining)
            totals.append(sc)
            remaining -= sc
        return totals


class DistributedFixedIncreaseScheduler(_StagedDistributed):
    """DFISS: fixed-increase stage totals split by ACP share.

    ``SC_0 = floor(I / X)``; bump ``B = ceil(2I(1 - sigma/X) /
    (sigma (sigma - 1)))`` (paper Sec. 6, DFISS 1.(b) -- note the
    per-PE divisor of FISS is gone, replaced by the ACP share); the
    final planned stage takes the exact remainder.
    """

    name = "DFISS"

    def __init__(
        self,
        total: int,
        workers: int,
        acp_model: AcpModel = IMPROVED_ACP,
        stages: int = 3,
        x: float | None = None,
    ) -> None:
        self.stages = int(stages)
        if self.stages < 2:
            raise SchemeError(f"DFISS needs >= 2 stages, got {stages}")
        self.x = float(x) if x is not None else float(self.stages + 2)
        if self.x <= self.stages:
            raise SchemeError(
                f"X must exceed sigma for a positive bump: X={self.x}, "
                f"sigma={self.stages}"
            )
        super().__init__(total, workers, acp_model)

    def _plan_stages(self, iterations: int) -> list[int]:
        sigma, x = self.stages, self.x
        sc0 = max(1, int(iterations / x))
        bump = max(
            0,
            math.ceil(2 * iterations * (1 - sigma / x)
                      / (sigma * (sigma - 1))),
        )
        totals = [sc0 + k * bump for k in range(sigma - 1)]
        leftover = iterations - sum(totals)
        totals.append(max(1, leftover))
        return totals


class DistributedTrapezoidFactoringScheduler(_StagedDistributed):
    """DTFSS: DTSS's unit trapezoid, consumed one stage of ``A`` at a time.

    Stage ``k``'s total is the sum of the next ``A`` nominal chunks of
    the unit trapezoid ``TSS(I, A)`` -- by the arithmetic-series identity
    this equals ``A * (F - D * (kA + (A - 1)/2))``, i.e. exactly what
    DTSS would hand a single PE of power ``A``.  The stage is then split
    among requesters by ACP share, which is the TFSS construction
    transplanted onto the virtual-unit-processor cluster.
    """

    name = "DTFSS"

    def __init__(
        self,
        total: int,
        workers: int,
        acp_model: AcpModel = IMPROVED_ACP,
        last: int = 1,
    ) -> None:
        self.last = int(last)
        self.params: Optional[TrapezoidParams] = None
        super().__init__(total, workers, acp_model)

    def _plan_stages(self, iterations: int) -> list[int]:
        a = self.total_acp
        self.params = TrapezoidParams.derive(
            iterations, a, last=self.last, integer_decrement=False
        )
        f, d = self.params.first, self.params.decrement
        totals: list[int] = []
        assigned = 0
        k = 0
        while assigned < iterations:
            sc = math.floor(a * (f - d * (k * a + (a - 1) / 2.0)))
            if sc < 1:
                break
            sc = min(sc, iterations - assigned)
            totals.append(sc)
            assigned += sc
            k += 1
        if assigned < iterations:
            totals.append(iterations - assigned)
        return totals
