"""Factoring Self-Scheduling (Hummel, Schonberg & Flynn 1992) and
Weighted Factoring (Hummel, Schmidt, Uma & Wein 1996).  Paper Sec. 2.2.

**FSS** schedules in *stages*: at each stage every one of the ``p`` PEs
receives one chunk of the same size

    ``C = R / (alpha * p)``,

after which ``R`` has shrunk by the factor ``1/alpha`` and the next
stage begins.  The analysis in Hummel et al. gives ``alpha`` from a
probabilistic model; the suboptimal-but-robust choice ``alpha = 2``
(each stage hands out half the remaining work) is what the paper uses.

Rounding: the paper writes ``C_i = [R_{i-1}/(alpha p)]``.  Its Table 1
row for ``I = 1000, p = 4``::

    125 62 32 16 8 4 2 1      (per PE, 4 PEs per stage)

is reproduced exactly by *round-half-to-even* (62.5 -> 62, 31.5 -> 32,
15.5 -> 16, 7.5 -> 8, 3.5 -> 4, 1.5 -> 2), i.e. C ``rint`` semantics --
not by ``ceil`` (which gives 63) or ``floor`` (which gives 31).  The
default therefore matches the paper; ``rounding`` selects alternatives.

**Weighted Factoring (WF)** splits each stage's total in proportion to
*static* relative powers ``V_j`` instead of evenly.  Per the paper's
Sec. 6 remark, WF is *not* "distributed" in their sense because it never
consults run-time load -- it is included as the static-weights
comparator and as the base pattern that DFSS makes adaptive.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from .base import Scheduler, SchemeError, WorkerView

__all__ = ["FactoringScheduler", "WeightedFactoringScheduler", "ROUNDINGS"]


def _round_half_even(x: float) -> int:
    """Round to nearest with ties to even (banker's rounding)."""
    f = math.floor(x)
    diff = x - f
    if diff > 0.5:
        return f + 1
    if diff < 0.5:
        return f
    return f if f % 2 == 0 else f + 1


#: Supported rounding modes for the per-stage chunk computation.
ROUNDINGS: dict[str, Callable[[float], int]] = {
    "half-even": _round_half_even,
    "ceil": lambda x: math.ceil(x),
    "floor": lambda x: math.floor(x),
}


class StageLadderScheduler(Scheduler):
    """Base for staged schemes: per-worker stage progression.

    A staged scheme plans a *lockstep* sequence of per-PE stage chunks
    ``c_1, c_2, ...`` ("in each stage all PEs are assigned one task" of
    size ``c_k``).  Under an asynchronous master--slave protocol,
    requests interleave unevenly: a fast PE may be three chunks ahead
    of a slow one.  The faithful semantics -- each PE receives exactly
    one chunk per stage, *its* stages -- is a per-worker ladder: worker
    ``j``'s ``k``-th request receives ``c_k`` regardless of where other
    workers are.  (Global-stage alternatives misbehave under
    heterogeneity: counting requests lets fast PEs consume slow PEs'
    shares of a stage; advancing on repeat requests skips stages whose
    shares then pile into the final one.)

    Subclasses provide :meth:`_plan`, returning the lockstep per-PE
    chunk sequence; requests beyond the plan get the final planned
    chunk (the base class clips to the loop's remaining iterations, so
    over-planning is harmless and under-planning self-heals).
    """

    def __init__(self, total: int, workers: int) -> None:
        super().__init__(total, workers)
        self._ladder: list[int] = [
            max(1, int(c)) for c in self._plan()
        ] or [1]
        self._worker_stage: dict[int, int] = {}

    def _plan(self) -> list[int]:
        """The lockstep per-PE stage chunk sequence (``c_1, c_2, ...``)."""
        raise NotImplementedError

    def _chunk_size(self, worker: WorkerView) -> int:
        k = self._worker_stage.get(worker.worker_id, 0)
        self._worker_stage[worker.worker_id] = k + 1
        if k < len(self._ladder):
            self._last_stage = k + 1
            return self._ladder[k]
        # Beyond the plan (rounding/clipping left iterations over): a
        # shrinking factoring-style tail.  Replaying the final rung
        # would hand out the plan's *largest* chunks late for
        # increasing schemes (FISS) -- the exact straggler pattern
        # stages exist to avoid.
        self._last_stage = k + 1
        return max(1, math.ceil(self.remaining / (2 * self.workers)))

    def _current_stage(self) -> int:
        return getattr(self, "_last_stage", 0)


class FactoringScheduler(StageLadderScheduler):
    """FSS(alpha): equal chunks within a stage of ``p`` assignments."""

    name = "FSS"

    def __init__(
        self,
        total: int,
        workers: int,
        alpha: float = 2.0,
        rounding: str = "half-even",
    ) -> None:
        if alpha <= 1.0:
            raise SchemeError(f"alpha must be > 1, got {alpha}")
        if rounding not in ROUNDINGS:
            raise SchemeError(
                f"unknown rounding {rounding!r}; pick from {sorted(ROUNDINGS)}"
            )
        self.alpha = float(alpha)
        self._round = ROUNDINGS[rounding]
        self.rounding = rounding
        super().__init__(total, workers)

    def _plan(self) -> list[int]:
        # Lockstep drain: each stage hands every PE one chunk of
        # round(R / (alpha p)) and shrinks R accordingly.
        plan: list[int] = []
        remaining = self.total
        while remaining > 0:
            chunk = max(
                1, self._round(remaining / (self.alpha * self.workers))
            )
            plan.append(chunk)
            remaining -= chunk * self.workers
        return plan


class WeightedFactoringScheduler(Scheduler):
    """WF: factoring stages split by static weights ``V_j / V``.

    Stage ``k``'s total is ``R_k / alpha`` with ``R_k`` the lockstep
    remainder (``R_{k+1} = R_k - R_k/alpha``); worker ``j``'s ``k``-th
    chunk is its weight share of that total (at least 1).  Like the
    other staged schemes this uses a per-worker stage ladder (see
    :class:`StageLadderScheduler`), but the ladder rung differs per
    worker, so it keeps its own table.
    """

    name = "WF"
    distributed = False  # static weights only -- paper Sec. 6 remark

    def __init__(
        self,
        total: int,
        workers: int,
        weights: Optional[Sequence[float]] = None,
        alpha: float = 2.0,
    ) -> None:
        super().__init__(total, workers)
        if alpha <= 1.0:
            raise SchemeError(f"alpha must be > 1, got {alpha}")
        if weights is None:
            weights = [1.0] * workers
        if len(weights) != workers:
            raise SchemeError(f"need {workers} weights, got {len(weights)}")
        if any(w <= 0 for w in weights):
            raise SchemeError(f"weights must be positive, got {list(weights)}")
        self.alpha = float(alpha)
        self.weights = [float(w) for w in weights]
        self._wsum = float(sum(self.weights))
        # Lockstep stage totals SC_k.
        self._stage_totals: list[int] = []
        remaining = total
        while remaining > 0:
            sc = max(1, int(remaining / self.alpha))
            if sc >= remaining:
                sc = remaining
            self._stage_totals.append(sc)
            remaining -= sc
        if not self._stage_totals:
            self._stage_totals = [max(total, 1)]
        self._worker_stage: dict[int, int] = {}
        self._last_stage = 0

    def _chunk_size(self, worker: WorkerView) -> int:
        k = self._worker_stage.get(worker.worker_id, 0)
        self._worker_stage[worker.worker_id] = k + 1
        idx = min(k, len(self._stage_totals) - 1)
        self._last_stage = idx + 1
        w = self.weights[worker.worker_id % self.workers]
        share = self._stage_totals[idx] * w / self._wsum
        return max(1, _round_half_even(share))

    def _current_stage(self) -> int:
        return self._last_stage
