"""Fixed Increase Self-Scheduling (Philip & Das 1997; paper Sec. 2.2).

**FISS** runs a *fixed* number of stages ``sigma`` and, unlike every
other scheme here, *increases* the chunk size from stage to stage:

    ``C_0 = floor(I / (X * p))``         (first-stage chunk),
    ``B   = floor(2 I (1 - sigma/X) / (p sigma (sigma - 1)))``  ("bump"),
    ``C_k = C_{k-1} + B``.

``X`` is a compiler/user parameter; Philip & Das suggest
``X = sigma + 2``, which this implementation defaults to.  The rationale
is the mirror image of the decreasing schemes: small chunks early get
every PE started quickly, and the big final chunks cut the message count
at the end where decreasing schemes flood the master with tiny requests.

For ``I = 1000, p = 4, sigma = 3`` (so ``X = 5``): ``C_0 = 50`` and
``B = floor(800/24) = 33``, giving nominal stage chunks ``50, 83, 116``.
The paper's Table 1 row is ``50 83 117``: the last stage must absorb the
integer-division shortfall (``4 * 249 = 996``), so the final stage's
chunk is the exact per-PE share of what remains --
``(1000 - 4*133)/4 = 117``.  That remainder rule is implemented here and
noted in EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from .base import SchemeError
from .factoring import StageLadderScheduler

__all__ = ["FixedIncreaseScheduler", "fiss_parameters"]


def fiss_parameters(
    total: int, workers: int, stages: int, x: float | None = None
) -> tuple[int, int, float]:
    """Return ``(C_0, B, X)`` for FISS over ``total`` iterations.

    Exposed separately because DFISS (paper Sec. 6) re-derives the same
    quantities with the per-PE divisor removed (stage *totals* instead
    of per-PE chunks).
    """
    if stages < 2:
        raise SchemeError(f"FISS needs >= 2 stages, got {stages}")
    if x is None:
        x = stages + 2
    if x <= stages:
        raise SchemeError(
            f"X must exceed sigma for a positive bump: X={x}, sigma={stages}"
        )
    c0 = total // (int(x) * workers) if x == int(x) else int(
        total / (x * workers)
    )
    bump = math.floor(
        2 * total * (1 - stages / x) / (workers * stages * (stages - 1))
    )
    return max(1, c0), max(0, bump), float(x)


class FixedIncreaseScheduler(StageLadderScheduler):
    """FISS(sigma, X): increasing equal-chunk stages, exact final stage.

    Uses the per-worker stage ladder (see
    :class:`~repro.core.factoring.StageLadderScheduler`): each PE's
    ``k``-th chunk is the stage-``k`` size, independent of how far the
    other PEs have progressed.
    """

    name = "FISS"

    def __init__(
        self,
        total: int,
        workers: int,
        stages: int = 3,
        x: float | None = None,
    ) -> None:
        self.stages = int(stages)
        c0, bump, xval = fiss_parameters(total, workers, self.stages, x)
        self.c0 = c0
        self.bump = bump
        self.x = xval
        super().__init__(total, workers)

    def _plan(self) -> list[int]:
        plan = [self.c0 + k * self.bump for k in range(self.stages - 1)]
        assigned = sum(plan) * self.workers
        # Final planned stage: split the remainder exactly so the loop
        # conserves (paper row: 50 83 117, not 50 83 116).
        leftover = max(0, self.total - assigned)
        plan.append(max(1, math.ceil(leftover / self.workers)))
        return plan
