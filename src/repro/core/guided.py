"""Guided Self-Scheduling (Polychronopoulos & Kuck 1987; paper Sec. 2.2).

**GSS** assigns ``C_i = ceil(R_{i-1} / p)``: each request receives a
``1/p`` share of whatever remains, so chunks decay geometrically from
``~I/p`` down to 1.  For ``I = 1000, p = 4`` this yields the paper's
Table 1 row::

    250 188 141 106 79 59 45 33 25 19 14 11 8 6 4 3 3 2 1 1 1 1

Paper's assessment -- *Weaknesses*: a long tail of size-1 chunks causes
many synchronizations near the end.  *Strengths*: adaptive; big early
chunks keep initial overhead low.  **GSS(k)** bounds the minimum chunk
at a user-chosen ``k`` to blunt the tail.

The paper's own experiments drop GSS in favour of TSS ("its linearized
approximation ... reported to have better performance"), but GSS is part
of the reviewed class and is needed for Table 1, so it is implemented in
full here.
"""

from __future__ import annotations

import math

from .base import Scheduler, SchemeError, WorkerView

__all__ = ["GuidedScheduler"]


class GuidedScheduler(Scheduler):
    """GSS / GSS(k): ``C_i = max(k, ceil(R/p))``."""

    name = "GSS"

    def __init__(self, total: int, workers: int, min_chunk: int = 1) -> None:
        super().__init__(total, workers)
        if min_chunk < 1:
            raise SchemeError(f"min_chunk must be >= 1, got {min_chunk}")
        self.min_chunk = int(min_chunk)
        if self.min_chunk != 1:
            self.name = f"GSS({self.min_chunk})"

    def _chunk_size(self, worker: WorkerView) -> int:
        return max(self.min_chunk, math.ceil(self.remaining / self.workers))
