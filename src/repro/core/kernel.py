"""Pure chunk kernel: calculators and vectorized ladder evaluation.

This module is the single source of truth for the *pure form* of the
self-scheduling schemes: ``chunk(scheduled) -> size`` as a function of
the scheduled-iteration count alone, with no master and no per-request
state.  Eleliemy & Ciorba's *Distributed Chunk Calculation Approach*
(arXiv:2101.07050) observes that every quantity in the chunk formulas
of SS/CSS/GSS/TSS (and, through the stage-span argument, FSS/FISS/TFSS)
is derivable from that one number -- so a worker that atomically
fetches-and-increments a shared counter can compute its own interval
locally.

Historically these calculators lived in :mod:`repro.decentral.calc`
(which now re-exports them unchanged); they were promoted here because
every substrate consumes them:

* the **decentral simulator and runtime** map fetched ordinals to
  intervals (``calc.interval(i)`` after ``i = counter.fetch_add(1)``);
* the **master-engine analytic fast path**
  (:mod:`repro.simulation.fastpath`) serves the order-invariant schemes
  straight from a precomputed ladder;
* :mod:`repro.verify` uses kernel boundaries as the policy-conformance
  reference for order-invariant schemes;
* analysis and experiments materialize whole chunk ladders as arrays.

Two layers live here:

1. **Calculators** -- :class:`ChunkCalculator` and its per-scheme
   subclasses.  ``calc.chunk(scheduled)`` applies the scheduler base
   class's clipping rules (minimum 1, never beyond ``total``);
   ``calc.interval(i)`` maps a chunk ordinal to its half-open interval.
2. **Vectorized evaluation** -- each calculator knows how to produce
   its *entire* clipped size sequence as a NumPy array in one shot
   (:meth:`ChunkCalculator._vector_sizes`); :func:`evaluate_ladder`
   packages sizes, cut points, and stages into a :class:`ChunkLadder`,
   and :func:`assign_ladder` adds a per-worker assignment under an
   analytic cost model.  The vectorized forms are closed-form where the
   math allows (CSS, TSS, the stage ladders) and tight local
   recurrences otherwise (GSS); the hypothesis suite in
   ``tests/core/test_kernel.py`` pins every one of them to the
   step-by-step walk and to :func:`repro.verify.replay_cut_points`.

Which schemes decentralize
--------------------------

A scheme qualifies when its chunk sizes are independent of request
*order* and of worker identity: SS, CSS, GSS, TSS directly (size is a
function of the remaining count), and the staged schemes FSS, FISS,
TFSS through the stage-span argument: under the per-worker stage
ladder, chunk ordinal ``m`` is worker ``m % p``'s ``(m // p)``-th
request, so its size is ``ladder[m // p]`` -- a pure function of the
ordinal, hence of the boundary.  WF needs the requester's static
weight, S/BC need the requester's identity, and the distributed D*
family consults runtime ACP reports; none has a substrate-independent
pure form, and :func:`make_calculator` refuses them with an
explanation.
"""

from __future__ import annotations

import dataclasses
import math
from bisect import bisect_right
from typing import Optional

import numpy as np

from . import registry
from .base import SchemeError
from .factoring import FactoringScheduler
from .fixed_increase import FixedIncreaseScheduler
from .tfss import TrapezoidFactoringScheduler
from .trapezoid import TrapezoidParams

__all__ = [
    "ChunkCalculator",
    "SerialCalculator",
    "FixedChunkCalculator",
    "GuidedCalculator",
    "TrapezoidCalculator",
    "FactoringCalculator",
    "FixedIncreaseCalculator",
    "TrapezoidFactoringCalculator",
    "CALCULATORS",
    "DECENTRAL_SCHEMES",
    "NON_PURE_SCHEMES",
    "make_calculator",
    "chunk_size",
    "ChunkLadder",
    "evaluate_ladder",
    "ladder_costs",
    "assign_ladder",
]


class ChunkCalculator(object):
    """Pure, picklable chunk policy over ``total`` iterations.

    Subclasses implement :meth:`_nominal`, the unclipped size at a
    given boundary; everything else (clipping, ordinal/interval maps,
    boundary sets) is derived here.  Instances carry only plain data,
    so they pickle cheaply into decentral worker processes, and every
    method is side-effect free -- two workers evaluating the same
    ordinal always agree, which is what makes the shared counter the
    *only* coordination point.
    """

    #: canonical scheme name (e.g. ``"TSS"``); set by subclasses.
    scheme: str = "?"

    def __init__(self, total: int, workers: int) -> None:
        if total < 0:
            raise SchemeError(f"total iterations must be >= 0, got {total}")
        if workers < 1:
            raise SchemeError(f"workers must be >= 1, got {workers}")
        self.total = int(total)
        self.workers = int(workers)
        self._starts: Optional[tuple[int, ...]] = None

    # -- the pure function -------------------------------------------------

    def chunk(self, scheduled: int) -> int:
        """Chunk size at boundary ``scheduled``; 0 once the loop is done.

        Mirrors ``Scheduler.next_chunk``'s clipping exactly: the
        nominal size is floored at 1 and capped at the remaining count,
        so only the final chunk of a run is ever clipped.
        """
        if scheduled < 0:
            raise SchemeError(f"scheduled must be >= 0, got {scheduled}")
        if scheduled >= self.total:
            return 0
        size = int(self._nominal(scheduled))
        if size < 1:
            size = 1
        return min(size, self.total - scheduled)

    def _nominal(self, scheduled: int) -> int:
        """Unclipped size at boundary ``scheduled`` (subclass hook)."""
        raise NotImplementedError

    # -- vectorized evaluation ---------------------------------------------

    def _vector_sizes(self) -> Optional[np.ndarray]:
        """The full clipped size sequence as an int64 array, or None.

        Subclasses with a closed form (or a tight local recurrence)
        override this; ``None`` falls back to the generic step walk in
        :meth:`_table`.  The returned sizes must match the step-by-step
        ``chunk()`` walk element for element -- the kernel property
        suite enforces this against every calculator.
        """
        return None

    @staticmethod
    def _clip_nominal(nominal: np.ndarray, total: int) -> np.ndarray:
        """Cut a nominal (>=1 everywhere) sequence at ``total``.

        Truncates after the first chunk whose cumulative sum reaches
        ``total`` and clips that final chunk -- exactly the base
        class's ``min(size, remaining)`` rule, which can only bite on
        the last chunk of a run.
        """
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        cum = np.cumsum(nominal)
        cut = int(np.searchsorted(cum, total, side="left"))
        sizes = np.array(nominal[: cut + 1], dtype=np.int64)
        before = int(cum[cut - 1]) if cut > 0 else 0
        sizes[cut] = total - before
        return sizes

    # -- ordinal geometry (what a fetched counter value buys) --------------

    def _table(self) -> tuple[int, ...]:
        if self._starts is None:
            vec = self._vector_sizes()
            if vec is not None:
                stops = np.cumsum(vec)
                self._starts = tuple(
                    int(x) for x in (stops - vec)
                )
            else:
                starts: list[int] = []
                cursor = 0
                while cursor < self.total:
                    starts.append(cursor)
                    cursor += self.chunk(cursor)  # chunk() >= 1 here
                self._starts = tuple(starts)
        return self._starts

    @property
    def n_chunks(self) -> int:
        """Number of chunks a full run produces."""
        return len(self._table())

    def prefix(self, index: int) -> int:
        """Iterations assigned before chunk ordinal ``index``."""
        starts = self._table()
        if not 0 <= index <= len(starts):
            raise SchemeError(
                f"chunk index {index} out of range [0, {len(starts)}]"
            )
        return self.total if index == len(starts) else starts[index]

    def interval(self, index: int) -> tuple[int, int]:
        """Half-open iteration interval of chunk ordinal ``index``."""
        start = self.prefix(index)
        if start >= self.total:
            raise SchemeError(
                f"chunk index {index} beyond the loop (n_chunks="
                f"{self.n_chunks})"
            )
        return start, start + self.chunk(start)

    def sizes(self) -> list[int]:
        """Every chunk size in ordinal order (sums to ``total``)."""
        starts = self._table()
        return [self.chunk(s) for s in starts]

    def stage_of(self, index: int) -> int:
        """Stage recorded on chunk ``index`` (staged schemes override)."""
        return 0

    def boundaries(self) -> frozenset[int]:
        """All cut points, :func:`repro.verify.replay_cut_points` style."""
        starts = self._table()
        if not starts:
            return frozenset()
        return frozenset(starts) | {self.total}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.scheme} total={self.total} "
            f"workers={self.workers}>"
        )


class SerialCalculator(ChunkCalculator):
    """SS: one iteration per fetch (pure self-scheduling)."""

    scheme = "SS"

    def _nominal(self, scheduled: int) -> int:
        return 1

    def _vector_sizes(self) -> np.ndarray:
        return np.ones(self.total, dtype=np.int64)


class FixedChunkCalculator(ChunkCalculator):
    """CSS(k): constant chunks of ``k`` iterations."""

    scheme = "CSS"

    def __init__(self, total: int, workers: int, k: int = 1) -> None:
        super().__init__(total, workers)
        if k < 1:
            raise SchemeError(f"chunk size k must be >= 1, got {k}")
        self.k = int(k)

    def _nominal(self, scheduled: int) -> int:
        return self.k

    def _vector_sizes(self) -> np.ndarray:
        if self.total == 0:
            return np.zeros(0, dtype=np.int64)
        n = -(-self.total // self.k)
        sizes = np.full(n, self.k, dtype=np.int64)
        sizes[-1] = self.total - (n - 1) * self.k
        return sizes


class GuidedCalculator(ChunkCalculator):
    """GSS: ``max(min_chunk, ceil(R / p))`` -- pure in the remaining count."""

    scheme = "GSS"

    def __init__(
        self, total: int, workers: int, min_chunk: int = 1
    ) -> None:
        super().__init__(total, workers)
        if min_chunk < 1:
            raise SchemeError(f"min_chunk must be >= 1, got {min_chunk}")
        self.min_chunk = int(min_chunk)

    def _nominal(self, scheduled: int) -> int:
        remaining = self.total - scheduled
        return max(self.min_chunk, math.ceil(remaining / self.workers))

    def _vector_sizes(self) -> np.ndarray:
        # No closed form (geometric decay with ceil at every step), but
        # the recurrence touches O(p log total) terms -- a tight local
        # loop with the exact per-step expression, no method dispatch.
        sizes: list[int] = []
        total, workers, floor = self.total, self.workers, self.min_chunk
        scheduled = 0
        while scheduled < total:
            size = max(floor, math.ceil((total - scheduled) / workers))
            if size > total - scheduled:
                size = total - scheduled
            sizes.append(size)
            scheduled += size
        return np.asarray(sizes, dtype=np.int64)


class TrapezoidCalculator(ChunkCalculator):
    """TSS in closed form: invert the arithmetic-series prefix.

    The master's size sequence is ``s_j = max(L, F - jD)`` (0-based
    ``j``), so the iterations before ordinal ``j`` are

        ``P(j) = jF - D j(j-1)/2``          for ``j <= m``,
        ``P(m) + (j - m) L``                 beyond,

    with ``m = (F-L)//D + 1`` the number of above-floor steps.  A
    worker holding boundary ``s`` recovers its ordinal by inverting the
    strictly increasing ``P`` (binary search over at most ``m`` steps)
    -- no shared state beyond the counter.
    """

    scheme = "TSS"

    def __init__(
        self,
        total: int,
        workers: int,
        first: Optional[int] = None,
        last: int = 1,
    ) -> None:
        super().__init__(total, workers)
        self.params = TrapezoidParams.derive(
            total, workers, first=first, last=last
        )
        self._first = int(self.params.first)
        self._last = int(self.params.last)
        # Integral by construction for TSS (integer_decrement=True).
        self._dec = int(self.params.decrement)

    def _nominal(self, scheduled: int) -> int:
        first, last, dec = self._first, self._last, self._dec
        if dec == 0:
            return first
        above = (first - last) // dec + 1  # steps before the L floor
        def prefix(j: int) -> int:
            return j * first - dec * j * (j - 1) // 2
        if scheduled >= prefix(above):
            return last
        lo, hi = 0, above - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if prefix(mid) <= scheduled:
                lo = mid
            else:
                hi = mid - 1
        return first - lo * dec

    def _vector_sizes(self) -> np.ndarray:
        if self.total == 0:
            return np.zeros(0, dtype=np.int64)
        first, last, dec = self._first, self._last, self._dec
        if dec == 0:
            # Constant chunks of F: CSS(F) geometry.
            n = -(-self.total // first)
            sizes = np.full(n, first, dtype=np.int64)
            sizes[-1] = self.total - (n - 1) * first
            return sizes
        above = (first - last) // dec + 1
        head = first - dec * np.arange(above, dtype=np.int64)
        head_sum = int(head.sum())
        if head_sum < self.total:
            n_tail = -(-(self.total - head_sum) // last)
            nominal = np.concatenate(
                [head, np.full(n_tail, last, dtype=np.int64)]
            )
        else:
            nominal = head
        return self._clip_nominal(nominal, self.total)


class _LadderCalculator(ChunkCalculator):
    """Base for staged schemes: stage spans over the boundary axis.

    A per-worker stage ladder serves chunk ordinal ``m`` (= worker
    ``m % p``'s request number ``m // p``) with size ``ladder[m // p]``,
    so stage ``k`` occupies the boundary span
    ``[p * sum(ladder[:k]), p * sum(ladder[:k+1]))`` and the size at a
    boundary is a span lookup.  Past the plan the master's shrinking
    tail rule applies: ``max(1, ceil(R / 2p))`` (rounding or clipping
    can leave iterations over; see ``StageLadderScheduler``).
    """

    def __init__(self, total: int, workers: int, ladder: list[int]) -> None:
        super().__init__(total, workers)
        self._ladder = tuple(max(1, int(c)) for c in ladder) or (1,)
        spans: list[int] = []
        acc = 0
        for c in self._ladder:
            acc += c * self.workers
            spans.append(acc)
        self._spans = tuple(spans)

    @property
    def ladder(self) -> tuple[int, ...]:
        """The lockstep per-PE stage sizes (one entry per stage)."""
        return self._ladder

    def _nominal(self, scheduled: int) -> int:
        if scheduled < self._spans[-1]:
            return self._ladder[bisect_right(self._spans, scheduled)]
        remaining = self.total - scheduled
        return max(1, math.ceil(remaining / (2 * self.workers)))

    def _vector_sizes(self) -> np.ndarray:
        if self.total == 0:
            return np.zeros(0, dtype=np.int64)
        head = np.repeat(
            np.asarray(self._ladder, dtype=np.int64), self.workers
        )
        head_sum = int(head.sum())
        if head_sum < self.total:
            # Beyond the plan: the shrinking factoring-style tail --
            # geometric decay, O(p log total) extra terms.
            tail: list[int] = []
            scheduled = head_sum
            while scheduled < self.total:
                size = max(
                    1,
                    math.ceil(
                        (self.total - scheduled) / (2 * self.workers)
                    ),
                )
                if size > self.total - scheduled:
                    size = self.total - scheduled
                tail.append(size)
                scheduled += size
            return np.concatenate(
                [head, np.asarray(tail, dtype=np.int64)]
            )
        return self._clip_nominal(head, self.total)

    def stage_of(self, index: int) -> int:
        if not 0 <= index < self.n_chunks:
            raise SchemeError(f"chunk index {index} out of range")
        return index // self.workers + 1


class FactoringCalculator(_LadderCalculator):
    """FSS(alpha): stage plan taken verbatim from the FSS scheduler."""

    scheme = "FSS"

    def __init__(
        self,
        total: int,
        workers: int,
        alpha: float = 2.0,
        rounding: str = "half-even",
    ) -> None:
        ref = FactoringScheduler(
            total, workers, alpha=alpha, rounding=rounding
        )
        self.alpha = ref.alpha
        self.rounding = ref.rounding
        super().__init__(total, workers, ref._ladder)


class FixedIncreaseCalculator(_LadderCalculator):
    """FISS(sigma, X): increasing stage plan from the FISS scheduler."""

    scheme = "FISS"

    def __init__(
        self,
        total: int,
        workers: int,
        stages: int = 3,
        x: Optional[float] = None,
    ) -> None:
        ref = FixedIncreaseScheduler(total, workers, stages=stages, x=x)
        self.stages = ref.stages
        self.x = ref.x
        super().__init__(total, workers, ref._ladder)


class TrapezoidFactoringCalculator(_LadderCalculator):
    """TFSS: TSS-derived stage plan from the TFSS scheduler."""

    scheme = "TFSS"

    def __init__(
        self,
        total: int,
        workers: int,
        first: Optional[int] = None,
        last: int = 1,
    ) -> None:
        ref = TrapezoidFactoringScheduler(
            total, workers, first=first, last=last
        )
        super().__init__(total, workers, ref._ladder)


#: scheme name -> calculator class: the decentralizable subset.
CALCULATORS: dict[str, type[ChunkCalculator]] = {
    "SS": SerialCalculator,
    "CSS": FixedChunkCalculator,
    "GSS": GuidedCalculator,
    "TSS": TrapezoidCalculator,
    "FSS": FactoringCalculator,
    "FISS": FixedIncreaseCalculator,
    "TFSS": TrapezoidFactoringCalculator,
}

#: Schemes with a pure decentral form (see the module docstring for
#: why the others are excluded).
DECENTRAL_SCHEMES: tuple[str, ...] = tuple(CALCULATORS)

#: Registry schemes *without* a pure form, and why: chunk sizes that
#: depend on worker identity (S, BC, WF) or on runtime ACP reports
#: (the distributed family).  Every ``registry.SCHEMES`` key must
#: appear either in :data:`CALCULATORS` or here -- ``repro-lint``
#: rule REP302 enforces the partition, so a newly registered scheme
#: cannot silently fall through both the decentral substrate and the
#: analytic fast path.
NON_PURE_SCHEMES: frozenset = frozenset({
    "S", "BC", "WF", "DTSS", "DFSS", "DFISS", "DTFSS",
})


def make_calculator(
    name: str, total: int, workers: int, **kwargs
) -> ChunkCalculator:
    """Build the pure calculator for scheme ``name``.

    Accepts the same spellings as :func:`repro.core.make` (case
    folding, ``"CSS(32)"`` inline parameters).  Schemes without a pure
    form -- worker-identity-dependent (S, BC, WF) or ACP-driven (DTSS,
    DFSS, DFISS, DTFSS) -- raise :class:`SchemeError`.
    """
    key, inline = registry.parse(name)
    for kw, value in inline.items():
        kwargs.setdefault(kw, value)
    if key not in CALCULATORS:
        why = (
            "chunk sizes depend on worker identity or runtime ACP, so "
            "they cannot be a pure function of the scheduled count"
            if key in NON_PURE_SCHEMES
            else "it has no registered calculator"
        )
        raise SchemeError(
            f"scheme {key!r} has no decentral form ({why}); "
            f"decentralizable: {', '.join(DECENTRAL_SCHEMES)}"
        )
    return CALCULATORS[key](total, workers, **kwargs)


def chunk_size(
    scheme: str, scheduled: int, total: int, workers: int, **kwargs
) -> int:
    """One-shot pure form: ``chunk(scheduled, total, p)`` for ``scheme``."""
    return make_calculator(scheme, total, workers, **kwargs).chunk(scheduled)


# -- array-level ladder evaluation -----------------------------------------


@dataclasses.dataclass(frozen=True)
class ChunkLadder(object):
    """A scheme's entire chunk ladder, materialized as arrays.

    ``sizes[i]``, ``starts[i]``, ``stops[i]`` describe chunk ordinal
    ``i``; ``stages[i]`` is the stage the staged schemes would record
    (0 for unstaged).  All arrays are int64 and read-only; ``sizes``
    sums to ``total`` and the intervals tile ``[0, total)`` exactly.
    """

    scheme: str
    total: int
    workers: int
    sizes: np.ndarray
    starts: np.ndarray
    stops: np.ndarray
    stages: np.ndarray

    @property
    def n_chunks(self) -> int:
        return int(self.sizes.shape[0])

    def cut_points(self) -> frozenset[int]:
        """The ladder's boundary set, ``replay_cut_points`` style."""
        if self.n_chunks == 0:
            return frozenset()
        return frozenset(int(s) for s in self.starts) | {self.total}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ChunkLadder {self.scheme} total={self.total} "
            f"workers={self.workers} n_chunks={self.n_chunks}>"
        )


def evaluate_ladder(
    calc: ChunkCalculator | str,
    total: Optional[int] = None,
    workers: Optional[int] = None,
    **kwargs,
) -> ChunkLadder:
    """Materialize the full chunk ladder of ``calc`` in one shot.

    ``calc`` is a ready :class:`ChunkCalculator` or a scheme name (then
    ``total`` and ``workers`` are required and forwarded to
    :func:`make_calculator`).  Uses the calculator's vectorized form
    when it has one and the generic step walk otherwise, so the result
    is always exactly the step-by-step ladder.
    """
    if isinstance(calc, str):
        if total is None or workers is None:
            raise SchemeError(
                "evaluate_ladder(name, ...) needs total and workers"
            )
        calc = make_calculator(calc, total, workers, **kwargs)
    vec = calc._vector_sizes()
    if vec is None:
        vec = np.asarray(calc.sizes(), dtype=np.int64)
    sizes = np.ascontiguousarray(vec, dtype=np.int64)
    stops = np.cumsum(sizes)
    starts = stops - sizes
    if isinstance(calc, _LadderCalculator):
        stages = np.arange(sizes.shape[0], dtype=np.int64) \
            // calc.workers + 1
    else:
        stages = np.zeros(sizes.shape[0], dtype=np.int64)
    for arr in (sizes, starts, stops, stages):
        arr.setflags(write=False)
    return ChunkLadder(
        scheme=calc.scheme,
        total=calc.total,
        workers=calc.workers,
        sizes=sizes,
        starts=starts,
        stops=stops,
        stages=stages,
    )


def ladder_costs(ladder: ChunkLadder, workload) -> np.ndarray:
    """Per-chunk costs of ``ladder`` under ``workload``, vectorized.

    One prefix-sum gather instead of ``n_chunks`` calls to
    ``workload.chunk_cost`` -- the cost model input for
    :func:`assign_ladder` and for analytic makespan estimates.
    """
    workload.costs()
    prefix = workload._prefix
    return prefix[ladder.stops] - prefix[ladder.starts]


def assign_ladder(
    ladder: ChunkLadder,
    costs: np.ndarray,
    speeds: np.ndarray,
    overhead: float = 0.0,
) -> dict[str, np.ndarray]:
    """Greedy earliest-available assignment of a ladder to workers.

    The analytic cost model behind the fast-path documentation: chunk
    ordinals are handed out in ladder order, each to the worker that
    frees up first (exactly the self-scheduling discipline with a
    zero-latency master), charging ``costs[i] / speeds[w]`` per chunk
    plus a fixed ``overhead`` per assignment.  Returns per-chunk
    ``worker``/``start_time``/``finish_time`` arrays plus the makespan
    -- a lower bound on any protocol's ``T_p`` under the same costs,
    useful for sizing sweeps without running any engine.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    if speeds.ndim != 1 or speeds.shape[0] < 1:
        raise SchemeError("speeds must be a non-empty 1-D array")
    if np.any(speeds <= 0):
        raise SchemeError("speeds must be positive")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (ladder.n_chunks,):
        raise SchemeError(
            f"costs shape {costs.shape} != ({ladder.n_chunks},)"
        )
    import heapq

    free: list[tuple[float, int]] = [
        (0.0, w) for w in range(speeds.shape[0])
    ]
    worker = np.zeros(ladder.n_chunks, dtype=np.int64)
    start_t = np.zeros(ladder.n_chunks, dtype=np.float64)
    finish_t = np.zeros(ladder.n_chunks, dtype=np.float64)
    for i in range(ladder.n_chunks):
        at, w = heapq.heappop(free)
        begin = at + overhead
        end = begin + costs[i] / speeds[w]
        worker[i] = w
        start_t[i] = begin
        finish_t[i] = end
        heapq.heappush(free, (end, w))
    makespan = float(finish_t.max()) if ladder.n_chunks else 0.0
    return {
        "worker": worker,
        "start_time": start_t,
        "finish_time": finish_t,
        "makespan": np.float64(makespan),
    }
