"""Scheme registry: build any scheduler from its paper name.

Central factory used by the experiment runner, benchmarks, and examples
so that scheme selection is a string (``"TSS"``, ``"DFISS"``, ...) plus
keyword overrides.  Names match the paper's; lookups are
case-insensitive and ``CSS(k)`` / ``GSS(k)`` accept their parameter
inline (e.g. ``"CSS(32)"``).
"""

from __future__ import annotations

import re
from typing import Iterable

from .base import Scheduler, SchemeError
from .chunk import ChunkScheduler, PureScheduler
from .distributed import (
    DistributedFactoringScheduler,
    DistributedFixedIncreaseScheduler,
    DistributedTrapezoidFactoringScheduler,
    DistributedTrapezoidScheduler,
)
from .factoring import FactoringScheduler, WeightedFactoringScheduler
from .fixed_increase import FixedIncreaseScheduler
from .guided import GuidedScheduler
from .static_ import BlockCyclicScheduler, StaticScheduler
from .tfss import TrapezoidFactoringScheduler
from .trapezoid import TrapezoidScheduler

__all__ = [
    "SCHEMES",
    "SIMPLE_SCHEMES",
    "DISTRIBUTED_SCHEMES",
    "make",
    "names",
    "parse",
]

#: scheme name -> scheduler class.  TreeS is intentionally absent: it is
#: decentralized and driven by :mod:`repro.simulation.tree_engine`, not
#: the master-request protocol.
SCHEMES: dict[str, type[Scheduler]] = {
    "S": StaticScheduler,
    "BC": BlockCyclicScheduler,
    "SS": PureScheduler,
    "CSS": ChunkScheduler,
    "GSS": GuidedScheduler,
    "TSS": TrapezoidScheduler,
    "FSS": FactoringScheduler,
    "FISS": FixedIncreaseScheduler,
    "TFSS": TrapezoidFactoringScheduler,
    "WF": WeightedFactoringScheduler,
    "DTSS": DistributedTrapezoidScheduler,
    "DFSS": DistributedFactoringScheduler,
    "DFISS": DistributedFixedIncreaseScheduler,
    "DTFSS": DistributedTrapezoidFactoringScheduler,
}

#: The paper's *simple* adaptive schemes (Table 2 columns, minus TreeS).
SIMPLE_SCHEMES: tuple[str, ...] = ("TSS", "FSS", "FISS", "TFSS")

#: The paper's *distributed* schemes (Table 3 columns, minus TreeS).
DISTRIBUTED_SCHEMES: tuple[str, ...] = ("DTSS", "DFSS", "DFISS", "DTFSS")

_PARAM_RE = re.compile(r"^([A-Za-z]+)\((\d+)\)$")

#: inline-parameter keyword per scheme family, e.g. CSS(32) -> k=32.
_INLINE_KEYWORD: dict[str, str] = {
    "CSS": "k",
    "GSS": "min_chunk",
    "BC": "block",
    "FISS": "stages",
    "DFISS": "stages",
}

#: The meta-scheduler's registry key.  It lives outside ``SCHEMES``
#: because :class:`repro.adaptive.AdaptiveScheduler` builds *on* this
#: registry (importing it here would be circular); :func:`parse` and
#: :func:`make` special-case the key instead.
ADAPTIVE_KEY = "ADAPTIVE"

#: Spec grammar for the adaptive meta-scheduler (case-insensitive):
#: ``adaptive``, ``adaptive:TSS+CSS(64)+GSS``, ``adaptive:TSS+FSS@8``.
_ADAPTIVE_HINT = "adaptive[:SCHEME[+SCHEME...]][@STAGES]"


def names() -> list[str]:
    """All registered scheme names, registry order."""
    return list(SCHEMES) + [ADAPTIVE_KEY]


def _parse_adaptive(spec: str) -> tuple[str, dict]:
    """Parse an ``adaptive[:CAND[+CAND...]][@STAGES]`` spec string.

    Candidates are validated eagerly (each must itself :func:`parse`,
    must not be 'adaptive' again, and must not be ACP-driven) so every
    string entry point -- ``simulate``, ``run_parallel``, ``SimJob``,
    the CLIs -- rejects a bad spec with one shared message.
    """
    body = spec.strip()[len(ADAPTIVE_KEY):]
    kwargs: dict = {}
    if "@" in body:
        body, _, stages_s = body.rpartition("@")
        try:
            stages = int(stages_s)
        except ValueError:
            stages = 0
        if stages < 1:
            raise SchemeError(
                f"bad stage count {stages_s!r} in adaptive spec "
                f"{spec!r}: must be a positive integer "
                f"({_ADAPTIVE_HINT})"
            )
        kwargs["stages"] = stages
    if body:
        if not body.startswith(":"):
            raise SchemeError(
                f"malformed adaptive spec {spec!r}; expected "
                f"{_ADAPTIVE_HINT}"
            )
        raw = [c.strip() for c in body[1:].split("+")]
        if not any(raw) or any(not c for c in raw):
            raise SchemeError(
                f"adaptive spec {spec!r} has an empty candidate "
                f"(set); give at least one scheme, e.g. "
                f"'adaptive:TSS+FSS+GSS'"
            )
        for cand in raw:
            ckey, _ = parse(cand)  # raises for unknown candidates
            if ckey == ADAPTIVE_KEY:
                raise SchemeError(
                    f"adaptive spec {spec!r} nests 'adaptive' inside "
                    f"itself; candidates must be fixed schemes"
                )
            if SCHEMES[ckey].distributed:
                fixed = [
                    n for n, cls in SCHEMES.items() if not cls.distributed
                ]
                raise SchemeError(
                    f"candidate {cand!r} in adaptive spec {spec!r} is "
                    f"ACP-driven (distributed); pick from: "
                    f"{', '.join(fixed)}"
                )
        kwargs["candidates"] = tuple(c.upper() for c in raw)
    return ADAPTIVE_KEY, kwargs


def parse(name: str) -> tuple[str, dict]:
    """Resolve a scheme string to ``(key, inline_kwargs)``.

    Accepts everything :func:`make` accepts -- case-insensitive names,
    the inline-parameter form ``"CSS(32)"``, and adaptive meta-scheduler
    specs (``"adaptive:TSS+FSS@6"``) -- but performs no instantiation,
    so other factories (the decentral calculators, CLI validation)
    share one parser and one error message.
    """
    key = name.strip()
    if key.upper().startswith(ADAPTIVE_KEY):
        return _parse_adaptive(key.upper())
    match = _PARAM_RE.match(key)
    inline: dict = {}
    if match:
        base, arg = match.group(1).upper(), int(match.group(2))
        if base not in _INLINE_KEYWORD:
            raise SchemeError(
                f"scheme {base!r} takes no inline parameter; "
                f"parameterizable schemes: "
                f"{', '.join(sorted(_INLINE_KEYWORD))}"
            )
        inline[_INLINE_KEYWORD[base]] = arg
        key = base
    else:
        key = key.upper()
    if key not in SCHEMES:
        raise SchemeError(
            f"unknown scheme {name!r}; known: {', '.join(names())}"
        )
    return key, inline


def make(name: str, total: int, workers: int, **kwargs) -> Scheduler:
    """Instantiate scheme ``name`` over ``total`` iterations.

    ``kwargs`` are forwarded to the scheme constructor (e.g.
    ``alpha=2.0`` for FSS, ``acp_model=...`` for distributed schemes,
    ``seed=...`` for the adaptive meta-scheduler).
    """
    key, inline = parse(name)
    for kw, value in inline.items():
        kwargs.setdefault(kw, value)
    if key == ADAPTIVE_KEY:
        # Deferred import: repro.adaptive builds on this registry.
        from ..adaptive import AdaptiveScheduler

        return AdaptiveScheduler(total, workers, **kwargs)
    return SCHEMES[key](total, workers, **kwargs)


def register(name: str, factory: type[Scheduler]) -> None:
    """Register a user scheme class under ``name`` (upper-cased)."""
    key = name.strip().upper()
    if not key:
        raise SchemeError("scheme name must be non-empty")
    SCHEMES[key] = factory


def make_many(
    names_: Iterable[str], total: int, workers: int, **kwargs
) -> dict[str, Scheduler]:
    """Build several fresh schedulers keyed by their given names."""
    return {n: make(n, total, workers, **kwargs) for n in names_}
