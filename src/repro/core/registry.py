"""Scheme registry: build any scheduler from its paper name.

Central factory used by the experiment runner, benchmarks, and examples
so that scheme selection is a string (``"TSS"``, ``"DFISS"``, ...) plus
keyword overrides.  Names match the paper's; lookups are
case-insensitive and ``CSS(k)`` / ``GSS(k)`` accept their parameter
inline (e.g. ``"CSS(32)"``).
"""

from __future__ import annotations

import re
from typing import Iterable

from .base import Scheduler, SchemeError
from .chunk import ChunkScheduler, PureScheduler
from .distributed import (
    DistributedFactoringScheduler,
    DistributedFixedIncreaseScheduler,
    DistributedTrapezoidFactoringScheduler,
    DistributedTrapezoidScheduler,
)
from .factoring import FactoringScheduler, WeightedFactoringScheduler
from .fixed_increase import FixedIncreaseScheduler
from .guided import GuidedScheduler
from .static_ import BlockCyclicScheduler, StaticScheduler
from .tfss import TrapezoidFactoringScheduler
from .trapezoid import TrapezoidScheduler

__all__ = [
    "SCHEMES",
    "SIMPLE_SCHEMES",
    "DISTRIBUTED_SCHEMES",
    "make",
    "names",
    "parse",
]

#: scheme name -> scheduler class.  TreeS is intentionally absent: it is
#: decentralized and driven by :mod:`repro.simulation.tree_engine`, not
#: the master-request protocol.
SCHEMES: dict[str, type[Scheduler]] = {
    "S": StaticScheduler,
    "BC": BlockCyclicScheduler,
    "SS": PureScheduler,
    "CSS": ChunkScheduler,
    "GSS": GuidedScheduler,
    "TSS": TrapezoidScheduler,
    "FSS": FactoringScheduler,
    "FISS": FixedIncreaseScheduler,
    "TFSS": TrapezoidFactoringScheduler,
    "WF": WeightedFactoringScheduler,
    "DTSS": DistributedTrapezoidScheduler,
    "DFSS": DistributedFactoringScheduler,
    "DFISS": DistributedFixedIncreaseScheduler,
    "DTFSS": DistributedTrapezoidFactoringScheduler,
}

#: The paper's *simple* adaptive schemes (Table 2 columns, minus TreeS).
SIMPLE_SCHEMES: tuple[str, ...] = ("TSS", "FSS", "FISS", "TFSS")

#: The paper's *distributed* schemes (Table 3 columns, minus TreeS).
DISTRIBUTED_SCHEMES: tuple[str, ...] = ("DTSS", "DFSS", "DFISS", "DTFSS")

_PARAM_RE = re.compile(r"^([A-Za-z]+)\((\d+)\)$")

#: inline-parameter keyword per scheme family, e.g. CSS(32) -> k=32.
_INLINE_KEYWORD: dict[str, str] = {
    "CSS": "k",
    "GSS": "min_chunk",
    "BC": "block",
    "FISS": "stages",
    "DFISS": "stages",
}


def names() -> list[str]:
    """All registered scheme names, registry order."""
    return list(SCHEMES)


def parse(name: str) -> tuple[str, dict[str, int]]:
    """Resolve a scheme string to ``(key, inline_kwargs)``.

    Accepts everything :func:`make` accepts -- case-insensitive names
    and the inline-parameter form ``"CSS(32)"`` -- but performs no
    instantiation, so other factories (the decentral calculators, CLI
    validation) share one parser and one error message.
    """
    key = name.strip()
    match = _PARAM_RE.match(key)
    inline: dict[str, int] = {}
    if match:
        base, arg = match.group(1).upper(), int(match.group(2))
        if base not in _INLINE_KEYWORD:
            raise SchemeError(f"scheme {base!r} takes no inline parameter")
        inline[_INLINE_KEYWORD[base]] = arg
        key = base
    else:
        key = key.upper()
    if key not in SCHEMES:
        raise SchemeError(
            f"unknown scheme {name!r}; known: {', '.join(SCHEMES)}"
        )
    return key, inline


def make(name: str, total: int, workers: int, **kwargs) -> Scheduler:
    """Instantiate scheme ``name`` over ``total`` iterations.

    ``kwargs`` are forwarded to the scheme constructor (e.g.
    ``alpha=2.0`` for FSS, ``acp_model=...`` for distributed schemes).
    """
    key, inline = parse(name)
    for kw, value in inline.items():
        kwargs.setdefault(kw, value)
    return SCHEMES[key](total, workers, **kwargs)


def register(name: str, factory: type[Scheduler]) -> None:
    """Register a user scheme class under ``name`` (upper-cased)."""
    key = name.strip().upper()
    if not key:
        raise SchemeError("scheme name must be non-empty")
    SCHEMES[key] = factory


def make_many(
    names_: Iterable[str], total: int, workers: int, **kwargs
) -> dict[str, Scheduler]:
    """Build several fresh schedulers keyed by their given names."""
    return {n: make(n, total, workers, **kwargs) for n in names_}
