"""Static scheduling baselines (paper Table 1 row ``S``).

Static scheduling divides the loop once, before execution, with no
runtime requests beyond the initial allocation.  It is the zero-overhead
/ zero-adaptivity extreme against which the self-scheduling schemes are
compared: for ``I = 1000`` and ``p = 4`` it emits ``250 250 250 250``.

Two variants are provided:

* :class:`StaticScheduler` -- contiguous blocks, one per worker (the
  paper's ``S``).  Optionally *weighted* by virtual power, which is the
  initial allocation rule the paper uses for TreeS in the distributed
  tests ("the master assigns a number of tasks to the slaves according
  to their virtual power").
* :class:`BlockCyclicScheduler` -- fixed-size blocks dealt round-robin;
  equivalent to CSS(k) in assignment sizes but enumerable up front.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import Scheduler, SchemeError, WorkerView

__all__ = ["StaticScheduler", "BlockCyclicScheduler", "weighted_block_sizes"]


def weighted_block_sizes(total: int, weights: Sequence[float]) -> list[int]:
    """Split ``total`` into ``len(weights)`` blocks proportional to weights.

    Uses largest-remainder apportionment so the blocks sum exactly to
    ``total`` and each block differs from the exact proportional share by
    less than 1.  Weights must be positive.
    """
    if total < 0:
        raise SchemeError(f"total must be >= 0, got {total}")
    if not weights:
        raise SchemeError("weights must not be empty")
    if any(w <= 0 for w in weights):
        raise SchemeError(f"weights must be positive, got {list(weights)}")
    wsum = float(sum(weights))
    exact = [total * w / wsum for w in weights]
    sizes = [int(e) for e in exact]
    shortfall = total - sum(sizes)
    # Hand the leftover units to the largest fractional remainders.
    order = sorted(
        range(len(weights)), key=lambda j: exact[j] - sizes[j], reverse=True
    )
    for j in order[:shortfall]:
        sizes[j] += 1
    return sizes


class StaticScheduler(Scheduler):
    """One contiguous block per worker, sized equally or by weight.

    The first ``p`` requests receive the blocks in worker-id order
    (request order does not matter: block ``j`` goes to the ``j``-th
    *distinct* requester); subsequent requests get nothing.
    """

    name = "S"

    def __init__(
        self,
        total: int,
        workers: int,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(total, workers)
        if weights is None:
            weights = [1.0] * workers
        if len(weights) != workers:
            raise SchemeError(
                f"need {workers} weights, got {len(weights)}"
            )
        self._blocks = weighted_block_sizes(total, weights)
        self._served = 0

    def _chunk_size(self, worker: WorkerView) -> int:
        if self._served >= self.workers:
            # All planned blocks were handed out but iterations remain
            # (can only happen with zero-sized blocks); fall back to the
            # remainder so the loop still completes.
            return self.remaining
        size = self._blocks[self._served]
        self._served += 1
        while size == 0 and self._served < self.workers:
            size = self._blocks[self._served]
            self._served += 1
        return size if size > 0 else self.remaining


class BlockCyclicScheduler(Scheduler):
    """Fixed blocks of ``block`` iterations, dealt in request order."""

    name = "BC"

    def __init__(self, total: int, workers: int, block: int = 1) -> None:
        super().__init__(total, workers)
        if block < 1:
            raise SchemeError(f"block must be >= 1, got {block}")
        self.block = int(block)

    def _chunk_size(self, worker: WorkerView) -> int:
        return self.block
