"""Trapezoid Factoring Self-Scheduling -- the paper's new scheme (Sec. 4).

**TFSS** combines the two most successful simple schemes:

* from **FSS** it takes *stages* -- the loop is scheduled in groups of
  ``p`` equal-sized chunks, so the chunk size adapts only once per
  stage (few adaptations was FSS's observed strength);
* from **TSS** it takes the *linearly decreasing* size profile -- large
  chunks at the start (little synchronization overhead), small chunks
  at the end (good load balance).

The stage chunk is "the sum of the next ``p`` chunks that would have
been computed by the TSS algorithm ... equally divided among the ``p``
processors":

    ``C^TFSS_k = (C^TSS_{kp+1} + ... + C^TSS_{kp+p}) / p``.

(The paper's displayed formula indexes FSS chunks; Example 2 makes clear
the TSS sequence is intended, and its bounds are inclusive-exclusive
``k .. k+p``.)  For ``I = 1000, p = 4`` the nominal TSS sequence
``125 117 109 101 | 93 85 77 69 | 61 53 45 37 | 29 21 13 5`` yields the
Table 1 row ``113 81 49 17`` (per PE, 4 PEs per stage).  Like TSS's
nominal row this over-covers ``I``; the executable scheduler clips the
final chunks to the remaining count.
"""

from __future__ import annotations

from typing import Optional

from .factoring import StageLadderScheduler
from .trapezoid import nominal_tss_chunks

__all__ = ["TrapezoidFactoringScheduler", "tfss_stage_chunks"]


def tfss_stage_chunks(
    total: int,
    workers: int,
    first: Optional[int] = None,
    last: int = 1,
) -> list[int]:
    """Nominal per-PE stage chunks: group-of-``p`` means of the TSS row.

    A trailing partial group (fewer than ``p`` nominal TSS chunks left)
    still forms a stage, sized by its mean over ``p`` (floored, min 1),
    mirroring Example 2 where all groups happen to divide exactly.
    """
    tss = nominal_tss_chunks(total, workers, first=first, last=last)
    out: list[int] = []
    for g in range(0, len(tss), workers):
        group = tss[g:g + workers]
        out.append(max(1, sum(group) // workers))
    return out


class TrapezoidFactoringScheduler(StageLadderScheduler):
    """TFSS: FSS-style stages with TSS's linearly decreasing sizes.

    Uses the per-worker stage ladder (see
    :class:`~repro.core.factoring.StageLadderScheduler`): each PE's
    ``k``-th chunk is the ``k``-th nominal stage size.  Requests beyond
    the plan receive the last (smallest) stage size, clipped by the
    base class to what remains.
    """

    name = "TFSS"

    def __init__(
        self,
        total: int,
        workers: int,
        first: Optional[int] = None,
        last: int = 1,
    ) -> None:
        self._stage_chunks = tfss_stage_chunks(
            total, workers, first=first, last=last
        )
        super().__init__(total, workers)

    def _plan(self) -> list[int]:
        return self._stage_chunks
