"""Trapezoid Self-Scheduling (Tzen & Ni 1993; paper Sec. 2.2).

**TSS** decreases the chunk size *linearly* from a first size ``F`` to a
last size ``L``:

    ``F = floor(I / (2p))`` and ``L = 1`` unless supplied,
    ``N = floor(2I / (F + L))``  (planned number of chunks),
    ``D = floor((F - L) / (N - 1))``  (per-step decrement),
    ``C_i = F - (i - 1) * D``.

For ``I = 1000, p = 4``: ``F = 125, L = 1, N = 15, D = 8``.  The paper's
Table 1 prints the *nominal* arithmetic sequence down to the last value
``>= L``::

    125 117 109 101 93 85 77 69 61 53 45 37 29 21 13 5

Note this sums to 1040 > 1000: the printed row is the formula sequence,
not an executable trace.  The executable scheduler (this class) clips at
the remaining-iteration count, producing ``125 ... 37 28`` (13 chunks).
Both behaviours are exposed: :func:`nominal_tss_chunks` regenerates the
paper's row and feeds TFSS/DTFSS; :class:`TrapezoidScheduler` executes.

Paper's assessment -- *Weaknesses*: still many synchronizations if ``L``
is small (choose ``L > 1`` to improve).  *Strengths*: linear decrease is
cheaper to compute than GSS's geometric decay and empirically performs
better.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .base import Scheduler, SchemeError, WorkerView

__all__ = ["TrapezoidParams", "TrapezoidScheduler", "nominal_tss_chunks"]


@dataclasses.dataclass(frozen=True)
class TrapezoidParams(object):
    """The derived TSS parameters ``(F, L, N, D)`` for a given loop.

    DTSS (paper Sec. 3.1) re-derives these with the cluster's total
    available power ``A`` in place of ``p``, and again whenever the load
    picture changes, so they are first-class objects here.
    """

    first: int  # F
    last: int  # L
    steps: int  # N
    decrement: float  # D (integral for TSS; fractional for DTSS/DTFSS)

    @classmethod
    def derive(
        cls,
        total: int,
        workers: int,
        first: Optional[int] = None,
        last: int = 1,
        integer_decrement: bool = True,
    ) -> "TrapezoidParams":
        """Compute ``(F, L, N, D)`` per Tzen & Ni's rules.

        ``workers`` may be the PE count ``p`` (TSS) or the total
        available power ``A`` (DTSS).  Degenerate loops (``total`` not
        large enough for a trapezoid) collapse to a single chunk.

        ``integer_decrement=False`` keeps ``D`` fractional.  This
        matters for the distributed schemes: with the scaled ACP model
        ``A`` is an order of magnitude larger than ``p``, so ``F`` is
        small, ``N`` is large, and ``floor((F-L)/(N-1))`` is almost
        always 0 -- the trapezoid would degenerate to constant chunks
        and lose exactly the linear decrease DTSS is built on.  (Even
        the paper's own Sec. 5.2 example, ``I=1000, A=12``, floors to
        ``D=0``.)  DTSS's chunk formula already mixes in the fractional
        term ``(A_i-1)/2``, so a fractional ``D`` is the natural fit.
        """
        if total < 0:
            raise SchemeError(f"total must be >= 0, got {total}")
        if workers < 1:
            raise SchemeError(f"workers must be >= 1, got {workers}")
        if last < 1:
            raise SchemeError(f"last chunk L must be >= 1, got {last}")
        if first is None:
            first = total // (2 * workers)
        if first < last:
            # Tiny loop: degenerate to constant chunks of size ``last``.
            first = last
        if first < 1:
            first = 1
        if total == 0:
            return cls(first=first, last=last, steps=0, decrement=0)
        steps = (2 * total) // (first + last)
        if steps <= 1:
            return cls(first=first, last=last, steps=1, decrement=0)
        decrement: float = (first - last) / (steps - 1)
        if integer_decrement:
            decrement = float(int(decrement))
        return cls(first=first, last=last, steps=steps, decrement=decrement)

    def nominal(self, index: int) -> int:
        """Nominal chunk size at 1-based step ``index``: ``F - (i-1)D``.

        Exact (no rounding) for integral ``D``; floored otherwise.
        """
        if index < 1:
            raise SchemeError(f"step index must be >= 1, got {index}")
        return int(self.first - (index - 1) * self.decrement)


def nominal_tss_chunks(
    total: int,
    workers: int,
    first: Optional[int] = None,
    last: int = 1,
) -> list[int]:
    """The paper-style nominal TSS sequence: ``F, F-D, ...`` while ``>= L``.

    This regenerates Table 1's TSS row verbatim (including its overshoot
    of ``total``); it is also the sequence TFSS groups into stages.
    The sequence is finite: if ``D == 0`` it is truncated so that its sum
    first reaches ``total`` (otherwise a constant sequence would never
    end).
    """
    params = TrapezoidParams.derive(total, workers, first=first, last=last)
    if total == 0:
        return []
    chunks: list[int] = []
    assigned = 0
    i = 1
    while True:
        c = params.nominal(i)
        if c < params.last:
            break
        chunks.append(c)
        assigned += c
        if params.decrement == 0 and assigned >= total:
            break
        # Safety: a positive decrement always terminates; this guards
        # against pathological parameter combinations.
        if i > 2 * total + 2:  # pragma: no cover - defensive
            break
        i += 1
    return chunks


class TrapezoidScheduler(Scheduler):
    """TSS: linearly decreasing chunks, clipped to remaining iterations.

    ``first``/``last`` may be user/compiler supplied (paper: "(F, L) are
    user/compiler-input or ``F = I/(2p), L = 1``").
    """

    name = "TSS"

    def __init__(
        self,
        total: int,
        workers: int,
        first: Optional[int] = None,
        last: int = 1,
    ) -> None:
        super().__init__(total, workers)
        self.params = TrapezoidParams.derive(
            total, workers, first=first, last=last
        )
        self._next_size = self.params.first

    def _chunk_size(self, worker: WorkerView) -> int:
        size = self._next_size
        self._next_size = max(
            self.params.last, self._next_size - self.params.decrement
        )
        return size
