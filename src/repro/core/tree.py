"""Tree Scheduling (Kim & Purtilo 1996) -- the decentralized comparator.

**TreeS** differs structurally from every master-driven scheme in this
package: "the slaves do not contend for a central processor when making
requests because they have predefined partners" (paper Sec. 5).  The
moving parts:

* an **initial allocation** hands every worker a contiguous block up
  front -- even blocks in the paper's *simple* test, blocks proportional
  to virtual power in its *distributed* test;
* a worker that drains its block turns to its **predefined partners**
  in a fixed tree-derived order and *steals half* of a partner's
  remaining range;
* results "still have to be collected on a single central processor";
  the paper found end-of-run collection caused heavy idling and instead
  flushes "from time to time, at predefined time intervals".

This module holds the pure combinatorial pieces (allocation + partner
order + the steal rule); :mod:`repro.simulation.tree_engine` executes
them under the cluster model, and the flush interval lives there.

Partner order: workers are leaves of a binomial tree; worker ``i``'s
partner at level ``d`` is ``i XOR 2^d`` (its sibling subtree at that
height), skipping ids ``>= p``.  This gives every worker a deterministic
partner sequence that sweeps the whole cluster, exactly the "predefined
partners" property TreeS needs, and reduces to the classic binary-tree
pairing when ``p`` is a power of two.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from .base import SchemeError
from .static_ import weighted_block_sizes

__all__ = ["TreePartition", "partner_order", "steal_split"]


def partner_order(worker_id: int, workers: int) -> list[int]:
    """The fixed partner sequence for ``worker_id`` (binomial levels).

    Level ``d`` pairs ``i`` with ``i XOR 2^d``; ids outside ``[0, p)``
    are skipped.  Every other worker appears at most once.
    """
    if workers < 1:
        raise SchemeError(f"workers must be >= 1, got {workers}")
    if not 0 <= worker_id < workers:
        raise SchemeError(
            f"worker_id {worker_id} out of range for {workers} workers"
        )
    partners: list[int] = []
    d = 1
    while d < workers:
        partner = worker_id ^ d
        if partner < workers:
            partners.append(partner)
        d <<= 1
    # Sweep any ids unreachable by XOR levels (non-power-of-two p),
    # preserving determinism.
    for other in range(workers):
        if other != worker_id and other not in partners:
            partners.append(other)
    return partners


def steal_split(start: int, stop: int) -> tuple[tuple[int, int], tuple[int, int]]:
    """Split a victim's remaining range in half: (kept, stolen).

    The victim keeps the *front* half (it is already iterating from the
    front); the thief takes the back half.  Ranges are half-open.  The
    victim keeps the odd extra iteration.
    """
    n = stop - start
    if n < 2:
        raise SchemeError(f"cannot split a range of {n} iterations")
    stolen = n // 2
    mid = stop - stolen
    return (start, mid), (mid, stop)


@dataclasses.dataclass(frozen=True)
class TreePartition(object):
    """Initial contiguous allocation for TreeS.

    ``weights=None`` gives the paper's simple-test behaviour ("the
    master assigns an even number of tasks to all slaves in the initial
    allocation stage"); explicit weights give its distributed-test
    behaviour ("according to their virtual power").
    """

    total: int
    workers: int
    weights: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.total < 0:
            raise SchemeError(f"total must be >= 0, got {self.total}")
        if self.workers < 1:
            raise SchemeError(f"workers must be >= 1, got {self.workers}")
        if self.weights is not None and len(self.weights) != self.workers:
            raise SchemeError(
                f"need {self.workers} weights, got {len(self.weights)}"
            )

    @classmethod
    def even(cls, total: int, workers: int) -> "TreePartition":
        return cls(total=total, workers=workers)

    @classmethod
    def weighted(
        cls, total: int, weights: Sequence[float]
    ) -> "TreePartition":
        return cls(
            total=total, workers=len(weights), weights=tuple(weights)
        )

    def blocks(self) -> list[tuple[int, int]]:
        """Per-worker initial ``[start, stop)`` blocks (may be empty)."""
        weights = self.weights or tuple([1.0] * self.workers)
        sizes = weighted_block_sizes(self.total, weights)
        blocks: list[tuple[int, int]] = []
        cursor = 0
        for size in sizes:
            blocks.append((cursor, cursor + size))
            cursor += size
        return blocks
