"""Master-less (decentralized) chunk self-scheduling substrate.

The master--slave protocol of the paper serializes every scheduling
decision through one PE.  This package removes the master from the
dispatch path, following the Distributed Chunk Calculation Approach:
each scheme's chunk size is a *pure function* of how many iterations
have been scheduled, so a worker that atomically fetch-and-adds a
shared counter can derive its own interval with local arithmetic.

Three layers, mirroring the repo's master-based stack:

* :mod:`~repro.decentral.calc` -- closed-form chunk calculators for
  SS/CSS/GSS/TSS/FSS/FISS/TFSS, verified equivalent to the stateful
  schedulers in :mod:`repro.core`;
* :mod:`~repro.decentral.counter` + :mod:`~repro.decentral.executor`
  -- a real ``multiprocessing`` runtime over a SIGKILL-safe flock'd
  counter (plus a leased, hierarchical MPI+MPI-style mode);
* :mod:`~repro.decentral.sim_engine` -- a discrete-event contention
  model where the counter, not a master FIFO, is the serialized
  resource.
"""

from .calc import (
    CALCULATORS,
    DECENTRAL_SCHEMES,
    ChunkCalculator,
    chunk_size,
    make_calculator,
)
from .counter import LeasedCounter, SharedCounter
from .executor import (
    REPAIR_LANE,
    DecentralChaosController,
    DecentralResult,
    decentral_worker_main,
    run_decentral,
)
from .sim_engine import (
    DEFAULT_ATOMIC_OP_COST,
    DecentralSimulation,
    simulate_decentral,
)

__all__ = [
    "CALCULATORS",
    "DECENTRAL_SCHEMES",
    "DEFAULT_ATOMIC_OP_COST",
    "REPAIR_LANE",
    "ChunkCalculator",
    "DecentralChaosController",
    "DecentralResult",
    "DecentralSimulation",
    "LeasedCounter",
    "SharedCounter",
    "chunk_size",
    "decentral_worker_main",
    "make_calculator",
    "run_decentral",
    "simulate_decentral",
]
