"""Pure chunk calculators -- re-exported from :mod:`repro.core.kernel`.

The calculators originated here as the decentral substrate's pure
``chunk(scheduled) -> size`` forms; once the master-engine fast path
and :mod:`repro.verify` started consuming the same objects they were
promoted to :mod:`repro.core.kernel`, the single source of truth.
This module remains as a stable alias so decentral-facing imports
(``from repro.decentral.calc import make_calculator``) keep working;
new code should import from ``repro.core.kernel`` directly, which also
exposes the vectorized ladder evaluation (:class:`ChunkLadder`,
``evaluate_ladder``).
"""

from __future__ import annotations

from ..core.kernel import (
    CALCULATORS,
    DECENTRAL_SCHEMES,
    ChunkCalculator,
    FactoringCalculator,
    FixedChunkCalculator,
    FixedIncreaseCalculator,
    GuidedCalculator,
    SerialCalculator,
    TrapezoidCalculator,
    TrapezoidFactoringCalculator,
    _LadderCalculator,
    chunk_size,
    make_calculator,
)

__all__ = [
    "ChunkCalculator",
    "SerialCalculator",
    "FixedChunkCalculator",
    "GuidedCalculator",
    "TrapezoidCalculator",
    "FactoringCalculator",
    "FixedIncreaseCalculator",
    "TrapezoidFactoringCalculator",
    "CALCULATORS",
    "DECENTRAL_SCHEMES",
    "make_calculator",
    "chunk_size",
]
