"""Pure chunk calculators: ``chunk(scheduled) -> size`` with no master.

The master--slave protocol computes chunk sizes *statefully*: the
master owns a :class:`~repro.core.base.Scheduler` whose cursor advances
on every request.  Eleliemy & Ciorba's *Distributed Chunk Calculation
Approach* (arXiv:2101.07050) observes that for the self-scheduling
schemes every quantity in the chunk formula is derivable from the
*scheduled iteration count* alone -- so a worker that atomically
fetches-and-increments a shared counter can compute its own interval
with no master in the dispatch path.

This module extracts that pure form from the stateful schedulers in
:mod:`repro.core`:

* ``calc.chunk(scheduled)`` is a pure function of the boundary
  ``scheduled`` (iterations already assigned); it returns the size the
  master *would* have granted at that cursor position, with the base
  class's clipping rules (minimum 1, never beyond ``total``) applied.
* ``calc.interval(i)`` maps a fetched chunk ordinal ``i`` to its
  half-open iteration interval -- what a decentral worker executes
  after ``i = counter.fetch_add(1)``.

Equivalence to the master-based substrate is not aspirational: the
staged calculators take their ladder *from* the corresponding
scheduler class, and the property suite in
``tests/decentral/test_calc_properties.py`` checks every calculator's
boundary set against :func:`repro.verify.replay_cut_points`.

Which schemes decentralize
--------------------------

A scheme qualifies when its chunk sizes are independent of request
*order* and of worker identity: SS, CSS, GSS, TSS directly (size is a
function of the remaining count), and the staged schemes FSS, FISS,
TFSS through the stage-span argument: under the per-worker stage
ladder, chunk ordinal ``m`` is worker ``m % p``'s ``(m // p)``-th
request, so its size is ``ladder[m // p]`` -- a pure function of the
ordinal, hence of the boundary.  WF needs the requester's static
weight, S/BC need the requester's identity, and the distributed D*
family consults runtime ACP reports; none has a substrate-independent
pure form, and :func:`make_calculator` refuses them with an
explanation.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Optional

from ..core import registry
from ..core.base import SchemeError
from ..core.factoring import FactoringScheduler
from ..core.fixed_increase import FixedIncreaseScheduler
from ..core.tfss import TrapezoidFactoringScheduler
from ..core.trapezoid import TrapezoidParams

__all__ = [
    "ChunkCalculator",
    "SerialCalculator",
    "FixedChunkCalculator",
    "GuidedCalculator",
    "TrapezoidCalculator",
    "FactoringCalculator",
    "FixedIncreaseCalculator",
    "TrapezoidFactoringCalculator",
    "CALCULATORS",
    "DECENTRAL_SCHEMES",
    "make_calculator",
    "chunk_size",
]


class ChunkCalculator(object):
    """Pure, picklable chunk policy over ``total`` iterations.

    Subclasses implement :meth:`_nominal`, the unclipped size at a
    given boundary; everything else (clipping, ordinal/interval maps,
    boundary sets) is derived here.  Instances carry only plain data,
    so they pickle cheaply into decentral worker processes, and every
    method is side-effect free -- two workers evaluating the same
    ordinal always agree, which is what makes the shared counter the
    *only* coordination point.
    """

    #: canonical scheme name (e.g. ``"TSS"``); set by subclasses.
    scheme: str = "?"

    def __init__(self, total: int, workers: int) -> None:
        if total < 0:
            raise SchemeError(f"total iterations must be >= 0, got {total}")
        if workers < 1:
            raise SchemeError(f"workers must be >= 1, got {workers}")
        self.total = int(total)
        self.workers = int(workers)
        self._starts: Optional[tuple[int, ...]] = None

    # -- the pure function -------------------------------------------------

    def chunk(self, scheduled: int) -> int:
        """Chunk size at boundary ``scheduled``; 0 once the loop is done.

        Mirrors ``Scheduler.next_chunk``'s clipping exactly: the
        nominal size is floored at 1 and capped at the remaining count,
        so only the final chunk of a run is ever clipped.
        """
        if scheduled < 0:
            raise SchemeError(f"scheduled must be >= 0, got {scheduled}")
        if scheduled >= self.total:
            return 0
        size = int(self._nominal(scheduled))
        if size < 1:
            size = 1
        return min(size, self.total - scheduled)

    def _nominal(self, scheduled: int) -> int:
        """Unclipped size at boundary ``scheduled`` (subclass hook)."""
        raise NotImplementedError

    # -- ordinal geometry (what a fetched counter value buys) --------------

    def _table(self) -> tuple[int, ...]:
        if self._starts is None:
            starts: list[int] = []
            cursor = 0
            while cursor < self.total:
                starts.append(cursor)
                cursor += self.chunk(cursor)  # chunk() >= 1 here
            self._starts = tuple(starts)
        return self._starts

    @property
    def n_chunks(self) -> int:
        """Number of chunks a full run produces."""
        return len(self._table())

    def prefix(self, index: int) -> int:
        """Iterations assigned before chunk ordinal ``index``."""
        starts = self._table()
        if not 0 <= index <= len(starts):
            raise SchemeError(
                f"chunk index {index} out of range [0, {len(starts)}]"
            )
        return self.total if index == len(starts) else starts[index]

    def interval(self, index: int) -> tuple[int, int]:
        """Half-open iteration interval of chunk ordinal ``index``."""
        start = self.prefix(index)
        if start >= self.total:
            raise SchemeError(
                f"chunk index {index} beyond the loop (n_chunks="
                f"{self.n_chunks})"
            )
        return start, start + self.chunk(start)

    def sizes(self) -> list[int]:
        """Every chunk size in ordinal order (sums to ``total``)."""
        starts = self._table()
        return [self.chunk(s) for s in starts]

    def stage_of(self, index: int) -> int:
        """Stage recorded on chunk ``index`` (staged schemes override)."""
        return 0

    def boundaries(self) -> frozenset[int]:
        """All cut points, :func:`repro.verify.replay_cut_points` style."""
        starts = self._table()
        if not starts:
            return frozenset()
        return frozenset(starts) | {self.total}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.scheme} total={self.total} "
            f"workers={self.workers}>"
        )


class SerialCalculator(ChunkCalculator):
    """SS: one iteration per fetch (pure self-scheduling)."""

    scheme = "SS"

    def _nominal(self, scheduled: int) -> int:
        return 1


class FixedChunkCalculator(ChunkCalculator):
    """CSS(k): constant chunks of ``k`` iterations."""

    scheme = "CSS"

    def __init__(self, total: int, workers: int, k: int = 1) -> None:
        super().__init__(total, workers)
        if k < 1:
            raise SchemeError(f"chunk size k must be >= 1, got {k}")
        self.k = int(k)

    def _nominal(self, scheduled: int) -> int:
        return self.k


class GuidedCalculator(ChunkCalculator):
    """GSS: ``max(min_chunk, ceil(R / p))`` -- pure in the remaining count."""

    scheme = "GSS"

    def __init__(
        self, total: int, workers: int, min_chunk: int = 1
    ) -> None:
        super().__init__(total, workers)
        if min_chunk < 1:
            raise SchemeError(f"min_chunk must be >= 1, got {min_chunk}")
        self.min_chunk = int(min_chunk)

    def _nominal(self, scheduled: int) -> int:
        remaining = self.total - scheduled
        return max(self.min_chunk, math.ceil(remaining / self.workers))


class TrapezoidCalculator(ChunkCalculator):
    """TSS in closed form: invert the arithmetic-series prefix.

    The master's size sequence is ``s_j = max(L, F - jD)`` (0-based
    ``j``), so the iterations before ordinal ``j`` are

        ``P(j) = jF - D j(j-1)/2``          for ``j <= m``,
        ``P(m) + (j - m) L``                 beyond,

    with ``m = (F-L)//D + 1`` the number of above-floor steps.  A
    worker holding boundary ``s`` recovers its ordinal by inverting the
    strictly increasing ``P`` (binary search over at most ``m`` steps)
    -- no shared state beyond the counter.
    """

    scheme = "TSS"

    def __init__(
        self,
        total: int,
        workers: int,
        first: Optional[int] = None,
        last: int = 1,
    ) -> None:
        super().__init__(total, workers)
        self.params = TrapezoidParams.derive(
            total, workers, first=first, last=last
        )
        self._first = int(self.params.first)
        self._last = int(self.params.last)
        # Integral by construction for TSS (integer_decrement=True).
        self._dec = int(self.params.decrement)

    def _nominal(self, scheduled: int) -> int:
        first, last, dec = self._first, self._last, self._dec
        if dec == 0:
            return first
        above = (first - last) // dec + 1  # steps before the L floor
        def prefix(j: int) -> int:
            return j * first - dec * j * (j - 1) // 2
        if scheduled >= prefix(above):
            return last
        lo, hi = 0, above - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if prefix(mid) <= scheduled:
                lo = mid
            else:
                hi = mid - 1
        return first - lo * dec


class _LadderCalculator(ChunkCalculator):
    """Base for staged schemes: stage spans over the boundary axis.

    A per-worker stage ladder serves chunk ordinal ``m`` (= worker
    ``m % p``'s request number ``m // p``) with size ``ladder[m // p]``,
    so stage ``k`` occupies the boundary span
    ``[p * sum(ladder[:k]), p * sum(ladder[:k+1]))`` and the size at a
    boundary is a span lookup.  Past the plan the master's shrinking
    tail rule applies: ``max(1, ceil(R / 2p))`` (rounding or clipping
    can leave iterations over; see ``StageLadderScheduler``).
    """

    def __init__(self, total: int, workers: int, ladder: list[int]) -> None:
        super().__init__(total, workers)
        self._ladder = tuple(max(1, int(c)) for c in ladder) or (1,)
        spans: list[int] = []
        acc = 0
        for c in self._ladder:
            acc += c * self.workers
            spans.append(acc)
        self._spans = tuple(spans)

    @property
    def ladder(self) -> tuple[int, ...]:
        """The lockstep per-PE stage sizes (one entry per stage)."""
        return self._ladder

    def _nominal(self, scheduled: int) -> int:
        if scheduled < self._spans[-1]:
            return self._ladder[bisect_right(self._spans, scheduled)]
        remaining = self.total - scheduled
        return max(1, math.ceil(remaining / (2 * self.workers)))

    def stage_of(self, index: int) -> int:
        if not 0 <= index < self.n_chunks:
            raise SchemeError(f"chunk index {index} out of range")
        return index // self.workers + 1


class FactoringCalculator(_LadderCalculator):
    """FSS(alpha): stage plan taken verbatim from the FSS scheduler."""

    scheme = "FSS"

    def __init__(
        self,
        total: int,
        workers: int,
        alpha: float = 2.0,
        rounding: str = "half-even",
    ) -> None:
        ref = FactoringScheduler(
            total, workers, alpha=alpha, rounding=rounding
        )
        self.alpha = ref.alpha
        self.rounding = ref.rounding
        super().__init__(total, workers, ref._ladder)


class FixedIncreaseCalculator(_LadderCalculator):
    """FISS(sigma, X): increasing stage plan from the FISS scheduler."""

    scheme = "FISS"

    def __init__(
        self,
        total: int,
        workers: int,
        stages: int = 3,
        x: Optional[float] = None,
    ) -> None:
        ref = FixedIncreaseScheduler(total, workers, stages=stages, x=x)
        self.stages = ref.stages
        self.x = ref.x
        super().__init__(total, workers, ref._ladder)


class TrapezoidFactoringCalculator(_LadderCalculator):
    """TFSS: TSS-derived stage plan from the TFSS scheduler."""

    scheme = "TFSS"

    def __init__(
        self,
        total: int,
        workers: int,
        first: Optional[int] = None,
        last: int = 1,
    ) -> None:
        ref = TrapezoidFactoringScheduler(
            total, workers, first=first, last=last
        )
        super().__init__(total, workers, ref._ladder)


#: scheme name -> calculator class: the decentralizable subset.
CALCULATORS: dict[str, type[ChunkCalculator]] = {
    "SS": SerialCalculator,
    "CSS": FixedChunkCalculator,
    "GSS": GuidedCalculator,
    "TSS": TrapezoidCalculator,
    "FSS": FactoringCalculator,
    "FISS": FixedIncreaseCalculator,
    "TFSS": TrapezoidFactoringCalculator,
}

#: Schemes with a pure decentral form (see the module docstring for
#: why the others are excluded).
DECENTRAL_SCHEMES: tuple[str, ...] = tuple(CALCULATORS)


def make_calculator(
    name: str, total: int, workers: int, **kwargs
) -> ChunkCalculator:
    """Build the pure calculator for scheme ``name``.

    Accepts the same spellings as :func:`repro.core.make` (case
    folding, ``"CSS(32)"`` inline parameters).  Schemes without a pure
    form -- worker-identity-dependent (S, BC, WF) or ACP-driven (DTSS,
    DFSS, DFISS, DTFSS) -- raise :class:`SchemeError`.
    """
    key, inline = registry.parse(name)
    for kw, value in inline.items():
        kwargs.setdefault(kw, value)
    if key not in CALCULATORS:
        raise SchemeError(
            f"scheme {key!r} has no decentral form (chunk sizes depend "
            f"on worker identity or runtime ACP, so they cannot be a "
            f"pure function of the scheduled count); decentralizable: "
            f"{', '.join(DECENTRAL_SCHEMES)}"
        )
    return CALCULATORS[key](total, workers, **kwargs)


def chunk_size(
    scheme: str, scheduled: int, total: int, workers: int, **kwargs
) -> int:
    """One-shot pure form: ``chunk(scheduled, total, p)`` for ``scheme``."""
    return make_calculator(scheme, total, workers, **kwargs).chunk(scheduled)
