"""SIGKILL-safe shared counters: the decentral coordination point.

The decentral runtime needs one primitive: an atomic *fetch-and-add*
over a counter every worker process can reach -- the shared-memory
analog of the MPI passive-target RMA window in arXiv:1901.02773.  The
implementation here is an 8-byte little-endian integer in a plain file,
arbitrated by ``fcntl.flock``:

* **fetch_add** takes the exclusive lock, ``pread``s the value,
  ``pwrite``s value+amount, releases.  Two syscalls under a kernel
  lock -- tens of microseconds, far below any chunk's compute time.
* **crash safety** is the reason for this design over a
  ``multiprocessing.Value``/``SharedMemory`` + ``mp.Lock`` pair: a
  worker SIGKILLed *while holding the lock* would leave an mp.Lock
  locked forever (deadlock) -- whereas the kernel releases ``flock``
  locks when the holder's last file descriptor closes, which process
  death guarantees.  Counter-holder death therefore needs no watchdog,
  no timeout, no force-release heuristics.  A holder killed between
  the read and the write leaves the *old* value behind; the interval
  it was about to claim is simply claimed by someone else, and the
  merge layer (``executor._merge_shards``) dedupes by chunk ordinal.
* the file doubles as the lock *and* the value, so there is exactly
  one object to create, inherit, and clean up.

:class:`LeasedCounter` layers the hierarchical (MPI+MPI) mode on top:
a per-group counter file holds ``(next_local, lease_end)``; group
members claim locally, and whoever finds the lease empty refills it
with one ``fetch_add(lease)`` on the global counter -- turning ``k``
global atomics into ``1`` per ``lease`` chunks.
"""

from __future__ import annotations

import os
import struct
import time

__all__ = ["SharedCounter", "LeasedCounter"]

try:  # pragma: no cover - import guard, exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    # Canonical import-guard idiom: the module-object name is rebound
    # to None off-POSIX and every use goes through _require_fcntl().
    # The ignore is deliberate and stays (mypy has no way to type a
    # "module or None" sentinel).
    fcntl = None  # type: ignore[assignment]

_WORD = struct.Struct("<q")
_PAIR = struct.Struct("<qq")


def _require_fcntl() -> None:
    if fcntl is None:  # pragma: no cover - POSIX everywhere we run
        raise RuntimeError(
            "repro.decentral needs fcntl.flock for its SIGKILL-safe "
            "shared counter; this platform does not provide it"
        )


class SharedCounter(object):
    """Fetch-and-add over an flock-arbitrated 8-byte counter file.

    Instances are cheap handles: they open the file lazily and drop
    the descriptor when pickled, so passing one to a worker process
    (fork or spawn) just re-opens the same path.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fd: int | None = None

    @classmethod
    def create(cls, path: str, value: int = 0) -> "SharedCounter":
        """Create (or reset) the counter file at ``path``."""
        _require_fcntl()
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
        try:
            os.pwrite(fd, _WORD.pack(value), 0)
        finally:
            os.close(fd)
        return cls(path)

    # -- plumbing ----------------------------------------------------------

    def _handle(self) -> int:
        if self._fd is None:
            _require_fcntl()
            self._fd = os.open(self.path, os.O_RDWR)
        return self._fd

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._fd = None

    def __enter__(self) -> "SharedCounter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the primitive -----------------------------------------------------

    def fetch_add(self, amount: int = 1) -> int:
        """Atomically add ``amount``; return the *previous* value."""
        fd = self._handle()
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            value = _WORD.unpack(os.pread(fd, _WORD.size, 0))[0]
            os.pwrite(fd, _WORD.pack(value + amount), 0)
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
        return value

    def peek(self) -> int:
        """Read the current value (under a shared lock)."""
        fd = self._handle()
        fcntl.flock(fd, fcntl.LOCK_SH)
        try:
            return _WORD.unpack(os.pread(fd, _WORD.size, 0))[0]
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)

    def hold(self, duration: float) -> None:
        """Hold the exclusive lock for ``duration`` seconds.

        Fault injection: models a stalled counter host -- every
        concurrent ``fetch_add`` blocks until release (the decentral
        analog of a master stall).
        """
        fd = self._handle()
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            time.sleep(duration)
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)


class LeasedCounter(object):
    """Group-local counter that leases index blocks from a global one.

    The group file holds ``(next_local, lease_end)`` under its own
    flock.  :meth:`claim` serves from the local range; on exhaustion
    the claiming member refills via ``global_counter.fetch_add(lease)``
    *while still holding the group lock*, so exactly one member refills
    and the lease is handed out without gaps.  A member SIGKILLed at
    any point leaves the pair consistent (the kernel releases both
    locks); at worst the indices it claimed-but-never-recorded are
    re-executed by the merge layer's repair pass.

    Returned indices may be ``>= limit`` once the global range is
    exhausted: callers treat any such claim as "no more work" (the
    over-claimed indices are never part of the loop, so nothing leaks).
    """

    def __init__(
        self,
        path: str,
        global_counter: SharedCounter,
        lease: int,
        limit: int,
    ) -> None:
        if lease < 1:
            raise ValueError(f"lease must be >= 1, got {lease}")
        self.path = os.fspath(path)
        self.global_counter = global_counter
        self.lease = int(lease)
        self.limit = int(limit)
        self._fd: int | None = None

    @classmethod
    def create(
        cls,
        path: str,
        global_counter: SharedCounter,
        lease: int,
        limit: int,
    ) -> "LeasedCounter":
        """Create the group file with an empty (exhausted) lease."""
        _require_fcntl()
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
        try:
            os.pwrite(fd, _PAIR.pack(0, 0), 0)
        finally:
            os.close(fd)
        return cls(path, global_counter, lease, limit)

    def _handle(self) -> int:
        if self._fd is None:
            _require_fcntl()
            self._fd = os.open(self.path, os.O_RDWR)
        return self._fd

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self.global_counter.close()

    def __getstate__(self) -> dict:
        return {
            "path": self.path,
            "global_counter": self.global_counter,
            "lease": self.lease,
            "limit": self.limit,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._fd = None

    def claim(self) -> tuple[int, bool]:
        """Claim the next index; returns ``(index, refilled)``.

        ``refilled`` is True when this claim paid a *global* atomic
        (lease refill) rather than a group-local one -- the statistic
        the hierarchical mode exists to improve.
        """
        fd = self._handle()
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            local, end = _PAIR.unpack(os.pread(fd, _PAIR.size, 0))
            if local < end:
                os.pwrite(fd, _PAIR.pack(local + 1, end), 0)
                return local, False
            base = self.global_counter.fetch_add(self.lease)
            os.pwrite(fd, _PAIR.pack(base + 1, base + self.lease), 0)
            return base, True
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
