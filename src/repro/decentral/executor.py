"""Master-less multiprocessing runtime: counter, shards, repair.

The decentral counterpart of :mod:`repro.runtime.executor`.  There is
no master process in the dispatch path: each worker loops

    1. ``i = counter.fetch_add(1)``      (or a group-lease claim),
    2. ``start, stop = calc.interval(i)``  (pure local arithmetic),
    3. execute, append ``(i, start, stop, payload)`` to its own shard
       file, flush, go to 1,

until a fetched ordinal falls beyond ``calc.n_chunks``.  The parent
only spawns processes, waits, and merges shards -- coordination-free
until the very end.

Fault story (the counter side is in :mod:`repro.decentral.counter`):

* a worker SIGKILLed mid-chunk leaves a shard whose last record may be
  torn; the merge stops that shard at the first undecodable record, so
  a half-written chunk counts as *not executed*;
* exactly-once comes from the merge, not the dispatch: records are
  deduped by chunk ordinal (first wins -- duplicates can only carry
  identical intervals and, for deterministic workloads, identical
  payloads, because the calculators are pure);
* ordinals claimed but never recorded (killed between fetch and
  flush, or lost with a dead group's lease) appear as holes in
  ``[0, n_chunks)``; the parent re-executes them serially after the
  run -- repair rides *off* the dispatch critical path, unlike the
  master runtime where the master requeues mid-run.

:func:`run_decentral` accepts a chaos :class:`FaultPlan` directly; the
:class:`DecentralChaosController` reuses the chaos runtime's driver
thread, mapping *stall* onto "hold the global counter's lock" (the
counter, not a master FIFO, is the serialized resource here).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import shutil
import tempfile
import threading
import time
import multiprocessing as mp
from typing import Optional, Sequence

import numpy as np

from ..chaos.plan import ChaosError, FaultPlan
from ..chaos.runtime import ChaosController
from ..core.acp import IMPROVED_ACP
from ..obs import ObsEvent
from ..obs import resolve as _resolve_collector
from ..runtime.config import RuntimeConfig
from ..runtime.executor import assemble_results
from ..runtime.messages import WorkerStats
from ..runtime.worker import WorkerSpec, _execute_with_slowdown
from ..workloads import Workload
from .calc import ChunkCalculator, make_calculator
from .counter import LeasedCounter, SharedCounter

__all__ = [
    "DecentralResult",
    "run_decentral",
    "decentral_worker_main",
    "DecentralChaosController",
]

#: Synthetic "worker id" the parent's repair pass executes under.
REPAIR_LANE = -1

#: Event-source tag for the unified observability stream.
_SRC = "runtime.decentral"


@dataclasses.dataclass
class DecentralResult(object):
    """Outcome of one master-less run (duck-compatible with RunResult).

    ``chunks``/``results``/``scheme`` satisfy
    :func:`repro.verify.audit_run`; the extra fields expose what the
    substrate is about: ``global_ops`` counts fetch-and-adds on the
    global counter, ``local_ops`` group-local claims (hierarchical
    mode), ``recovered`` the chunks re-executed by the repair pass.
    """

    scheme: str
    elapsed: float
    results: Optional[np.ndarray]
    stats: dict[int, WorkerStats]
    chunks: list[tuple[int, int, int]]
    n_chunks: int
    global_ops: int = 0
    local_ops: int = 0
    recovered: int = 0
    group_size: Optional[int] = None

    @property
    def total_chunks(self) -> int:
        return len(self.chunks)


def _make_worker_counter(
    counter_path: str,
    group_paths: Optional[Sequence[str]],
    wid: int,
    group_size: Optional[int],
    lease: int,
    limit: int,
):
    """Fresh (picklable) counter handle for one worker."""
    shared = SharedCounter(counter_path)
    if group_paths is None:
        return shared
    return LeasedCounter(
        group_paths[wid // group_size], shared, lease, limit
    )


def decentral_worker_main(
    worker_id: int,
    workload: Workload,
    calc: ChunkCalculator,
    counter,
    shard_path: str,
    spec: Optional[WorkerSpec] = None,
    collect_results: bool = True,
    delays: Optional[Sequence[tuple[float, float]]] = None,
    emit_events: bool = False,
) -> None:
    """Claim/compute/record loop (process target; exits when dry).

    ``counter`` is a :class:`SharedCounter` (flat) or
    :class:`LeasedCounter` (hierarchical).  Every record is flushed
    before the next claim, so anything this process *recorded* survives
    its own SIGKILL (page cache, not process memory).

    ``emit_events`` interleaves unified observability events (source
    ``runtime.decentral``) into the shard stream as
    ``("event", ordinal_or_None, event_dict)`` records; the parent
    replays them into its collector at merge time, deduping ``result``
    events by ordinal alongside the chunk records themselves.
    """
    spec = spec or WorkerSpec()
    n = calc.n_chunks
    stats = WorkerStats()
    global_ops = 0
    local_ops = 0
    born = time.perf_counter()
    pending_delays = sorted(delays) if delays else []
    di = 0
    leased = isinstance(counter, LeasedCounter)
    with open(shard_path, "wb", buffering=0) as out:
        def dump_event(kind: str, index: Optional[int] = None,
                       at: Optional[float] = None, **fields) -> None:
            t = (time.perf_counter() if at is None else at) - born
            ev = ObsEvent(
                kind, _SRC, t, worker_id, wall=time.time(), **fields
            )
            pickle.dump(("event", index, ev.to_dict()), out,
                        protocol=pickle.HIGHEST_PROTOCOL)

        while True:
            now = time.perf_counter() - born
            while di < len(pending_delays) and pending_delays[di][0] <= now:
                time.sleep(pending_delays[di][1])
                di += 1
            if emit_events:
                dump_event("request")
            t0 = time.perf_counter()
            if leased:
                index, refilled = counter.claim()
                global_ops += 1 if refilled else 0
                local_ops += 0 if refilled else 1
            else:
                index = counter.fetch_add(1)
                refilled = True
                global_ops += 1
            wait = time.perf_counter() - t0
            stats.wait_seconds += wait
            if emit_events:
                dump_event(
                    "fetch-add", at=t0, value=wait,
                    detail="global" if refilled else "local",
                )
            if index >= n:
                if emit_events:
                    dump_event("terminate")
                break
            start, stop = calc.interval(index)
            t1 = time.perf_counter()
            payload = _execute_with_slowdown(
                workload, start, stop, spec.slowdown
            )
            duration = time.perf_counter() - t1
            stats.compute_seconds += duration
            stats.chunks += 1
            stats.iterations += stop - start
            if emit_events:
                dump_event(
                    "compute", at=t1, start=start, stop=stop,
                    stage=calc.stage_of(index), value=duration,
                )
            pickle.dump(
                (
                    "chunk", index, start, stop,
                    payload if collect_results else None,
                ),
                out,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            if emit_events:
                # After the chunk record: the result is durable now.
                dump_event("result", index=index, start=start, stop=stop)
        pickle.dump(
            ("stats", worker_id, stats, global_ops, local_ops),
            out,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    counter.close()


def _read_shard(path: str) -> list[tuple]:
    """Decode a shard, stopping at the first torn (half-written) record."""
    records: list[tuple] = []
    with open(path, "rb") as handle:
        while True:
            try:
                records.append(pickle.load(handle))
            except EOFError:
                break
            except (pickle.UnpicklingError, AttributeError, ImportError,
                    IndexError, ValueError, TypeError, OSError):
                # A SIGKILL mid-write leaves a truncated/garbled tail;
                # everything before it decoded fine and stands.  This
                # tuple is the documented set of errors ``pickle.load``
                # raises on corrupt input (plus OSError for a torn
                # read); a genuine bug still propagates.
                break
    return records


class DecentralChaosController(ChaosController):
    """Fault driver for the counter substrate.

    Reuses the chaos runtime's scripted thread (deaths via SIGKILL,
    restarts, spikes) but respawns *decentral* workers -- each restart
    gets a fresh incarnation with its own shard file -- and interprets
    master stalls as exclusive holds on the global counter: with the
    counter locked, every claim in the system queues behind the hold,
    which is precisely the decentral meaning of "the dispatch resource
    stalled".
    """

    def __init__(
        self,
        plan: FaultPlan,
        ctx,
        workload: Workload,
        specs: Sequence[WorkerSpec],
        config: RuntimeConfig,
        calc: ChunkCalculator,
        counter_path: str,
        group_paths: Optional[Sequence[str]],
        group_size: Optional[int],
        lease: int,
        shard_dir: str,
        collect_results: bool,
        stress_size: int = 200,
        collector=None,
        emit_events: bool = False,
    ) -> None:
        super().__init__(
            plan, ctx, workload, specs, distributed=False,
            acp_model=IMPROVED_ACP, config=config,
            stress_size=stress_size, collector=collector,
        )
        self.emit_events = emit_events
        self.calc = calc
        self.counter_path = counter_path
        self.group_paths = group_paths
        self.group_size = group_size
        self.lease = lease
        self.shard_dir = shard_dir
        self.collect_results = collect_results
        self._incarnation: dict[int, int] = {}
        self._holds: list[threading.Thread] = []

    def spawn_worker(self, wid: int, initial: bool):
        """One decentral worker incarnation; no pipe (returns None)."""
        incarnation = self._incarnation.get(wid, -1) + 1
        self._incarnation[wid] = incarnation
        shard = os.path.join(
            self.shard_dir, f"shard-{wid:03d}-{incarnation:02d}.pkl"
        )
        counter = _make_worker_counter(
            self.counter_path, self.group_paths, wid, self.group_size,
            self.lease, self.calc.n_chunks,
        )
        proc = self.ctx.Process(
            target=decentral_worker_main,
            args=(wid, self.workload, self.calc, counter, shard),
            kwargs={
                "spec": self.specs[wid],
                "collect_results": self.collect_results,
                # Message faults hit the original incarnation only, as
                # in the master-based chaos runtime.
                "delays": self.delays_for(wid) if initial else None,
                "emit_events": self.emit_events,
            },
            daemon=True,
        )
        return None, proc

    def _hold_counter(self, duration: float) -> None:
        self._emit("fault", value=duration, detail="stall")

        def hold() -> None:
            SharedCounter(self.counter_path).hold(duration)

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        self._holds.append(thread)

    def _drive(self) -> None:
        # Same time-ordered script as the base class, plus stalls (the
        # base class leaves stalls to the master thread's on_tick; here
        # the counter hold *is* the stall).
        script = []
        for ev in self.plan.deaths:
            script.append((ev.at, "death", ev))
        for ev in self.plan.restarts:
            script.append((ev.at, "restart", ev))
        for ev in self.plan.spikes:
            script.append((ev.at, "spike", ev))
        for ev in self.plan.stalls:
            script.append((ev.at, "stall", ev))
        script.sort(key=lambda item: item[0])
        spike_ends: list[float] = []
        for at, kind, ev in script:
            if not self._sleep_until(at):
                break
            if kind == "death":
                self._kill(ev.worker)
            elif kind == "restart":
                self._restart(ev.worker)
            elif kind == "stall":
                self._hold_counter(ev.duration)
            elif kind == "spike":
                self._spike(ev)
                spike_ends.append(ev.at + ev.duration)
        for end in sorted(spike_ends):
            if not self._sleep_until(end):
                break
        self._stress_stop.set()

    def shutdown(self) -> None:
        super().shutdown()
        for thread in self._holds:
            thread.join(timeout=self.config.join_timeout)
        self._holds.clear()


def run_decentral(
    scheme: str,
    workload: Workload,
    n_workers: int,
    *,
    specs: Optional[Sequence[WorkerSpec]] = None,
    group_size: Optional[int] = None,
    lease: int = 8,
    collect_results: bool = True,
    mp_context: str = "fork",
    config: Optional[RuntimeConfig] = None,
    plan: Optional[FaultPlan] = None,
    time_scale: float = 1.0,
    stress_size: int = 200,
    collector=None,
    **scheme_kwargs,
) -> DecentralResult:
    """Execute ``workload`` with no master in the dispatch path.

    ``group_size`` switches on hierarchical mode: workers are grouped
    consecutively (``wid // group_size``), each group shares a local
    counter that leases ``lease`` ordinals at a time from the global
    one.  ``plan`` injects faults via
    :class:`DecentralChaosController`; plan times are wall-clock
    seconds (pre-scaled by ``time_scale`` as in ``run_chaos``).

    The merged result is bit-identical to
    ``workload.execute_serial()`` for every decentralizable scheme --
    chunk boundaries are pure functions of the fetched ordinal, so
    claim order cannot change the tiling.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if group_size is not None and not 1 <= group_size <= n_workers:
        raise ValueError(
            f"group_size must be in [1, {n_workers}], got {group_size}"
        )
    if plan is not None and plan.max_worker >= n_workers:
        raise ChaosError(
            f"fault plan targets worker {plan.max_worker} but the run "
            f"has {n_workers} workers"
        )
    if plan is not None and time_scale != 1.0:
        plan = plan.scaled(time_scale)
    specs = list(specs or [])
    while len(specs) < n_workers:
        specs.append(WorkerSpec())
    calc = make_calculator(scheme, workload.size, n_workers,
                           **scheme_kwargs)
    obs = _resolve_collector(collector)
    n = calc.n_chunks  # warms the ordinal table before pickling
    base = config or RuntimeConfig.from_env()
    config = dataclasses.replace(
        base, poll_timeout=min(base.poll_timeout, 0.25)
    )
    workdir = tempfile.mkdtemp(prefix="repro-decentral-")
    try:
        counter_path = os.path.join(workdir, "counter")
        SharedCounter.create(counter_path, 0)
        group_paths: Optional[list[str]] = None
        if group_size is not None:
            n_groups = -(-n_workers // group_size)
            group_paths = []
            for g in range(n_groups):
                path = os.path.join(workdir, f"group-{g:03d}")
                LeasedCounter.create(
                    path, SharedCounter(counter_path), lease, n
                )
                group_paths.append(path)

        ctx = mp.get_context(mp_context)
        controller: Optional[DecentralChaosController] = None
        procs: list[mp.process.BaseProcess] = []
        wall0 = time.perf_counter()
        if n > 0:
            if plan is not None:
                controller = DecentralChaosController(
                    plan, ctx, workload, specs, config, calc,
                    counter_path, group_paths, group_size, lease,
                    workdir, collect_results, stress_size=stress_size,
                    collector=collector, emit_events=bool(obs),
                )
                spawned = {}
                for wid in range(n_workers):
                    _pipe, proc = controller.spawn_worker(
                        wid, initial=True
                    )
                    spawned[wid] = proc
                t0 = time.monotonic()
                for proc in spawned.values():
                    proc.start()
                controller.start(t0, spawned)
            else:
                for wid in range(n_workers):
                    counter = _make_worker_counter(
                        counter_path, group_paths, wid, group_size,
                        lease, n,
                    )
                    shard = os.path.join(
                        workdir, f"shard-{wid:03d}-00.pkl"
                    )
                    proc = ctx.Process(
                        target=decentral_worker_main,
                        args=(wid, workload, calc, counter, shard),
                        kwargs={
                            "spec": specs[wid],
                            "collect_results": collect_results,
                            "emit_events": bool(obs),
                        },
                        daemon=True,
                    )
                    procs.append(proc)
                for proc in procs:
                    proc.start()
            poll = min(config.poll_timeout, 0.02)
            try:
                while True:
                    if controller is not None:
                        controller.admissions()  # count restarts in
                        procs = controller.processes
                    if not any(p.is_alive() for p in procs) and (
                        controller is None
                        or not controller.expects_more()
                    ):
                        break
                    time.sleep(poll)
            finally:
                if controller is not None:
                    controller.shutdown()
                for proc in (
                    controller.processes if controller else procs
                ):
                    proc.join(timeout=config.join_timeout)
                    if proc.is_alive():  # pragma: no cover - hang guard
                        proc.terminate()
        elapsed = time.perf_counter() - wall0

        # -- merge: dedupe by ordinal, then repair the holes ------------
        completed: dict[int, tuple[int, int, int, object]] = {}
        stats: dict[int, WorkerStats] = {}
        global_ops = 0
        local_ops = 0
        #: result events deduped by ordinal (first wins), in lockstep
        #: with the chunk dedup: the same shard scan order decides both.
        result_events: dict[int, ObsEvent] = {}
        for name in sorted(os.listdir(workdir)):
            if not name.startswith("shard-"):
                continue
            for record in _read_shard(os.path.join(workdir, name)):
                if record[0] == "chunk":
                    _tag, index, start, stop, payload = record
                    completed.setdefault(
                        index, (int(name[6:9]), start, stop, payload)
                    )
                elif record[0] == "stats":
                    _tag, wid, wstats, gops, lops = record
                    agg = stats.setdefault(wid, WorkerStats())
                    agg.compute_seconds += wstats.compute_seconds
                    agg.wait_seconds += wstats.wait_seconds
                    agg.chunks += wstats.chunks
                    agg.iterations += wstats.iterations
                    global_ops += gops
                    local_ops += lops
                elif record[0] == "event":
                    _tag, index, evd = record
                    ev = ObsEvent.from_dict(evd)
                    if ev.kind == "result":
                        result_events.setdefault(index, ev)
                    elif obs:
                        obs.emit(ev)
        missing = [i for i in range(n) if i not in completed]
        if obs:
            for index in sorted(completed):
                ev = result_events.get(index)
                if ev is None:
                    # Chunk record landed but the worker was killed
                    # before its result event: synthesize one at merge
                    # time so the stream still covers the interval.
                    wid_, start, stop, _payload = completed[index]
                    ev = ObsEvent(
                        "result", _SRC, time.perf_counter() - wall0,
                        wid_, start=start, stop=stop,
                        wall=time.time(), detail="merge",
                    )
                obs.emit(ev)
        for index in missing:
            start, stop = calc.interval(index)
            payload = (
                workload.execute(start, stop) if collect_results
                else None
            )
            completed[index] = (REPAIR_LANE, start, stop, payload)
            if obs:
                # The repair pass runs in the parent after the join;
                # both events carry the same post-run timestamp.
                t_rep = time.perf_counter() - wall0
                obs.emit(ObsEvent(
                    "repair", _SRC, t_rep, REPAIR_LANE,
                    start=start, stop=stop, wall=time.time(),
                    detail="hole",
                ))
                obs.emit(ObsEvent(
                    "result", _SRC, t_rep, REPAIR_LANE,
                    start=start, stop=stop, wall=time.time(),
                    detail="repair",
                ))
        chunks = [
            (completed[i][0], completed[i][1], completed[i][2])
            for i in sorted(completed)
        ]
        results = None
        if collect_results:
            results = assemble_results(
                [(completed[i][1], completed[i][3])
                 for i in sorted(completed)]
            )
        return DecentralResult(
            scheme=calc.scheme,
            elapsed=elapsed,
            results=results,
            stats=stats,
            chunks=chunks,
            n_chunks=n,
            global_ops=global_ops,
            local_ops=local_ops,
            recovered=len(missing),
            group_size=group_size,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
