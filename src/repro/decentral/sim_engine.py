"""Discrete-event contention model of the shared-counter substrate.

The master--slave engine serializes every dispatch behind a FIFO
master server (``master_service`` per request) plus the master's NIC.
Here the serialized resource is the *counter*: one atomic fetch-and-add
of configurable ``atomic_op_cost`` per claim -- typically two to three
orders of magnitude below a master service time, which is the entire
argument of the Distributed Chunk Calculation Approach.  The engine
makes "master service time vs counter contention" a reproducible
sweep (see ``repro-experiments decentral-sweep``).

Per worker cycle:

1. **claim send** -- occupies the worker's link for
   ``latency + request_bytes/bandwidth`` (shared segments contend as
   in the master engine);
2. **counter access** -- waits for the counter to be free, then holds
   it for ``atomic_op_cost``; in hierarchical mode the group-local
   counter (``local_op_cost``) is tried first and only lease refills
   touch the global one;
3. **return leg** -- ``latency + reply_bytes/bandwidth`` back (the
   fetched ordinal);
4. **compute** -- the worker derives ``interval(ordinal)`` locally
   (pure :mod:`~repro.decentral.calc` arithmetic, charged at zero --
   it is nanoseconds of integer math) and executes under its load
   trace; results are durable at completion (the runtime's shard
   write), so ``T_p`` is the last chunk *completion*, with no
   result-collection phase on the critical path.

Accounting mirrors the master engine: ``t_com`` is link occupancy,
``t_wait`` is counter queueing plus terminal idling, ``t_comp`` is
execution time, and the same ``SimResult`` comes back, so
:func:`repro.verify.audit_sim`, :mod:`repro.batch`, and the analysis
tools work unchanged.

Fault semantics (``chaos=FaultPlan``) track the master engine with two
decentral twists:

* a **stall** freezes the *counter*, not a master: claims queue behind
  the hold (the runtime analog holds the counter file's lock);
* ordinals lost to a death go to a scavenging list that live workers
  drain on their next claim -- in-band recovery, unlike the real
  runtime's end-of-run repair pass, because a simulated trace must
  cover every iteration to be auditable at all (the runtime's merged
  trace covers them via repair instead).  A dead *group* has its
  unclaimed lease remainder scavenged the same way.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Optional, Union

import numpy as np

from ..core.base import SchemeError
from ..obs import ObsEvent
from ..obs import resolve as _resolve_collector
from ..workloads import Workload
from ..simulation import fastpath
from ..simulation.cluster import ClusterSpec, NodeSpec
from ..simulation.engine import _overlay_load_spikes
from ..simulation.events import EventQueue, SimulationError
from ..simulation.loadgen import integrate_compute
from ..simulation.metrics import ChunkRecord, SimResult, WorkerMetrics
from .calc import ChunkCalculator, make_calculator

__all__ = ["DecentralSimulation", "simulate_decentral"]

#: Event-source tag for the unified observability stream.
_SRC = "sim.decentral"

#: Default cost of one fetch-and-add on the shared counter (seconds).
#: An order-of-magnitude figure for a remote atomic (RMA fetch-op /
#: flock'd read-modify-write): ~20 us, vs the paper-calibrated master
#: service times of 0.2-1 ms.
DEFAULT_ATOMIC_OP_COST = 2e-5


@dataclasses.dataclass
class _DWorkerState(object):
    index: int
    node: NodeSpec
    metrics: WorkerMetrics
    #: ordinal claimed but not yet completed (None when idle).
    pending_index: Optional[int] = None
    #: the in-flight chunk's record (None until compute begins).
    pending_record: Optional[ChunkRecord] = None
    done: bool = False
    dead: bool = False
    epoch: int = 0


class DecentralSimulation(object):
    """One simulated master-less run; construct and :meth:`run` once."""

    def __init__(
        self,
        calc: ChunkCalculator,
        workload: Workload,
        cluster: ClusterSpec,
        atomic_op_cost: float = DEFAULT_ATOMIC_OP_COST,
        local_op_cost: Optional[float] = None,
        group_size: Optional[int] = None,
        lease: int = 8,
        collect_results: bool = False,
        chaos=None,
        collector=None,
        fast: object = "auto",
    ) -> None:
        self.obs = _resolve_collector(collector)
        # Cached truthiness: the hot loops test this plain bool
        # (~5x cheaper than NullCollector.__bool__ per gate);
        # the collector never changes after construction.
        self.observing = bool(self.obs)
        #: fast-path policy: ``"auto"`` (take it when eligible),
        #: ``True`` (require it) or ``False`` (always run the DES).
        self.fast = fast
        if calc.workers != cluster.size:
            raise SimulationError(
                f"calculator built for {calc.workers} workers but "
                f"cluster has {cluster.size}"
            )
        if calc.total != workload.size:
            raise SimulationError(
                f"calculator covers {calc.total} iterations but "
                f"workload has {workload.size}"
            )
        if atomic_op_cost < 0:
            raise SimulationError(
                f"atomic_op_cost must be >= 0, got {atomic_op_cost}"
            )
        if group_size is not None and not 1 <= group_size <= cluster.size:
            raise SimulationError(
                f"group_size must be in [1, {cluster.size}], got "
                f"{group_size}"
            )
        if lease < 1:
            raise SimulationError(f"lease must be >= 1, got {lease}")
        self.chaos = chaos
        if chaos is not None:
            if chaos.max_worker >= cluster.size:
                raise SimulationError(
                    f"fault plan targets worker {chaos.max_worker} but "
                    f"cluster has {cluster.size} nodes"
                )
            cluster = _overlay_load_spikes(cluster, chaos)
        self.calc = calc
        self.workload = workload
        self.cluster = cluster
        self.atomic_op_cost = float(atomic_op_cost)
        self.local_op_cost = float(
            atomic_op_cost if local_op_cost is None else local_op_cost
        )
        self.group_size = group_size
        self.lease = int(lease)
        self.collect_results = collect_results
        self.queue = EventQueue()
        self.workers = [
            _DWorkerState(
                index=i, node=node, metrics=WorkerMetrics(name=node.name)
            )
            for i, node in enumerate(cluster.nodes)
        ]
        self._n = calc.n_chunks
        self._next = 0  # the global scheduled-chunk counter
        self._counter_free = 0.0
        self._global_ops = 0
        self._local_ops = 0
        #: per-group (next_local, lease_end) and local-counter busy-until.
        self._lease_state: dict[int, tuple[int, int]] = {}
        self._group_free: dict[int, float] = {}
        #: ordinals lost to deaths, scavenged FIFO by live claimers.
        self._lost: collections.deque[int] = collections.deque()
        self._chunks: list[ChunkRecord] = []
        self._results: list[tuple[int, np.ndarray]] = []
        self._parked: list[_DWorkerState] = []
        self._segment_free: dict[str, float] = {}
        self._death_schedule: dict[int, list[float]] = {}
        self._pending_failers: set[int] = set()
        self._future_restarts = 0
        self._message_faults: dict[int, list[tuple[float, str, float]]] = {}
        if group_size is not None:
            for g in range(-(-cluster.size // group_size)):
                self._lease_state[g] = (0, 0)
                self._group_free[g] = 0.0

    # -- helpers -----------------------------------------------------------

    def _group_of(self, state: _DWorkerState) -> int:
        assert self.group_size is not None
        return state.index // self.group_size

    def _acquire_segment(
        self, node: NodeSpec, t: float, duration: float
    ) -> float:
        if node.segment is None:
            return t
        free = self._segment_free.get(node.segment, 0.0)
        start = max(t, free)
        self._segment_free[node.segment] = start + duration
        return start

    def _alive_action(self, state: _DWorkerState, fn, *args):
        epoch = state.epoch

        def action(_event) -> None:
            if state.dead or state.epoch != epoch:
                return
            fn(state, *args)

        return action

    def _pop_message_fault(
        self, state: _DWorkerState, t: float
    ) -> Optional[tuple[float, str, float]]:
        faults = self._message_faults.get(state.index)
        if not faults or faults[0][0] > t:
            return None
        return faults.pop(0)

    def _global_access(self, state: _DWorkerState, at: float) -> float:
        """Wait for, then occupy, the global counter; returns end time."""
        start = max(at, self._counter_free)
        state.metrics.t_wait += start - at
        end = start + self.atomic_op_cost
        self._counter_free = end
        self._global_ops += 1
        if self.observing:
            self.obs.emit(ObsEvent(
                "fetch-add", _SRC, at, state.index,
                value=start - at, detail="global",
            ))
        return end

    def _allocate(
        self, state: _DWorkerState, arrival: float
    ) -> tuple[Optional[int], float]:
        """Serve one claim arriving at ``arrival``.

        Returns ``(ordinal, access_end)``; ordinal None means the loop
        is exhausted from this worker's point of view (the dry fetch
        still costs a counter access, as in the real runtime).
        """
        if self.group_size is None:
            if self._lost:
                return self._lost.popleft(), \
                    self._global_access(state, arrival)
            if self._next < self._n:
                index = self._next
                self._next += 1
                return index, self._global_access(state, arrival)
            return None, self._global_access(state, arrival)
        # Hierarchical: group-local counter first; refills, scavenges
        # and dry probes nest a global access inside the local hold.
        g = self._group_of(state)
        local_start = max(arrival, self._group_free[g])
        state.metrics.t_wait += local_start - arrival
        local_end = local_start + self.local_op_cost
        self._group_free[g] = local_end
        if self.observing:
            self.obs.emit(ObsEvent(
                "fetch-add", _SRC, arrival, state.index,
                value=local_start - arrival, detail="local",
            ))
        nxt, lease_end = self._lease_state[g]
        if nxt < min(lease_end, self._n):
            self._lease_state[g] = (nxt + 1, lease_end)
            self._local_ops += 1
            return nxt, local_end
        if self._lost:
            index = self._lost.popleft()
            end = self._global_access(state, local_end)
            self._group_free[g] = end
            return index, end
        if self._next < self._n:
            base = self._next
            self._next += self.lease
            self._lease_state[g] = (base + 1, base + self.lease)
            end = self._global_access(state, local_end)
            self._group_free[g] = end
            return base, end
        end = self._global_access(state, local_end)
        self._group_free[g] = end
        return None, end

    # -- protocol events ---------------------------------------------------

    def _claim(self, state: _DWorkerState) -> None:
        if state.dead:
            return
        t = self.queue.now
        fault = self._pop_message_fault(state, t)
        if fault is not None:
            _at, kind, extra = fault
            state.metrics.t_wait += extra
            if self.observing:
                self.obs.emit(ObsEvent(
                    "fault", _SRC, t, state.index, value=extra,
                    detail=kind,
                ))
            self.queue.schedule_at(
                t + extra,
                self._alive_action(state, self._claim),
                kind=f"chaos-{kind}",
            )
            return
        if self.observing:
            self.obs.emit(ObsEvent("request", _SRC, t, state.index))
        node = state.node
        tx = node.transfer_time(self.cluster.request_bytes)
        tx_start = self._acquire_segment(node, t, tx)
        state.metrics.t_wait += tx_start - t
        state.metrics.t_com += tx
        index, access_end = self._allocate(state, tx_start + tx)
        if index is None and self._work_may_reappear():
            # A failing peer holds an incomplete ordinal that may yet
            # land on the scavenging list: retry the fetch when a
            # death resolves the question (see _drain_parked).
            if self.observing:
                self.obs.emit(ObsEvent(
                    "park", _SRC, access_end, state.index,
                ))
            self._parked.append(state)
            return
        back = node.transfer_time(self.cluster.reply_bytes)
        back_start = self._acquire_segment(node, access_end, back)
        state.metrics.t_wait += back_start - access_end
        state.metrics.t_com += back
        resume = back_start + back
        if index is None:
            self.queue.schedule_at(
                resume,
                self._alive_action(state, self._worker_terminate),
                kind="terminate",
            )
            return
        if self.observing:
            a_start, a_stop = self.calc.interval(index)
            self.obs.emit(ObsEvent(
                "assign", _SRC, access_end, state.index,
                start=a_start, stop=a_stop,
                stage=self.calc.stage_of(index),
            ))
        state.pending_index = index
        self.queue.schedule_at(
            resume,
            self._alive_action(state, self._begin_compute, index),
            kind="compute",
        )

    def _begin_compute(self, state: _DWorkerState, index: int) -> None:
        t = self.queue.now
        start, stop = self.calc.interval(index)
        cost = self.workload.chunk_cost(start, stop)
        finish = integrate_compute(t, cost, state.node.speed,
                                   state.node.load)
        if self.observing:
            self.obs.emit(ObsEvent(
                "compute", _SRC, t, state.index, start=start, stop=stop,
                stage=self.calc.stage_of(index), value=finish - t,
            ))
        state.metrics.t_comp += finish - t
        state.metrics.chunks += 1
        state.metrics.iterations += stop - start
        record = ChunkRecord(
            worker=state.index,
            start=start,
            stop=stop,
            assigned_at=t,
            completed_at=finish,
            stage=self.calc.stage_of(index),
            acp=None,
        )
        self._chunks.append(record)
        state.pending_record = record
        if self.collect_results:
            self._results.append(
                (start, self.workload.execute(start, stop))
            )
        self.queue.schedule_at(
            finish,
            self._alive_action(state, self._finish_chunk),
            kind="chunk-durable",
        )

    def _finish_chunk(self, state: _DWorkerState) -> None:
        # The chunk is durable from here on (shard write in the real
        # runtime): a later death cannot lose it.
        if self.observing and state.pending_record is not None:
            record = state.pending_record
            self.obs.emit(ObsEvent(
                "result", _SRC, self.queue.now, state.index,
                start=record.start, stop=record.stop,
            ))
        state.pending_index = None
        state.pending_record = None
        self._claim(state)

    def _worker_terminate(self, state: _DWorkerState) -> None:
        state.done = True
        state.metrics.finished_at = self.queue.now
        if self.observing:
            self.obs.emit(ObsEvent(
                "terminate", _SRC, self.queue.now, state.index,
            ))

    # -- failure injection -------------------------------------------------

    def _work_may_reappear(self) -> bool:
        return any(
            s.index in self._pending_failers and s.pending_index is not None
            for s in self.workers
        )

    def _reclaim_lease(self, g: int) -> None:
        nxt, lease_end = self._lease_state[g]
        for index in range(nxt, min(lease_end, self._n)):
            self._lost.append(index)
        self._lease_state[g] = (0, 0)

    def _worker_die(self, state: _DWorkerState) -> None:
        t = self.queue.now
        schedule = self._death_schedule.get(state.index)
        if schedule:
            schedule.pop(0)
        if not schedule:
            self._pending_failers.discard(state.index)
        if state.dead or state.done:
            self._drain_parked()
            return
        state.dead = True
        state.done = True
        state.epoch += 1
        state.metrics.finished_at = t
        if self.observing:
            self.obs.emit(ObsEvent(
                "fault", _SRC, t, state.index, detail="death",
            ))
        if state.pending_index is not None:
            record = state.pending_record
            if record is not None:
                # Died mid-chunk: the record never became durable.
                state.metrics.t_comp -= record.completed_at - t
                state.metrics.chunks -= 1
                state.metrics.iterations -= record.stop - record.start
                self._chunks.remove(record)
                if self.collect_results:
                    for i in range(len(self._results) - 1, -1, -1):
                        if self._results[i][0] == record.start:
                            del self._results[i]
                            break
            self._lost.append(state.pending_index)
            state.pending_index = None
            state.pending_record = None
        if self.group_size is not None:
            g = self._group_of(state)
            members = [
                s for s in self.workers if self._group_of(s) == g
            ]
            if all(s.dead for s in members):
                # Coordinator-group death: the unclaimed remainder of
                # the group's lease would otherwise leak.
                self._reclaim_lease(g)
        alive = [s for s in self.workers if not s.dead]
        if not alive and self._future_restarts == 0 \
                and (self._lost or self._next < self._n):
            raise SimulationError(
                "every worker died with chunk ordinals outstanding; "
                "the loop cannot complete"
            )
        self._drain_parked()

    def _worker_restart(self, state: _DWorkerState) -> None:
        self._future_restarts -= 1
        if not state.dead:
            return
        state.dead = False
        state.done = False
        state.pending_index = None
        state.pending_record = None
        if self.observing:
            self.obs.emit(ObsEvent(
                "restart", _SRC, self.queue.now, state.index,
            ))
        self._claim(state)

    def _counter_stall(self, duration: float) -> None:
        """The global counter is held for ``duration`` from now."""
        if self.observing:
            self.obs.emit(ObsEvent(
                "fault", _SRC, self.queue.now, value=float(duration),
                detail="stall",
            ))
        self._counter_free = max(
            self._counter_free, self.queue.now + float(duration)
        )

    def _drain_parked(self) -> None:
        parked, self._parked = self._parked, []
        for state in parked:
            if state.dead:
                continue
            # Retry the fetch: either scavengeable work appeared, or
            # the exhaustion is now final and the claim terminates.
            self.queue.schedule(
                0.0,
                self._alive_action(state, self._claim),
                kind="unpark",
            )

    def _schedule_faults(self) -> None:
        deaths: dict[int, list[float]] = {}
        for s in self.workers:
            if s.node.fails_at is not None:
                deaths.setdefault(s.index, []).append(
                    float(s.node.fails_at)
                )
        if self.chaos is not None:
            for ev in self.chaos.events:
                kind = ev.kind
                if kind == "death":
                    deaths.setdefault(ev.worker, []).append(float(ev.at))
                elif kind == "restart":
                    self._future_restarts += 1
                    self.queue.schedule_at(
                        float(ev.at),
                        lambda _e, s=self.workers[ev.worker]:
                            self._worker_restart(s),
                        kind="chaos-restart",
                    )
                elif kind == "stall":
                    self.queue.schedule_at(
                        float(ev.at),
                        lambda _e, d=float(ev.duration):
                            self._counter_stall(d),
                        kind="chaos-stall",
                    )
                elif kind in ("delay", "loss"):
                    self._message_faults.setdefault(ev.worker, [])
            for idx in self._message_faults:
                self._message_faults[idx] = self.chaos.message_faults(idx)
        for idx, times in deaths.items():
            times.sort()
            self._death_schedule[idx] = times
            self._pending_failers.add(idx)
            for at in times:
                self.queue.schedule_at(
                    at,
                    lambda _e, s=self.workers[idx]: self._worker_die(s),
                    kind="death",
                )

    # -- run ---------------------------------------------------------------

    def run(self) -> SimResult:
        # Analytic fast path: fault-free deterministic runs skip the
        # DES entirely (bit-identical; see repro.simulation.fastpath).
        if self.fast is not False:
            reason = fastpath.decentral_fast_reason(self)
            if reason is None and fastpath.fast_enabled():
                return fastpath.run_fast_decentral(self)
            if self.fast is True:
                raise SimulationError(
                    f"fast=True but the run is not fast-path eligible: "
                    f"{reason or 'disabled via ' + fastpath.ENV_FAST}"
                )
        self._schedule_faults()
        for state in self.workers:
            self._claim(state)
        self.queue.run()
        t_p = max((c.completed_at for c in self._chunks), default=0.0)
        for state in self.workers:
            if state.dead:
                continue
            tracked = state.metrics.busy
            if tracked < t_p:
                state.metrics.t_wait += t_p - tracked
        assigned = sum(c.size for c in self._chunks)
        if assigned != self.workload.size:
            raise SimulationError(
                f"scheduling leak: assigned {assigned} of "
                f"{self.workload.size} iterations"
            )
        result = SimResult(
            scheme=self.calc.scheme,
            workers=[s.metrics for s in self.workers],
            t_p=t_p,
            chunks=self._chunks,
            rederivations=0,
            events=self.queue.processed,
        )
        if self.collect_results:
            self._results.sort(key=lambda pair: pair[0])
            result.results = (
                np.concatenate([r for _, r in self._results])
                if self._results
                else np.zeros(0)
            )
        return result

    @property
    def counter_ops(self) -> tuple[int, int]:
        """(global, group-local) counter accesses performed so far."""
        return self._global_ops, self._local_ops


def simulate_decentral(
    scheme: Union[str, ChunkCalculator],
    workload: Workload,
    cluster: ClusterSpec,
    atomic_op_cost: float = DEFAULT_ATOMIC_OP_COST,
    local_op_cost: Optional[float] = None,
    group_size: Optional[int] = None,
    lease: int = 8,
    collect_results: bool = False,
    chaos=None,
    collector=None,
    fast: object = "auto",
    **scheme_kwargs,
) -> SimResult:
    """Simulate ``scheme`` on ``cluster`` with no master in the path.

    ``scheme`` is a decentralizable registry name (``"TSS"``,
    ``"CSS(32)"``, ...; see
    :data:`repro.decentral.DECENTRAL_SCHEMES`) or a ready
    :class:`~repro.decentral.calc.ChunkCalculator`.  The cluster's
    ``master_service``/``master_bandwidth`` fields are ignored --
    there is no master; ``atomic_op_cost`` (and, hierarchically,
    ``group_size``/``lease``/``local_op_cost``) replace them.
    """
    if isinstance(scheme, ChunkCalculator):
        calc = scheme
    else:
        calc = make_calculator(
            scheme, workload.size, cluster.size, **scheme_kwargs
        )
    sim = DecentralSimulation(
        calc,
        workload,
        cluster,
        atomic_op_cost=atomic_op_cost,
        local_op_cost=local_op_cost,
        group_size=group_size,
        lease=lease,
        collect_results=collect_results,
        chaos=chaos,
        collector=collector,
        fast=fast,
    )
    return sim.run()
