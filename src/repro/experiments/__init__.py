"""Paper experiments: one module per table/figure plus the CLI runner.

See DESIGN.md's experiment index for the table/figure -> module map and
EXPERIMENTS.md for paper-vs-measured results.
"""

from . import (
    ablations,
    figures,
    parity,
    replicate,
    table1,
    table2,
    table3,
    validation,
    windows,
)
from .config import (
    FAST_SLOW_RATIO,
    OVERLOAD_Q,
    overload_pattern,
    paper_cluster,
    paper_workload,
    speedup_configuration,
)

__all__ = [
    "ablations",
    "replicate",
    "validation",
    "windows",
    "parity",
    "figures",
    "table1",
    "table2",
    "table3",
    "FAST_SLOW_RATIO",
    "OVERLOAD_Q",
    "paper_workload",
    "paper_cluster",
    "speedup_configuration",
    "overload_pattern",
]
