"""Ablation experiments over the design knobs DESIGN.md calls out.

Each sweep returns structured rows and has a ``report()`` twin that
renders a text table; the CLI exposes them as
``repro-experiments ablations``.  The pytest-benchmark versions (with
timings) live in ``benchmarks/test_bench_ablations.py``; these are the
programmatic/engineering entry points.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..analysis import format_matrix
from ..batch import SimJob, run_batch
from ..core.acp import AcpModel
from ..simulation import SimResult
from ..workloads import MandelbrotWorkload, ReorderedWorkload, Workload
from .config import overload_pattern, paper_cluster, paper_workload

__all__ = [
    "AblationRow",
    "acp_scale_sweep",
    "sampling_sweep",
    "css_chunk_sweep",
    "alpha_sweep",
    "master_service_sweep",
    "report",
]


@dataclasses.dataclass(frozen=True)
class AblationRow(object):
    """One sweep point: the knob value and the run outcomes."""

    knob: str
    value: object
    t_p: float
    chunks: int
    imbalance: float
    idle_pes: int = 0

    def cells(self) -> list[str]:
        return [
            f"{self.t_p:.1f}",
            str(self.chunks),
            f"{self.imbalance:.2f}",
            str(self.idle_pes),
        ]


def _row(knob: str, value: object, result: SimResult) -> AblationRow:
    return AblationRow(
        knob=knob,
        value=value,
        t_p=result.t_p,
        chunks=result.total_chunks,
        imbalance=result.comp_imbalance(),
        idle_pes=sum(1 for w in result.workers if w.iterations == 0),
    )


def _sweep(
    knob: str,
    jobs: Sequence[tuple[object, SimJob]],
    n_jobs: int = 1,
) -> list[AblationRow]:
    """Run one sweep's (value, job) grid through the batch layer."""
    results = run_batch([job for _v, job in jobs], n_jobs=n_jobs)
    return [
        _row(knob, value, result)
        for (value, _job), result in zip(jobs, results)
    ]


def acp_scale_sweep(
    workload: Optional[Workload] = None,
    scales: Sequence[int] = (1, 10, 100),
    n_jobs: int = 1,
) -> list[AblationRow]:
    """Paper Sec. 5.2-I: the ACP scaling constant, under overload.

    ``scale=1`` is classic DTSS (integer division): the overloaded slow
    PEs floor to ACP 0 and idle.  ``scale=10`` (the paper's fix) uses
    the whole cluster.  Very large scales make ``A`` comparable to
    ``I`` and collapse chunk granularity.
    """
    wl = workload or paper_workload(width=1000, height=500)
    jobs = [
        (scale, SimJob(
            scheme="DTSS", workload=wl,
            cluster=paper_cluster(wl, overloaded=overload_pattern(8)),
            params=dict(acp_model=AcpModel(scale=scale)),
            tag=f"ablation/acp_scale={scale}",
        ))
        for scale in scales
    ]
    return _sweep("acp_scale", jobs, n_jobs=n_jobs)


def sampling_sweep(
    width: int = 1000,
    height: int = 500,
    sfs: Sequence[int] = (1, 2, 4, 8, 16),
    scheme: str = "TSS",
    n_jobs: int = 1,
) -> list[AblationRow]:
    """Paper Sec. 2.1: the loop-reordering sampling frequency."""
    inner = MandelbrotWorkload(width, height, max_iter=64)
    inner.costs()
    jobs = []
    for sf in sfs:
        wl = ReorderedWorkload(inner, sf=sf) if sf > 1 else inner
        jobs.append((sf, SimJob(
            scheme=scheme, workload=wl, cluster=paper_cluster(wl),
            tag=f"ablation/sf={sf}",
        )))
    return _sweep("S_f", jobs, n_jobs=n_jobs)


def css_chunk_sweep(
    workload: Optional[Workload] = None,
    ks: Sequence[int] = (1, 4, 16, 64, 256),
    n_jobs: int = 1,
) -> list[AblationRow]:
    """CSS's k: the communication/imbalance trade-off (paper Sec. 2.2)."""
    wl = workload or paper_workload(width=1000, height=500)
    jobs = [
        (k, SimJob(
            scheme=f"CSS({k})", workload=wl, cluster=paper_cluster(wl),
            tag=f"ablation/k={k}",
        ))
        for k in ks
    ]
    return _sweep("k", jobs, n_jobs=n_jobs)


def alpha_sweep(
    workload: Optional[Workload] = None,
    alphas: Sequence[float] = (1.5, 2.0, 3.0, 4.0),
    n_jobs: int = 1,
) -> list[AblationRow]:
    """FSS's alpha: stage shrink factor (2.0 is Hummel's suboptimal
    robust choice, which the paper adopts)."""
    wl = workload or paper_workload(width=1000, height=500)
    jobs = [
        (alpha, SimJob(
            scheme="FSS", workload=wl, cluster=paper_cluster(wl),
            params=dict(alpha=alpha), tag=f"ablation/alpha={alpha}",
        ))
        for alpha in alphas
    ]
    return _sweep("alpha", jobs, n_jobs=n_jobs)


def master_service_sweep(
    workload: Optional[Workload] = None,
    services_ms: Sequence[float] = (0.1, 1.0, 10.0, 100.0),
    scheme: str = "GSS",
    n_jobs: int = 1,
) -> list[AblationRow]:
    """Master request-service time: the contention behind the p=2 dip."""
    wl = workload or paper_workload(width=1000, height=500)
    jobs = []
    for ms in services_ms:
        cluster = paper_cluster(wl)
        cluster.master_service = ms / 1000.0
        jobs.append((ms, SimJob(
            scheme=scheme, workload=wl, cluster=cluster,
            tag=f"ablation/service_ms={ms}",
        )))
    return _sweep("service_ms", jobs, n_jobs=n_jobs)


def report(workload: Optional[Workload] = None, n_jobs: int = 1) -> str:
    """All sweeps, rendered as text tables."""
    wl = workload or paper_workload(width=1000, height=500)
    sections = [
        ("ACP scale (DTSS, nondedicated) -- paper Sec. 5.2-I",
         acp_scale_sweep(wl, n_jobs=n_jobs)),
        ("Sampling frequency S_f (TSS)", sampling_sweep(n_jobs=n_jobs)),
        ("CSS chunk size k", css_chunk_sweep(wl, n_jobs=n_jobs)),
        ("FSS alpha", alpha_sweep(wl, n_jobs=n_jobs)),
        ("Master service time (GSS)",
         master_service_sweep(wl, n_jobs=n_jobs)),
    ]
    parts = []
    headers = ["T_p (s)", "chunks", "imbalance", "idle PEs"]
    for title, rows in sections:
        parts.append(title)
        parts.append(
            format_matrix(
                headers,
                [r.cells() for r in rows],
                [f"{r.knob}={r.value}" for r in rows],
            )
        )
        parts.append("")
    return "\n".join(parts)
