"""Adaptive meta-scheduling vs the fixed schemes it chooses from.

The paper picks one scheme per run and its own tables show the winner
moving with the workload shape and the cluster's dedication; the
adaptive meta-scheduler (:mod:`repro.adaptive`) instead switches and
retunes *during* the loop.  This artifact quantifies the claim that
matters for such a policy: **adaptive never loses badly** -- across a
scenario matrix (clean / CPU-load spikes / full chaos plan, uniform and
peaked workloads) its makespan stays within a few percent of the best
fixed candidate *of that cell*, without knowing in advance which
candidate that is.

Every cell is an independent :class:`repro.batch.SimJob` (so ``--jobs``
fans the grid out), every adaptive run is re-audited through
:func:`repro.verify.audit_adaptive` (exactly-once tiling across scheme
switches, per-stage cut-point conformance), and the clean-cell decision
logs are printed so the report explains *why* the policy converged
where it did.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis import format_matrix
from ..batch import SimJob, run_batch
from ..chaos import FaultPlan
from ..core import make
from ..simulation import ClusterSpec, NodeSpec, simulate
from ..verify import audit_adaptive
from ..workloads import GaussianPeakWorkload, UniformWorkload

__all__ = ["FIXED_SCHEMES", "ADAPTIVE_SPEC", "sweep", "report"]

#: The fixed candidates adaptive competes against (and chooses from).
FIXED_SCHEMES: tuple[str, ...] = ("TSS", "FSS", "GSS", "TFSS")
#: The adaptive spec under test: same candidate set, ~8 stages.
ADAPTIVE_SPEC = "adaptive:TSS+FSS+GSS+TFSS@8"
DEFAULT_WORKERS = 8
DEFAULT_TOTAL = 2048
#: Scenario -> FaultPlan factory kwargs (None = fault-free).
SCENARIOS: dict[str, Optional[dict]] = {
    "clean": None,
    "spike": dict(deaths=0, delays=0, losses=0, stalls=0, spikes=3),
    "chaos": dict(),
}


def _cluster(p: int) -> ClusterSpec:
    """Alternating fast/slow nodes in the testbed's ~440:166 ratio."""
    nodes = [
        NodeSpec(
            name=f"pe{i}",
            speed=4.4e4 if i % 2 == 0 else 1.66e4,
            latency=1e-4,
            bandwidth=1.25e6,
        )
        for i in range(p)
    ]
    return ClusterSpec(nodes=nodes, master_service=2e-4)


def _workloads(total: int) -> dict[str, object]:
    return {
        "uniform": UniformWorkload(total, unit=100.0),
        "peak": GaussianPeakWorkload(total, amplitude=400.0, floor=50.0),
    }


def sweep(
    workers: int = DEFAULT_WORKERS,
    total: int = DEFAULT_TOTAL,
    seed: int = 0,
    n_jobs: int = 1,
) -> dict[str, dict[str, dict[str, float]]]:
    """T_p for every (workload, scenario, scheme) cell.

    Returns ``{workload: {scenario: {scheme: t_p}}}`` with the adaptive
    spec keyed as ``"adaptive"``.  Fault plans are seeded from ``seed``
    and scaled to half the clean TSS makespan of the cell's workload,
    so every scheme in a row faces the *same* fault times.
    """
    cluster = _cluster(workers)
    wls = _workloads(total)
    schemes = list(FIXED_SCHEMES) + [ADAPTIVE_SPEC]
    jobs: list[SimJob] = []
    index: list[tuple[str, str, str]] = []
    for wl_name, wl in wls.items():
        ref = simulate("TSS", wl, cluster).t_p
        for scen, plan_kwargs in SCENARIOS.items():
            params = {}
            if plan_kwargs is not None:
                plan = FaultPlan.random(
                    seed, workers=workers, horizon=1.0, **plan_kwargs
                )
                params = {"chaos": plan.scaled(0.5 * ref)}
            for scheme in schemes:
                label = (
                    "adaptive" if scheme == ADAPTIVE_SPEC else scheme
                )
                jobs.append(SimJob(
                    scheme=scheme, workload=wl, cluster=cluster,
                    params=dict(params),
                    tag=f"adaptive-sweep/{wl_name}/{scen}/{label}",
                ))
                index.append((wl_name, scen, label))
    results = run_batch(jobs, n_jobs=n_jobs)
    out: dict[str, dict[str, dict[str, float]]] = {}
    for (wl_name, scen, label), res in zip(index, results):
        out.setdefault(wl_name, {}).setdefault(scen, {})[label] = res.t_p
    return out


def _audit_leg(
    wl, cluster: ClusterSpec, workers: int, seed: int
) -> tuple[str, list]:
    """One in-process adaptive run, fully audited; returns a verdict
    line and the decision log (batch jobs go through scheme strings,
    which do not expose the scheduler -- the audit needs it)."""
    scheduler = make(ADAPTIVE_SPEC, wl.size, workers, seed=seed)
    result = simulate(scheduler, wl, cluster)
    audit = audit_adaptive(
        result, scheduler, total=wl.size, workers=workers
    )
    verdict = (
        f"audit {'OK' if audit.ok else 'FAILED'} "
        f"({len(audit.checks)} checks"
        + (f"; {len(audit.violations)} violations" if not audit.ok
           else "")
        + ")"
    )
    return verdict, scheduler.decisions


def report(
    workers: int = DEFAULT_WORKERS,
    total: int = DEFAULT_TOTAL,
    seed: int = 0,
    n_jobs: int = 1,
) -> str:
    """The full artifact: matrix tables, loss ratios, audits, decisions."""
    grid = sweep(workers=workers, total=total, seed=seed, n_jobs=n_jobs)
    cluster = _cluster(workers)
    schemes = list(FIXED_SCHEMES) + ["adaptive"]
    lines = [
        "adaptive-sweep -- scheme selection and retuning during the loop",
        f"  candidates {'+'.join(FIXED_SCHEMES)}, spec "
        f"{ADAPTIVE_SPEC!r}, I={total}, p={workers} "
        f"(alternating fast/slow), fault seed {seed}",
        "",
        "T_p (s) per cell; 'vs best' = adaptive / best fixed scheme of "
        "the cell",
        "(the policy does not know the cell's winner in advance)",
    ]
    worst = 0.0
    for wl_name, by_scen in grid.items():
        rows = []
        for scen in SCENARIOS:
            cell = by_scen[scen]
            best = min(cell[s] for s in FIXED_SCHEMES)
            ratio = cell["adaptive"] / best
            worst = max(worst, ratio)
            rows.append(
                [f"{cell[s]:.3f}" for s in schemes]
                + [f"{ratio:.3f}x"]
            )
        lines.append("")
        lines.append(f"workload: {wl_name}")
        lines.append(format_matrix(
            schemes + ["vs best"], rows, list(SCENARIOS),
        ))
    lines.append("")
    lines.append(
        f"worst adaptive/best-fixed ratio over the matrix: {worst:.3f}x"
    )
    lines.append("")
    lines.append("exactly-once + cut-point audits (clean cells, "
                 "in-process):")
    for wl_name, wl in _workloads(total).items():
        verdict, decisions = _audit_leg(wl, cluster, workers, seed)
        lines.append(f"  {wl_name}: {verdict}")
        for d in decisions:
            if d.kind != "select":
                continue
            reward = "" if d.reward is None else f"  r={d.reward:.3f}"
            lines.append(
                f"    stage {d.stage}: [{d.base}, {d.base + d.size}) "
                f"{d.summary()}{reward}"
            )
    return "\n".join(lines)
