"""The paper's experimental setup, reconstructed.

Testbed (paper Sec. 5.1): one master (Sun UltraSPARC 10, 440 MHz) plus
eight slaves -- three fast (UltraSPARC 10, 440 MHz, 100 Mb/s links) and
five slow (UltraSPARC 1, 166 MHz, 10 Mb/s links).  The paper's Figure 6
caption treats fast ~= 3x slow ("The fast PEs are about 3 times faster
than slow ones"), which we adopt as the speed ratio.

Time calibration: absolute speeds are not the paper's point -- speedup
and the T_com/T_wait/T_comp decomposition are.  We pin the virtual
timescale by choosing the fast-PE speed so that a *serial dedicated run
on one fast PE* takes ``serial_seconds`` (default 60 s, which puts the
p=8 ``T_p`` values in the paper's 13-48 s ballpark).  That makes every
table comparable to the paper at any Mandelbrot window size.

Speedup configurations (paper Sec. 5.1/6.1):

====  =======================  ==========================================
p     machines                 nondedicated overload (Q=3: 2 extra procs)
====  =======================  ==========================================
1     1 fast                   the fast slave
2     1 fast + 1 slow          both
4     2 fast + 2 slow          1 fast + 1 slow
8     3 fast + 5 slow          1 fast + 3 slow
====  =======================  ==========================================

(The paper's p=2 nondedicated text says "1 fast and 1 slow slave" --
with only two slaves present, both are overloaded.)
"""

from __future__ import annotations

from ..simulation import ClusterSpec, ConstantLoad, NodeSpec
from ..workloads import MandelbrotWorkload, ReorderedWorkload, Workload

__all__ = [
    "FAST_SLOW_RATIO",
    "OVERLOAD_Q",
    "paper_workload",
    "paper_cluster",
    "speedup_configuration",
    "overload_pattern",
]

#: Fast/slow PE speed ratio (paper Fig. 6: "about 3 times faster").
FAST_SLOW_RATIO = 3.0

#: Effective run-queue length of an overloaded slave.  The paper starts
#: two matrix-add stressors per overloaded machine (nominally Q = 3),
#: but repeatedly adding 1000x1000 matrices is memory-bandwidth-bound on
#: an UltraSPARC, so the loop process's CPU share is larger than 1/3;
#: the paper's Table 2 degradation (+60..70% T_p for the staged simple
#: schemes) calibrates to an effective Q of 2.
OVERLOAD_Q = 2

#: Link speeds (paper Sec. 5.1): 100 Mb/s fast, 10 Mb/s slow.
FAST_BANDWIDTH = 1.25e7  # bytes/s
SLOW_BANDWIDTH = 1.25e6  # bytes/s
LAN_LATENCY = 1e-3  # seconds

#: Master scheduling/reply overhead per request.
MASTER_SERVICE = 1e-3  # seconds

#: Total result volume of the paper's run: 4000 x 2000 pixels at
#: 4 bytes each (~32 MB), spread over the loop's tasks by default.
PAPER_RESULT_BYTES = 4000 * 2000 * 4.0


def paper_workload(
    width: int = 4000,
    height: int = 2000,
    max_iter: int = 64,
    sf: int = 4,
) -> Workload:
    """The paper's Mandelbrot loop: ``width x height`` window, one task
    per column, reordered with sampling frequency ``sf`` (paper: 4)."""
    inner = MandelbrotWorkload(width, height, max_iter=max_iter)
    return ReorderedWorkload(inner, sf=sf) if sf > 1 else inner


def _node(
    kind: str, index: int, overloaded: bool, slow_speed: float
) -> NodeSpec:
    fast = kind == "fast"
    return NodeSpec(
        name=f"{kind}{index}",
        speed=slow_speed * FAST_SLOW_RATIO if fast else slow_speed,
        latency=LAN_LATENCY,
        bandwidth=FAST_BANDWIDTH if fast else SLOW_BANDWIDTH,
        load=ConstantLoad(OVERLOAD_Q if overloaded else 1),
        virtual_power=FAST_SLOW_RATIO if fast else 1.0,
    )


def paper_cluster(
    workload: Workload,
    n_fast: int = 3,
    n_slow: int = 5,
    overloaded: tuple[int, ...] = (),
    serial_seconds: float = 60.0,
    result_bytes_per_item: float | None = None,
) -> ClusterSpec:
    """A paper-style cluster sized to ``workload``.

    ``overloaded`` lists 0-based slave indices running the two matrix-
    add stressors (fast slaves come first).  ``result_bytes_per_item``
    defaults to the *paper-equivalent* data volume: the real experiment
    moves ``4000 x 2000`` pixels (~32 MB at 4 B each) through the
    master, so the default spreads 32 MB over ``workload.size`` tasks.
    A scaled-down window therefore keeps the paper's communication-to-
    computation balance instead of making communication artificially
    free.
    """
    if n_fast < 0 or n_slow < 0 or n_fast + n_slow < 1:
        raise ValueError(f"bad machine mix: {n_fast} fast + {n_slow} slow")
    total_cost = workload.total_cost()
    fast_speed = (total_cost / serial_seconds) if total_cost else 1.0
    slow_speed = fast_speed / FAST_SLOW_RATIO
    nodes = []
    for i in range(n_fast):
        nodes.append(_node("fast", i + 1, i in overloaded, slow_speed))
    for j in range(n_slow):
        idx = n_fast + j
        nodes.append(_node("slow", j + 1, idx in overloaded, slow_speed))
    if result_bytes_per_item is None:
        result_bytes_per_item = (
            PAPER_RESULT_BYTES / workload.size if workload.size else 0.0
        )
    return ClusterSpec(
        nodes=nodes,
        master_service=MASTER_SERVICE,
        result_bytes_per_item=result_bytes_per_item,
    )


#: machine mixes per p for the speedup figures: (n_fast, n_slow).
_MIXES: dict[int, tuple[int, int]] = {
    1: (1, 0),
    2: (1, 1),
    4: (2, 2),
    8: (3, 5),
}

#: 0-based overloaded slave indices per p (nondedicated runs).  For
#: p=8 the paper's Table 2 points at PE1 (fast) and PE4/PE7/PE8 (slow):
#: those rows carry the inflated T_comp.
_OVERLOADS: dict[int, tuple[int, ...]] = {
    1: (0,),
    2: (0, 1),
    4: (0, 2),
    8: (0, 3, 6, 7),
}


def overload_pattern(p: int) -> tuple[int, ...]:
    """The paper's overloaded-slave indices for a given ``p``."""
    if p not in _OVERLOADS:
        raise ValueError(f"p must be one of {sorted(_OVERLOADS)}, got {p}")
    return _OVERLOADS[p]


def speedup_configuration(
    workload: Workload,
    p: int,
    dedicated: bool = True,
    serial_seconds: float = 60.0,
) -> ClusterSpec:
    """Cluster for one point of Figures 4-7 (p in {1, 2, 4, 8})."""
    if p not in _MIXES:
        raise ValueError(f"p must be one of {sorted(_MIXES)}, got {p}")
    n_fast, n_slow = _MIXES[p]
    overloaded = () if dedicated else overload_pattern(p)
    return paper_cluster(
        workload,
        n_fast=n_fast,
        n_slow=n_slow,
        overloaded=overloaded,
        serial_seconds=serial_seconds,
    )
