"""Master dispatch cost vs shared-counter contention -- the decentral case.

The master--slave engine pays ``master_service`` seconds of serialized
master time per scheduling request; as the dispatch cost or the worker
count grows, idle time piles up behind the master's FIFO.  The
decentral substrate replaces that server with one atomic fetch-and-add
(``atomic_op_cost``) and local chunk arithmetic, so its makespan should
be *independent* of the master dispatch cost -- there is no master --
while the master engine degrades linearly.  This artifact measures
both claims on the same clusters:

* **dispatch sweep**: for each cluster size ``p`` and each master
  dispatch cost ``d``, simulate the same loop on the master engine
  (which pays ``d`` per request) and on the decentral engine (which
  ignores ``d`` entirely); report both and the decentral spread across
  ``d`` (zero = independence demonstrated).
* **contention sweep**: the decentral engine's own serialized resource
  is the counter; sweep ``atomic_op_cost`` under SS (one atomic per
  iteration -- the worst case) to show where counter contention starts
  to matter and how the hierarchical (leased) mode damps it.

Both sweeps go through :func:`repro.batch.run_batch`, so ``--jobs``
fans them out.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..analysis import format_matrix, line_chart
from ..batch import SimJob, run_batch
from ..simulation import ClusterSpec, NodeSpec
from ..workloads import UniformWorkload

__all__ = [
    "DecentralPoint",
    "dispatch_sweep",
    "contention_sweep",
    "report",
]

#: Master per-request service times swept (seconds).  The paper-era
#: calibration sits at 0.2 ms; the tail shows degradation.
DEFAULT_DISPATCH_COSTS = (2e-4, 1e-3, 5e-3)
#: Shared-counter atomic costs swept (seconds).
DEFAULT_ATOMIC_COSTS = (1e-6, 2e-5, 2e-4, 1e-3)
DEFAULT_SIZES = (4, 8, 16)
DEFAULT_SCHEME = "TSS"
DEFAULT_TOTAL = 2048


@dataclasses.dataclass(frozen=True)
class DecentralPoint(object):
    """One (p, dispatch cost) comparison."""

    workers: int
    dispatch_cost: float
    master_t_p: float
    decentral_t_p: float


def _cluster(p: int, master_service: float) -> ClusterSpec:
    """A heterogeneous p-node cluster in the paper's fast/slow mix.

    Speeds alternate ~440:166 (the testbed's UltraSPARC 10 vs 1
    ratio); absolute scale puts makespans in single-digit seconds so
    millisecond-level dispatch costs are visible but not dominant.
    """
    nodes = [
        NodeSpec(
            name=f"pe{i}",
            speed=4.4e4 if i % 2 == 0 else 1.66e4,
            latency=1e-4,
            bandwidth=1.25e6,
        )
        for i in range(p)
    ]
    return ClusterSpec(nodes=nodes, master_service=master_service)


def _workload(total: int) -> UniformWorkload:
    return UniformWorkload(total, unit=100.0)


def dispatch_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    dispatch_costs: Sequence[float] = DEFAULT_DISPATCH_COSTS,
    scheme: str = DEFAULT_SCHEME,
    total: int = DEFAULT_TOTAL,
    n_jobs: int = 1,
) -> list[DecentralPoint]:
    """Master vs decentral T_p over the (p, dispatch cost) grid.

    The decentral jobs receive the *same* cluster objects (including
    the swept ``master_service``) -- the engine has no master, so any
    variation across the row would be a bug, and the artifact prints
    the observed spread to prove there is none.
    """
    wl = _workload(total)
    grid: list[tuple[int, float, SimJob, SimJob]] = []
    for p in sizes:
        for cost in dispatch_costs:
            cluster = _cluster(p, cost)
            grid.append((
                p,
                cost,
                SimJob(scheme=scheme, workload=wl, cluster=cluster,
                       tag=f"decentral-sweep/master/p={p}/d={cost}"),
                SimJob(scheme=scheme, workload=wl, cluster=cluster,
                       engine="decentral",
                       tag=f"decentral-sweep/decentral/p={p}/d={cost}"),
            ))
    jobs = [job for row in grid for job in (row[2], row[3])]
    results = run_batch(jobs, n_jobs=n_jobs)
    points = []
    for i, (p, cost, _mj, _dj) in enumerate(grid):
        points.append(DecentralPoint(
            workers=p,
            dispatch_cost=cost,
            master_t_p=results[2 * i].t_p,
            decentral_t_p=results[2 * i + 1].t_p,
        ))
    return points


def contention_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    atomic_costs: Sequence[float] = DEFAULT_ATOMIC_COSTS,
    total: int = DEFAULT_TOTAL,
    group_size: Optional[int] = 4,
    n_jobs: int = 1,
) -> dict[tuple[int, float], tuple[float, Optional[float]]]:
    """Decentral T_p vs atomic-op cost under SS (worst-case claims).

    Returns ``{(p, atomic_cost): (flat_t_p, hierarchical_t_p)}``;
    the hierarchical leg (group coordinators leasing blocks of 8) is
    None when ``group_size`` is None or ``p <= group_size``.
    """
    wl = _workload(total)
    grid: list[tuple[int, float, bool]] = []
    jobs: list[SimJob] = []
    for p in sizes:
        for cost in atomic_costs:
            cluster = _cluster(p, 0.0)
            jobs.append(SimJob(
                scheme="SS", workload=wl, cluster=cluster,
                engine="decentral",
                params={"atomic_op_cost": cost},
                tag=f"decentral-sweep/contention/p={p}/a={cost}",
            ))
            hier = group_size is not None and p > group_size
            grid.append((p, cost, hier))
            if hier:
                jobs.append(SimJob(
                    scheme="SS", workload=wl, cluster=cluster,
                    engine="decentral",
                    params={"atomic_op_cost": cost,
                            "group_size": group_size, "lease": 8},
                    tag=f"decentral-sweep/contention/p={p}/a={cost}/hier",
                ))
    results = run_batch(jobs, n_jobs=n_jobs)
    out: dict[tuple[int, float], tuple[float, Optional[float]]] = {}
    cursor = 0
    for p, cost, hier in grid:
        flat = results[cursor].t_p
        cursor += 1
        hier_tp: Optional[float] = None
        if hier:
            hier_tp = results[cursor].t_p
            cursor += 1
        out[(p, cost)] = (flat, hier_tp)
    return out


def report(
    sizes: Sequence[int] = DEFAULT_SIZES,
    dispatch_costs: Sequence[float] = DEFAULT_DISPATCH_COSTS,
    atomic_costs: Sequence[float] = DEFAULT_ATOMIC_COSTS,
    scheme: str = DEFAULT_SCHEME,
    total: int = DEFAULT_TOTAL,
    n_jobs: int = 1,
) -> str:
    """The full artifact: dispatch table, independence check, contention."""
    points = dispatch_sweep(sizes=sizes, dispatch_costs=dispatch_costs,
                            scheme=scheme, total=total, n_jobs=n_jobs)
    by_p: dict[int, dict[float, DecentralPoint]] = {}
    for pt in points:
        by_p.setdefault(pt.workers, {})[pt.dispatch_cost] = pt
    rows = []
    spreads = []
    for p in sizes:
        row = []
        dec = [by_p[p][d].decentral_t_p for d in dispatch_costs]
        spreads.append((p, max(dec) - min(dec)))
        for d in dispatch_costs:
            pt = by_p[p][d]
            row.append(f"{pt.master_t_p:.3f} / {pt.decentral_t_p:.3f}")
        rows.append(row)
    table = format_matrix(
        [f"d={d * 1e3:g}ms" for d in dispatch_costs],
        rows,
        [f"p={p}" for p in sizes],
    )
    lines = [
        "decentral-sweep -- no master in the dispatch path",
        f"  scheme {scheme}, I={total} uniform iterations, "
        "heterogeneous fast/slow nodes",
        "",
        "T_p (s) per master dispatch cost d: master engine / decentral "
        "engine",
        "(the decentral engine has no master; d appears in its cell "
        "only to prove it does not matter)",
        table,
        "",
        "decentral T_p spread across dispatch costs (0 = independent):",
    ]
    for p, spread in spreads:
        lines.append(f"  p={p}: {spread:.6f}s")
    biggest = max(sizes)
    series = {
        "master": [
            (d * 1e3, by_p[biggest][d].master_t_p) for d in dispatch_costs
        ],
        "decentral": [
            (d * 1e3, by_p[biggest][d].decentral_t_p)
            for d in dispatch_costs
        ],
    }
    lines.append("")
    lines.append(f"T_p vs dispatch cost (ms) at p={biggest}:")
    lines.append(line_chart(series, width=56, height=10, y_label="T_p"))
    contention = contention_sweep(sizes=sizes, atomic_costs=atomic_costs,
                                  total=total, n_jobs=n_jobs)
    rows = []
    for p in sizes:
        row = []
        for a in atomic_costs:
            flat, hier = contention[(p, a)]
            cell = f"{flat:.3f}"
            if hier is not None:
                cell += f" ({hier:.3f})"
            row.append(cell)
        rows.append(row)
    lines.append("")
    lines.append(
        "counter contention, SS worst case -- decentral T_p (s) per "
        "atomic-op cost;"
    )
    lines.append(
        "parenthesized: hierarchical mode, group coordinators leasing "
        "8-chunk blocks:"
    )
    lines.append(format_matrix(
        [f"a={a * 1e6:g}us" for a in atomic_costs],
        rows,
        [f"p={p}" for p in sizes],
    ))
    return "\n".join(lines)
