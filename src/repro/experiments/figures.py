"""Experiments F1 and F4-F7: the paper's figures as data series.

* Figure 1 -- the Mandelbrot per-column cost profile, original and
  reordered with ``S_f = 4`` (1200x1200 window in the paper).
* Figure 2 -- the fractal itself (ASCII render; see
  ``examples/mandelbrot_cluster.py`` for the full image path).
* Figures 4/5 -- speedup of the *simple* schemes vs p (dedicated /
  nondedicated).
* Figures 6/7 -- speedup of the *distributed* schemes vs p.

The speedup denominator is the dedicated serial time on one fast PE
(the paper's p=1 configuration).  Expected shapes: a dip at p=2 from
communication cost; simple schemes plateau (equal chunks to unequal
PEs) while distributed schemes track the cluster's power cap
(Fig. 6 caption: ``S_p <= 4.5`` for 3 fast + 5 slow at ratio 3).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..analysis import power_cap
from ..batch import SimJob, run_batch
from ..workloads import MandelbrotWorkload, ReorderedWorkload, Workload
from .config import (
    FAST_SLOW_RATIO,
    paper_workload,
    speedup_configuration,
)

__all__ = [
    "figure1",
    "figure2_ascii",
    "SpeedupFigure",
    "speedup_jobs",
    "speedup_figure",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
]

P_VALUES = (1, 2, 4, 8)
SIMPLE = ("TSS", "FSS", "FISS", "TFSS", "TreeS")
DISTRIBUTED = ("DTSS", "DFSS", "DFISS", "DTFSS", "TreeS")


def figure1(
    width: int = 1200, height: int = 1200, max_iter: int = 64, sf: int = 4
) -> dict[str, np.ndarray]:
    """Per-column basic-computation profiles, original vs reordered."""
    inner = MandelbrotWorkload(width, height, max_iter=max_iter)
    reordered = ReorderedWorkload(inner, sf=sf)
    return {
        "original": np.asarray(inner.costs()),
        "reordered": np.asarray(reordered.costs()),
    }


def figure2_ascii(width: int = 78, height: int = 32, max_iter: int = 48
                  ) -> str:
    """A small ASCII Mandelbrot (Figure 2 stand-in for terminals)."""
    from ..workloads import render_ascii

    wl = MandelbrotWorkload(width, height, max_iter=max_iter)
    return render_ascii(wl.image())


@dataclasses.dataclass
class SpeedupFigure(object):
    """One speedup figure: series[scheme] = [(p, T_p, speedup), ...]."""

    title: str
    dedicated: bool
    serial_time: float
    series: dict[str, list[tuple[int, float, float]]]
    cap: float  # power cap at p=8

    def report(self) -> str:
        lines = [f"{self.title} (serial on 1 fast PE: "
                 f"{self.serial_time:.1f}s; p=8 power cap "
                 f"{self.cap:.2f})"]
        header = "scheme".ljust(8) + "".join(
            f"  p={p:<2d} S_p".rjust(12) for p in P_VALUES
        )
        lines.append(header)
        for scheme, points in self.series.items():
            cells = "".join(
                f"{sp:12.2f}" for _p, _t, sp in points
            )
            lines.append(scheme.ljust(8) + cells)
        return "\n".join(lines)


def speedup_jobs(
    schemes: tuple[str, ...],
    dedicated: bool,
    workload: Workload,
    serial_seconds: float = 60.0,
    weighted_tree: bool = False,
) -> list[tuple[int, str, SimJob]]:
    """The (p, scheme) grid of one speedup figure as batch jobs."""
    out: list[tuple[int, str, SimJob]] = []
    mode = "ded" if dedicated else "nonded"
    for p in P_VALUES:
        cluster = speedup_configuration(
            workload, p, dedicated=dedicated,
            serial_seconds=serial_seconds,
        )
        for scheme in schemes:
            if scheme == "TreeS":
                job = SimJob(
                    scheme=scheme, workload=workload, cluster=cluster,
                    engine="tree",
                    params=dict(weighted=weighted_tree, grain=8),
                    tag=f"speedup/{mode}/p={p}",
                )
            else:
                job = SimJob(
                    scheme=scheme, workload=workload, cluster=cluster,
                    tag=f"speedup/{mode}/p={p}",
                )
            out.append((p, scheme, job))
    return out


def speedup_figure(
    schemes: tuple[str, ...],
    dedicated: bool,
    title: str,
    workload: Optional[Workload] = None,
    width: int = 4000,
    height: int = 2000,
    serial_seconds: float = 60.0,
    weighted_tree: bool = False,
    n_jobs: int = 1,
) -> SpeedupFigure:
    """Measure one speedup figure over p in {1, 2, 4, 8}.

    The (p, scheme) grid is embarrassingly parallel and goes through
    :func:`repro.batch.run_batch`; ``n_jobs`` controls the fan-out
    (``1`` = in-process serial, bit-identical either way).
    """
    wl = workload or paper_workload(width=width, height=height)
    # Denominator: dedicated serial run on one fast PE.  By the cluster
    # calibration this equals serial_seconds exactly, but derive it from
    # the cluster to stay correct for custom clusters.
    base = speedup_configuration(wl, 1, dedicated=True,
                                 serial_seconds=serial_seconds)
    serial_time = wl.total_cost() / base.nodes[0].speed
    series: dict[str, list[tuple[int, float, float]]] = {
        s: [] for s in schemes
    }
    cap = power_cap([FAST_SLOW_RATIO] * 3 + [1.0] * 5)
    grid = speedup_jobs(
        schemes, dedicated, wl, serial_seconds=serial_seconds,
        weighted_tree=weighted_tree,
    )
    results = run_batch([job for _p, _s, job in grid], n_jobs=n_jobs)
    for (p, scheme, _job), res in zip(grid, results):
        series[scheme].append((p, res.t_p, serial_time / res.t_p))
    return SpeedupFigure(
        title=title,
        dedicated=dedicated,
        serial_time=serial_time,
        series=series,
        cap=cap,
    )


def figure4(**kwargs) -> SpeedupFigure:
    """Figure 4: simple schemes, dedicated."""
    return speedup_figure(
        SIMPLE, True, "Figure 4 -- Speedup of Simple Schemes (Dedicated)",
        **kwargs,
    )


def figure5(**kwargs) -> SpeedupFigure:
    """Figure 5: simple schemes, nondedicated."""
    return speedup_figure(
        SIMPLE, False,
        "Figure 5 -- Speedup of Simple Schemes (NonDedicated)", **kwargs,
    )


def figure6(**kwargs) -> SpeedupFigure:
    """Figure 6: distributed schemes, dedicated."""
    kwargs.setdefault("weighted_tree", True)
    return speedup_figure(
        DISTRIBUTED, True,
        "Figure 6 -- Speedup of Distributed Schemes (Dedicated)", **kwargs,
    )


def figure7(**kwargs) -> SpeedupFigure:
    """Figure 7: distributed schemes, nondedicated."""
    kwargs.setdefault("weighted_tree", True)
    return speedup_figure(
        DISTRIBUTED, False,
        "Figure 7 -- Speedup of Distributed Schemes (NonDedicated)",
        **kwargs,
    )
