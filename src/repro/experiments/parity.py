"""Simulator--runtime parity: the simulator-validity experiment.

DESIGN.md's substitution argument says the DES preserves everything
self-scheduling behaviour depends on.  This experiment puts that to the
test: run the *same* scheme on the *same* workload through

1. the discrete-event simulator (virtual cluster), and
2. the real multiprocessing runtime (OS processes),

and compare what must agree:

* **results** -- both must equal the serial execution bit-for-bit;
* **coverage** -- both chunk traces partition ``[0, I)`` exactly;
* **chunk-size multiset shape** -- the scheduler is deterministic per
  request *sequence*, and request order differs between substrates, so
  traces need not be identical; but chunk counts must sit in the same
  band and the largest chunk must match (the first chunks of a run are
  order-independent for the simple schemes).

``repro-experiments`` does not expose this (it spawns processes, which
a reporting CLI should not do implicitly); it is driven by the test
suite and importable for notebooks.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis import chunk_stats
from ..runtime import run_parallel
from ..simulation import ClusterSpec, NodeSpec, simulate
from ..workloads import Workload

__all__ = ["ParityReport", "compare_substrates"]


@dataclasses.dataclass(frozen=True)
class ParityReport(object):
    """Outcome of one simulator-vs-runtime comparison."""

    scheme: str
    results_match: bool
    sim_chunks: int
    run_chunks: int
    sim_largest: int
    run_largest: int
    sim_coverage_ok: bool
    run_coverage_ok: bool

    @property
    def ok(self) -> bool:
        """The parity criteria DESIGN.md commits to."""
        counts_close = (
            max(self.sim_chunks, self.run_chunks)
            <= 2 * min(self.sim_chunks, self.run_chunks) + 4
        )
        return (
            self.results_match
            and self.sim_coverage_ok
            and self.run_coverage_ok
            and counts_close
        )


def _covers(spans: list[tuple[int, int]], total: int) -> bool:
    cursor = 0
    for start, stop in sorted(spans):
        if start != cursor:
            return False
        cursor = stop
    return cursor == total


def compare_substrates(
    scheme: str,
    workload: Workload,
    n_workers: int = 4,
    **scheme_kwargs,
) -> ParityReport:
    """Run ``scheme`` through both substrates and compare."""
    # Simulated homogeneous cluster with the same worker count.
    cluster = ClusterSpec(
        nodes=[
            NodeSpec(name=f"n{i}", speed=max(workload.total_cost(), 1.0))
            for i in range(n_workers)
        ]
    )
    sim = simulate(scheme, workload, cluster, collect_results=True,
                   **scheme_kwargs)
    run = run_parallel(scheme, workload, n_workers, **scheme_kwargs)
    serial = np.asarray(workload.execute_serial())
    sim_res = np.asarray(sim.results).reshape(serial.shape)
    run_res = np.asarray(run.results).reshape(serial.shape)
    results_match = bool(
        np.array_equal(sim_res, serial) and np.array_equal(run_res,
                                                           serial)
    )
    sim_sizes = [c.size for c in sim.chunks]
    run_sizes = [stop - start for _w, start, stop in run.chunks]
    return ParityReport(
        scheme=scheme,
        results_match=results_match,
        sim_chunks=len(sim_sizes),
        run_chunks=len(run_sizes),
        sim_largest=chunk_stats(sim_sizes).largest,
        run_largest=chunk_stats(run_sizes).largest,
        sim_coverage_ok=_covers(
            [(c.start, c.stop) for c in sim.chunks], workload.size
        ),
        run_coverage_ok=_covers(
            [(s, e) for _w, s, e in run.chunks], workload.size
        ),
    )
