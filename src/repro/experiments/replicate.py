"""Replicated experiments: mean +/- spread instead of single runs.

The paper's tables are single runs, and several of its rankings (which
scheme is "second best") sit inside single-run noise -- EXPERIMENTS.md
documents cases where our single run disagrees for exactly that reason.
This module runs a scheme comparison across many *randomized load
realizations* (seeded :class:`~repro.simulation.RandomLoad` traces) and
reports distributional statistics, which is what a ranking claim
actually needs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

from ..analysis import format_matrix
from ..batch import SimJob, run_batch
from ..simulation import ClusterSpec, NodeSpec, RandomLoad
from ..workloads import Workload
from .config import (
    FAST_BANDWIDTH,
    FAST_SLOW_RATIO,
    MASTER_SERVICE,
    PAPER_RESULT_BYTES,
    SLOW_BANDWIDTH,
    paper_workload,
)

__all__ = ["SchemeStats", "replicated_comparison", "sign_test", "report"]


@dataclasses.dataclass(frozen=True)
class SchemeStats(object):
    """T_p distribution for one scheme across load realizations."""

    scheme: str
    t_ps: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.t_ps) / len(self.t_ps)

    @property
    def std(self) -> float:
        if len(self.t_ps) < 2:
            return 0.0
        mu = self.mean
        var = sum((t - mu) ** 2 for t in self.t_ps) / (len(self.t_ps) - 1)
        return math.sqrt(var)

    @property
    def best(self) -> float:
        return min(self.t_ps)

    @property
    def worst(self) -> float:
        return max(self.t_ps)


def _noisy_paper_cluster(
    workload: Workload, seed: int, serial_seconds: float
) -> ClusterSpec:
    """The 3-fast + 5-slow cluster with seeded random busy periods."""
    total_cost = workload.total_cost()
    fast_speed = total_cost / serial_seconds if total_cost else 1.0
    slow_speed = fast_speed / FAST_SLOW_RATIO
    nodes = []
    for i in range(3):
        nodes.append(
            NodeSpec(
                name=f"fast{i + 1}",
                speed=fast_speed,
                bandwidth=FAST_BANDWIDTH,
                virtual_power=FAST_SLOW_RATIO,
                load=RandomLoad(seed=seed * 31 + i,
                                arrival_rate=0.04,
                                mean_duration=8.0),
            )
        )
    for j in range(5):
        nodes.append(
            NodeSpec(
                name=f"slow{j + 1}",
                speed=slow_speed,
                bandwidth=SLOW_BANDWIDTH,
                virtual_power=1.0,
                load=RandomLoad(seed=seed * 31 + 3 + j,
                                arrival_rate=0.04,
                                mean_duration=8.0),
            )
        )
    return ClusterSpec(
        nodes=nodes,
        master_service=MASTER_SERVICE,
        result_bytes_per_item=(
            PAPER_RESULT_BYTES / workload.size if workload.size else 0.0
        ),
    )


def sign_test(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sided sign-test p-value for paired samples ``a`` vs ``b``.

    The replications are paired (same load realizations), so the sign
    test is the assumption-free way to ask "is scheme A really faster
    than scheme B, or was it load luck?".  Ties are dropped, per the
    standard procedure.
    """
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    wins = sum(1 for x, y in zip(a, b) if x < y)
    losses = sum(1 for x, y in zip(a, b) if x > y)
    n = wins + losses
    if n == 0:
        return 1.0
    k = min(wins, losses)
    # two-sided binomial tail at p = 1/2
    tail = sum(math.comb(n, i) for i in range(k + 1)) / 2.0 ** n
    return min(1.0, 2.0 * tail)


def replicated_comparison(
    schemes: Sequence[str] = ("TSS", "DTSS", "DFSS", "DFISS", "DTFSS"),
    replications: int = 10,
    workload: Optional[Workload] = None,
    serial_seconds: float = 60.0,
    n_jobs: int = 1,
) -> list[SchemeStats]:
    """Run every scheme over ``replications`` seeded load realizations.

    Every scheme sees the *same* sequence of load realizations (paired
    comparison), so scheme differences are not confounded with load
    luck.  The scheme x seed grid fans out through
    :func:`repro.batch.run_batch` (each job carries its own seeded
    cluster, so parallel execution is bit-identical to serial).
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    wl = workload or paper_workload(width=1000, height=500)
    batch = [
        SimJob(
            scheme=scheme, workload=wl,
            cluster=_noisy_paper_cluster(wl, seed, serial_seconds),
            tag=f"replicate/seed={seed}",
        )
        for scheme in schemes
        for seed in range(replications)
    ]
    results = run_batch(batch, n_jobs=n_jobs)
    stats = []
    for i, scheme in enumerate(schemes):
        runs = results[i * replications:(i + 1) * replications]
        stats.append(SchemeStats(
            scheme=scheme, t_ps=tuple(r.t_p for r in runs)
        ))
    return stats


def report(
    schemes: Sequence[str] = ("TSS", "DTSS", "DFSS", "DFISS", "DTFSS"),
    replications: int = 10,
    workload: Optional[Workload] = None,
    n_jobs: int = 1,
) -> str:
    """Replicated comparison as a text table, best mean first."""
    stats = replicated_comparison(
        schemes=schemes, replications=replications, workload=workload,
        n_jobs=n_jobs,
    )
    stats = sorted(stats, key=lambda s: s.mean)
    rows = [
        [f"{s.mean:.1f}", f"{s.std:.1f}", f"{s.best:.1f}",
         f"{s.worst:.1f}"]
        for s in stats
    ]
    table = format_matrix(
        ["mean T_p", "std", "best", "worst"],
        rows,
        [s.scheme for s in stats],
    )
    lines = [
        f"T_p over {replications} seeded random-load realizations "
        f"(paired across schemes):",
        table,
    ]
    if len(stats) >= 2 and replications >= 5:
        best, runner_up = stats[0], stats[1]
        p_value = sign_test(best.t_ps, runner_up.t_ps)
        lines.append(
            f"sign test, {best.scheme} vs {runner_up.scheme}: "
            f"p = {p_value:.3f}"
        )
    return "\n".join(lines)
