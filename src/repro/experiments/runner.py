"""Command-line entry point: regenerate any paper artifact.

Usage (installed as ``repro-experiments`` or via
``python -m repro.experiments.runner``)::

    repro-experiments table1
    repro-experiments table2 --width 1000 --height 500
    repro-experiments table3
    repro-experiments figures            # figures 4-7
    repro-experiments fig1               # workload profile series
    repro-experiments fig2               # ASCII fractal
    repro-experiments all

``--width/--height`` scale the Mandelbrot window (the virtual timescale
is calibrated, so smaller windows reproduce the same table shapes
faster); ``--serial-seconds`` moves the calibration point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import ablations, figures, replicate, table1, table2, table3, validation, windows

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'A Class of Loop "
            "Self-Scheduling for Heterogeneous Clusters' (CLUSTER 2001)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "figures", "fig1", "fig2",
                 "ablations", "replicate", "validate", "gantt", "windows",
                 "schemes", "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--width", type=int, default=2000,
        help="Mandelbrot window width / loop size I (paper: 4000)",
    )
    parser.add_argument(
        "--height", type=int, default=1000,
        help="Mandelbrot window height (paper: 2000)",
    )
    parser.add_argument(
        "--serial-seconds", type=float, default=60.0,
        help="calibrated serial time on one fast PE (virtual seconds)",
    )
    parser.add_argument(
        "--sf", type=int, default=4,
        help="loop-reordering sampling frequency (paper: 4)",
    )
    return parser


def _figures_report(args: argparse.Namespace) -> str:
    parts = []
    from ..analysis import line_chart

    for fig in (figures.figure4, figures.figure5, figures.figure6,
                figures.figure7):
        result = fig(
            width=args.width,
            height=args.height,
            serial_seconds=args.serial_seconds,
        )
        parts.append(result.report())
        parts.append("")
        parts.append(
            line_chart(
                {
                    name: [(p, sp) for p, _t, sp in pts]
                    for name, pts in result.series.items()
                },
                width=56,
                height=12,
                y_label="S_p",
            )
        )
        parts.append("")
    return "\n".join(parts)


def _schemes_report() -> str:
    """Every registered scheme with its class and default parameters."""
    from ..core import make, names

    lines = ["Registered schemes (defaults at I=1000, p=4):", ""]
    for name in names():
        info = make(name, 1000, 4).describe()
        params = ", ".join(
            f"{k}={v}" for k, v in sorted(info["params"].items())
        )
        kind = "distributed" if info["distributed"] else "simple"
        lines.append(
            f"  {name:6s} {info['class']:40s} [{kind}]"
            + (f"  {params}" if params else "")
        )
    lines.append("")
    lines.append("TreeS and AS are decentralized: use "
                 "simulate_tree() / simulate_affinity().")
    return "\n".join(lines)


def _gantt_report(args: argparse.Namespace) -> str:
    """Per-PE busy timelines for one simple and one distributed run."""
    from ..simulation import gantt_chart, simulate
    from .config import paper_cluster, paper_workload

    wl = paper_workload(width=args.width, height=args.height)
    cluster = paper_cluster(wl, serial_seconds=args.serial_seconds)
    parts = ["Per-PE timelines (the Table 2 vs Table 3 story at a "
             "glance):", ""]
    horizon = 0.0
    results = []
    for scheme in ("TSS", "DTSS"):
        res = simulate(scheme, wl, paper_cluster(
            wl, serial_seconds=args.serial_seconds
        ))
        results.append(res)
        horizon = max(horizon, res.t_p)
    for res in results:
        parts.append(gantt_chart(res, until=horizon))
        parts.append("")
    return "\n".join(parts)


def _fig1_report(args: argparse.Namespace) -> str:
    data = figures.figure1(width=min(args.width, 1200),
                           height=min(args.height, 1200), sf=args.sf)
    orig, reord = data["original"], data["reordered"]
    lines = [
        "Figure 1 -- Mandelbrot per-column basic computations",
        f"  columns: {orig.size}",
        f"  original : min={orig.min():.0f} max={orig.max():.0f} "
        f"mean={orig.mean():.0f}",
        f"  reordered (S_f={args.sf}): same multiset, striped order",
    ]
    # A coarse profile: block means over 16 blocks, showing the
    # smoothing effect of reordering on contiguous chunks.
    import numpy as np

    def blocks(v):
        return [f"{b.mean():7.0f}" for b in np.array_split(v, 16)]

    lines.append("  16-block means, original : " + " ".join(blocks(orig)))
    lines.append("  16-block means, reordered: " + " ".join(blocks(reord)))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    kwargs = dict(
        width=args.width,
        height=args.height,
        serial_seconds=args.serial_seconds,
    )
    out: list[str] = []
    if args.experiment in ("table1", "all"):
        out.append(table1.report())
    if args.experiment in ("table2", "all"):
        out.append(table2.report(**kwargs))
    if args.experiment in ("table3", "all"):
        out.append(table3.report(**kwargs))
    if args.experiment in ("fig1", "all"):
        out.append(_fig1_report(args))
    if args.experiment == "fig2":
        out.append(figures.figure2_ascii())
    if args.experiment == "gantt":
        out.append(_gantt_report(args))
    if args.experiment == "windows":
        out.append(windows.report())
    if args.experiment == "schemes":
        out.append(_schemes_report())
    if args.experiment in ("figures", "all"):
        out.append(_figures_report(args))
    if args.experiment == "ablations":
        out.append(ablations.report())
    if args.experiment == "replicate":
        out.append(replicate.report())
    if args.experiment == "validate":
        from .config import paper_workload as _pw

        out.append(validation.report(
            _pw(width=args.width, height=args.height)
        ))
    print("\n".join(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
