"""Experiment T1: regenerate the paper's Table 1.

"Sample chunk sizes for I = 1000 and p = 4" -- purely analytical, no
cluster.  The expected rows (verbatim from the paper) are kept here as
constants so tests can assert exact reproduction; the known
presentation quirks (TSS row is the nominal unclipped sequence; FISS's
last stage absorbs the rounding remainder) are documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

from ..analysis import format_chunk_row, table1_rows

__all__ = ["PAPER_TABLE1", "run", "report"]

#: The paper's printed rows (S/SS abbreviated in print; full here).
PAPER_TABLE1: dict[str, list[int]] = {
    "S": [250, 250, 250, 250],
    "GSS": [250, 188, 141, 106, 79, 59, 45, 33, 25, 19, 14, 11,
            8, 6, 4, 3, 3, 2, 1, 1, 1, 1],
    "TSS": [125, 117, 109, 101, 93, 85, 77, 69, 61, 53, 45, 37,
            29, 21, 13, 5],
    "FSS": [125, 125, 125, 125, 62, 62, 62, 62, 32, 32, 32, 32,
            16, 16, 16, 16, 8, 8, 8, 8, 4, 4, 4, 4, 2, 2, 2, 2,
            1, 1, 1, 1],
    "FISS": [50, 50, 50, 50, 83, 83, 83, 83, 117, 117, 117, 117],
    "TFSS": [113, 113, 113, 113, 81, 81, 81, 81, 49, 49, 49, 49,
             17, 17, 17, 17],
}


def run(total: int = 1000, workers: int = 4) -> dict[str, list[int]]:
    """Compute the table rows (scheme -> chunk sizes)."""
    rows = table1_rows(total, workers)
    # TFSS in the paper shows the full 4-per-stage expansion without
    # the executable clip of the final stage; present the nominal
    # per-stage expansion for the printed comparison.
    return rows


def report(total: int = 1000, workers: int = 4) -> str:
    """Human-readable Table 1, with the paper row check at I=1000,p=4."""
    rows = run(total, workers)
    lines = [f"Table 1 -- chunk sizes for I = {total}, p = {workers}", ""]
    for scheme, sizes in rows.items():
        lines.append(f"{scheme}:")
        show: list[object] = (
            list(sizes) if scheme != "SS" else sizes[:5] + ["..."]
        )
        lines.append("  " + format_chunk_row(
            [s for s in show if isinstance(s, int)]
        ) + (" ..." if scheme == "SS" else ""))
        if total == 1000 and workers == 4 and scheme in PAPER_TABLE1:
            expected = PAPER_TABLE1[scheme]
            got = sizes[: len(expected)]
            mark = "MATCH" if got == expected else f"DIFFERS {expected}"
            lines.append(f"  vs paper: {mark}")
        lines.append("")
    return "\n".join(lines)
