"""Experiment T2: the paper's Table 2 -- simple schemes at p = 8.

Runs TSS, FSS, FISS, TFSS and TreeS on the 3-fast + 5-slow cluster,
dedicated and nondedicated, and tabulates per-PE
``T_com/T_wait/T_comp`` plus ``T_p`` in the paper's layout.

Expected shape (paper Sec. 5.1): the simple schemes treat all PEs as
equal, so on the heterogeneous cluster "the execution is not
well-balanced" -- fast PEs idle (big ``T_wait``) while slow PEs carry
equal-sized chunks; TSS posts the best ``T_p``.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import format_time_table
from ..batch import SimJob, run_batch
from ..simulation import SimResult
from ..workloads import Workload
from .config import overload_pattern, paper_cluster, paper_workload

__all__ = ["SCHEMES", "jobs", "run", "report"]

SCHEMES = ("TSS", "FSS", "FISS", "TFSS", "TreeS")


def jobs(
    workload: Workload,
    dedicated: bool = True,
    serial_seconds: float = 60.0,
) -> list[SimJob]:
    """One :class:`SimJob` per Table 2 column, in column order."""
    overloaded = () if dedicated else overload_pattern(8)
    cluster = paper_cluster(
        workload, overloaded=overloaded, serial_seconds=serial_seconds
    )
    tag = "table2/" + ("ded" if dedicated else "nonded")
    out = []
    for scheme in SCHEMES:
        if scheme == "TreeS":
            # Simple test: even initial allocation (paper Sec. 5.1).
            out.append(SimJob(
                scheme=scheme, workload=workload, cluster=cluster,
                engine="tree", params=dict(weighted=False, grain=8),
                tag=tag,
            ))
        else:
            out.append(SimJob(
                scheme=scheme, workload=workload, cluster=cluster,
                tag=tag,
            ))
    return out


def run(
    workload: Optional[Workload] = None,
    dedicated: bool = True,
    width: int = 4000,
    height: int = 2000,
    serial_seconds: float = 60.0,
    n_jobs: int = 1,
) -> dict[str, SimResult]:
    """Simulate every Table 2 column; returns scheme -> result."""
    wl = workload or paper_workload(width=width, height=height)
    batch = jobs(wl, dedicated=dedicated, serial_seconds=serial_seconds)
    return dict(zip(SCHEMES, run_batch(batch, n_jobs=n_jobs)))


def report(**kwargs) -> str:
    """Both halves of Table 2 as text."""
    parts = []
    # Build the (cost-cached) workload once for both halves.
    if kwargs.get("workload") is None:
        kwargs = dict(kwargs)
        kwargs["workload"] = paper_workload(
            width=kwargs.pop("width", 4000),
            height=kwargs.pop("height", 2000),
        )
    for dedicated in (True, False):
        results = run(dedicated=dedicated, **kwargs)
        title = "Dedicated" if dedicated else "NonDedicated"
        parts.append(
            f"Table 2 -- Simple schemes, p = 8 ({title}); "
            "cells are T_com/T_wait/T_comp (s)"
        )
        parts.append(format_time_table(results))
        parts.append("")
    return "\n".join(parts)
