"""Experiment T3: the paper's Table 3 -- distributed schemes at p = 8.

Runs DTSS, DFSS, DFISS, DTFSS and weighted TreeS on the same cluster as
Table 2.  Expected shape (paper Sec. 6.1): "the execution is
well-balanced, in terms of the computation times" and the
communication/waiting times drop sharply versus the simple schemes;
DTSS posts the best ``T_p``, DFISS second in the nondedicated case.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import format_time_table
from ..batch import SimJob, run_batch
from ..core.acp import IMPROVED_ACP, AcpModel
from ..simulation import SimResult
from ..workloads import Workload
from .config import overload_pattern, paper_cluster, paper_workload

__all__ = ["SCHEMES", "jobs", "run", "report"]

SCHEMES = ("DTSS", "DFSS", "DFISS", "DTFSS", "TreeS")


def jobs(
    workload: Workload,
    dedicated: bool = True,
    serial_seconds: float = 60.0,
    acp_model: AcpModel = IMPROVED_ACP,
) -> list[SimJob]:
    """One :class:`SimJob` per Table 3 column, in column order."""
    overloaded = () if dedicated else overload_pattern(8)
    cluster = paper_cluster(
        workload, overloaded=overloaded, serial_seconds=serial_seconds
    )
    tag = "table3/" + ("ded" if dedicated else "nonded")
    out = []
    for scheme in SCHEMES:
        if scheme == "TreeS":
            # Distributed test: virtual-power-weighted initial blocks
            # (paper Sec. 6.1).
            out.append(SimJob(
                scheme=scheme, workload=workload, cluster=cluster,
                engine="tree", params=dict(weighted=True, grain=8),
                tag=tag,
            ))
        else:
            out.append(SimJob(
                scheme=scheme, workload=workload, cluster=cluster,
                params=dict(acp_model=acp_model), tag=tag,
            ))
    return out


def run(
    workload: Optional[Workload] = None,
    dedicated: bool = True,
    width: int = 4000,
    height: int = 2000,
    serial_seconds: float = 60.0,
    acp_model: AcpModel = IMPROVED_ACP,
    n_jobs: int = 1,
) -> dict[str, SimResult]:
    """Simulate every Table 3 column; returns scheme -> result."""
    wl = workload or paper_workload(width=width, height=height)
    batch = jobs(
        wl, dedicated=dedicated, serial_seconds=serial_seconds,
        acp_model=acp_model,
    )
    return dict(zip(SCHEMES, run_batch(batch, n_jobs=n_jobs)))


def report(**kwargs) -> str:
    """Both halves of Table 3 as text."""
    parts = []
    # Build the (cost-cached) workload once for both halves.
    if kwargs.get("workload") is None:
        kwargs = dict(kwargs)
        kwargs["workload"] = paper_workload(
            width=kwargs.pop("width", 4000),
            height=kwargs.pop("height", 2000),
        )
    for dedicated in (True, False):
        results = run(dedicated=dedicated, **kwargs)
        title = "Dedicated" if dedicated else "NonDedicated"
        parts.append(
            f"Table 3 -- Distributed schemes, p = 8 ({title}); "
            "cells are T_com/T_wait/T_comp (s)"
        )
        parts.append(format_time_table(results))
        parts.append("")
    return "\n".join(parts)
