"""The reproduction gate: check every paper shape claim in one pass.

``repro-experiments validate`` runs the whole battery and prints a
PASS/FAIL checklist.  Each check corresponds to a sentence in the
paper (quoted in the check's description); EXPERIMENTS.md discusses
the ones that are known-divergent.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..analysis import power_cap
from ..obs.logutil import get_logger
from ..workloads import Workload
from . import figures, table1, table2, table3
from .config import FAST_SLOW_RATIO, paper_workload

__all__ = ["Check", "run_checks", "report"]

_log = get_logger("experiments.validation")


@dataclasses.dataclass
class Check(object):
    """One verifiable claim and its outcome."""

    claim: str
    passed: bool
    detail: str = ""


def run_checks(
    workload: Optional[Workload] = None, n_jobs: int = 1
) -> list[Check]:
    """Run every shape check; returns the checklist.

    ``n_jobs`` fans the underlying table/figure simulations out through
    the batch layer (results are bit-identical to serial).
    """
    wl = workload or paper_workload(width=1000, height=500)
    checks: list[Check] = []

    def add(claim: str, fn: Callable[[], tuple[bool, str]]) -> None:
        try:
            ok, detail = fn()
        except Exception as exc:  # noqa: BLE001  # pragma: no cover
            # Deliberately broad: this is the checklist harness
            # boundary, and one crashing check must surface as a FAIL
            # row (with a logged traceback) rather than abort the rest
            # of the battery.
            _log.exception("check %r raised", claim)
            ok, detail = False, f"raised {exc!r}"
        checks.append(Check(claim=claim, passed=ok, detail=detail))

    # -- Table 1 --------------------------------------------------------------
    def check_table1():
        rows = table1.run()
        bad = [
            scheme
            for scheme, expected in table1.PAPER_TABLE1.items()
            if rows[scheme][: len(expected)] != expected
        ]
        return not bad, f"mismatching rows: {bad}" if bad else "verbatim"

    add("Table 1 chunk rows match the paper verbatim", check_table1)

    # -- Tables 2/3 ------------------------------------------------------------
    simple_d = table2.run(workload=wl, dedicated=True, n_jobs=n_jobs)
    simple_n = table2.run(workload=wl, dedicated=False, n_jobs=n_jobs)
    dist_d = table3.run(workload=wl, dedicated=True, n_jobs=n_jobs)
    dist_n = table3.run(workload=wl, dedicated=False, n_jobs=n_jobs)

    def check_simple_best():
        master = {k: v.t_p for k, v in simple_d.items() if k != "TreeS"}
        best = min(master, key=master.get)
        return best in ("TSS", "TFSS"), f"best simple = {best}"

    add('"TSS performed best, followed by TFSS" (Table 2, within '
        "single-run noise)', decreasing-chunk scheme first",
        check_simple_best)

    def check_simple_imbalanced():
        imb = simple_d["TSS"].comp_imbalance()
        return imb > 0.3, f"TSS comp imbalance = {imb:.2f}"

    add('"The execution is not well-balanced" (Table 2)',
        check_simple_imbalanced)

    def check_distributed_wins():
        pairs = [("TSS", "DTSS"), ("FSS", "DFSS"), ("FISS", "DFISS"),
                 ("TFSS", "DTFSS")]
        wins = [
            f"{d}:{dist_d[d].t_p:.1f}<{s}:{simple_d[s].t_p:.1f}"
            for s, d in pairs
            if dist_d[d].t_p < simple_d[s].t_p
        ]
        return len(wins) >= 3, "; ".join(wins)

    add("Distributed schemes beat their simple counterparts (Table 3 "
        "vs Table 2)", check_distributed_wins)

    def check_distributed_balanced():
        imb_d = dist_d["DTSS"].comp_imbalance()
        imb_s = simple_d["TSS"].comp_imbalance()
        return imb_d < imb_s, (
            f"DTSS imbalance {imb_d:.2f} vs TSS {imb_s:.2f}"
        )

    add('"The execution is well-balanced, in terms of the computation '
        'times" (Table 3)', check_distributed_balanced)

    def check_dtss_best():
        master = {k: v.t_p for k, v in dist_n.items() if k != "TreeS"}
        best = min(master, key=master.get)
        return best in ("DTSS", "DTFSS"), f"best distributed = {best}"

    add('"The DTSS and DFISS were the most efficient" (nondedicated; '
        "DTSS or its trapezoid sibling first)", check_dtss_best)

    def check_nondedicated_degrades():
        worse = [
            s for s in ("TSS", "FSS", "TFSS")
            if simple_n[s].t_p > simple_d[s].t_p
        ]
        return len(worse) == 3, f"degraded: {worse}"

    add("Nondedicated load inflates simple-scheme T_p",
        check_nondedicated_degrades)

    def check_wait_reduction():
        wait_s = sum(w.t_wait for w in simple_d["FSS"].workers)
        wait_d = sum(w.t_wait for w in dist_d["DFSS"].workers)
        return wait_d < wait_s, (
            f"sum T_wait FSS {wait_s:.0f}s vs DFSS {wait_d:.0f}s"
        )

    add('"The communication/waiting times are much reduced compared '
        'to the Simple schemes" (Sec. 6.1)', check_wait_reduction)

    # -- Figures ---------------------------------------------------------------
    fig6 = figures.figure6(workload=wl, n_jobs=n_jobs)
    fig4 = figures.figure4(workload=wl, n_jobs=n_jobs)

    def check_caps():
        cap = power_cap([FAST_SLOW_RATIO] * 3 + [1.0] * 5)
        over = [
            name
            for name, pts in fig6.series.items()
            if pts[-1][2] > cap + 0.5
        ]
        return not over, f"cap {cap:.2f}; over: {over}" if over \
            else f"all under cap {cap:.2f}"

    add('Speedups respect the heterogeneous power cap ("we expect '
        'S_p <= 4.5", Fig. 6)', check_caps)

    def check_dip():
        # p=1/2 speedups sit low (communication cost dip).
        lows = [
            pts[0][2] < 1.0 and pts[1][2] < 2.0
            for pts in fig4.series.values()
        ]
        return all(lows), "all p<=2 speedups low"

    add('"The dip, for p = 2, is due to the communication cost" '
        "(Figs. 4-7)", check_dip)

    def check_dist_scales():
        best_d = max(
            pts[-1][2] for name, pts in fig6.series.items()
            if name != "TreeS"
        )
        best_s = max(
            pts[-1][2] for name, pts in fig4.series.items()
            if name != "TreeS"
        )
        return best_d > best_s, (
            f"distributed p=8 best {best_d:.2f} vs simple {best_s:.2f}"
        )

    add("Distributed schemes outscale simple ones at p = 8 "
        "(Fig. 6 vs Fig. 4)", check_dist_scales)

    return checks


def report(workload: Optional[Workload] = None, n_jobs: int = 1) -> str:
    """The checklist as text; ends with an overall verdict."""
    checks = run_checks(workload, n_jobs=n_jobs)
    lines = ["Reproduction gate -- paper shape claims", ""]
    for check in checks:
        mark = "PASS" if check.passed else "FAIL"
        lines.append(f"[{mark}] {check.claim}")
        if check.detail:
            lines.append(f"       {check.detail}")
    passed = sum(c.passed for c in checks)
    lines.append("")
    lines.append(f"{passed}/{len(checks)} checks passed")
    return "\n".join(lines)
