"""Window-size sweep -- the paper's "for different window sizes".

Sec. 2.1: "We use, in our tests, the Mandelbrot fractal computation
algorithm on the domain [-2.0, 1.25] x [-1.25, 1.25], for different
window sizes (for example 4000x2000, 5000x2000, and so on)."  This
experiment sweeps the window width (one task per column) and reports,
per scheme, how ``T_p`` and the scheduling-step count scale.

Because the cluster is *calibrated per workload* (serial time on one
fast PE pinned), ``T_p`` should be roughly flat across window sizes for
a well-behaved scheme -- deviations expose granularity effects: at
small ``I`` the chunk counts collapse and single-chunk placement luck
dominates (which is also why the test suite runs rank-sensitive checks
at width >= 1000).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..analysis import format_matrix
from ..batch import SimJob, run_batch
from .config import paper_cluster, paper_workload

__all__ = ["WindowPoint", "window_sweep", "report"]

DEFAULT_WIDTHS = (500, 1000, 2000, 4000)
DEFAULT_SCHEMES = ("TSS", "TFSS", "DTSS", "DTFSS")


@dataclasses.dataclass(frozen=True)
class WindowPoint(object):
    """One (scheme, width) measurement."""

    scheme: str
    width: int
    t_p: float
    chunks: int
    imbalance: float


def window_sweep(
    widths: Sequence[int] = DEFAULT_WIDTHS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    height: int = 1000,
    serial_seconds: float = 60.0,
    n_jobs: int = 1,
) -> list[WindowPoint]:
    """Simulate every (scheme, width) pair on the calibrated cluster.

    The grid goes through :func:`repro.batch.run_batch`; each width's
    cost profile is resolved once (persistent cache) and shipped to
    every job that shares it.
    """
    grid: list[tuple[str, int, SimJob]] = []
    for width in widths:
        wl = paper_workload(width=width, height=height)
        cluster = paper_cluster(wl, serial_seconds=serial_seconds)
        for scheme in schemes:
            grid.append((scheme, width, SimJob(
                scheme=scheme, workload=wl, cluster=cluster,
                tag=f"windows/I={width}",
            )))
    results = run_batch([job for _s, _w, job in grid], n_jobs=n_jobs)
    return [
        WindowPoint(
            scheme=scheme,
            width=width,
            t_p=result.t_p,
            chunks=result.total_chunks,
            imbalance=result.comp_imbalance(),
        )
        for (scheme, width, _job), result in zip(grid, results)
    ]


def report(
    widths: Sequence[int] = DEFAULT_WIDTHS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    height: int = 1000,
    n_jobs: int = 1,
) -> str:
    """T_p per (scheme, width) in a text matrix."""
    points = window_sweep(widths=widths, schemes=schemes, height=height,
                          n_jobs=n_jobs)
    by_scheme: dict[str, dict[int, WindowPoint]] = {}
    for pt in points:
        by_scheme.setdefault(pt.scheme, {})[pt.width] = pt
    rows = []
    for scheme in schemes:
        rows.append(
            [
                f"{by_scheme[scheme][w].t_p:.1f}"
                f" ({by_scheme[scheme][w].chunks})"
                for w in widths
            ]
        )
    table = format_matrix(
        [f"I={w}" for w in widths], rows, list(schemes)
    )
    return (
        "T_p in seconds (chunk count) per Mandelbrot window width;\n"
        "cluster calibrated per workload, so flat rows = granularity-"
        "robust scheme:\n" + table
    )
