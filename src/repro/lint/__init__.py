"""``repro.lint``: the determinism & concurrency static-analysis pass.

The repo's headline property -- simulator, fast-path, decentral,
runtime and service runs of one scheme are byte-diffable
(:func:`repro.obs.canonical_stream` / :func:`repro.obs.stream_digest`)
-- rests on a handful of coding conventions: seeded RNG everywhere, no
wall clock outside the ``t``/``wall`` event fields, fork hygiene in
the process pools, no blocking calls inside the asyncio daemon, and
closed string protocols (event kinds, service ops, scheme names,
artifact names).  This package machine-checks those conventions as
named rules over the AST, so a PR that would silently break digest
bit-identity fails the ``repro-lint`` gate instead of a probabilistic
tier-1 test.

Rule families (catalog with examples in ``docs/static_analysis.md``):

========  =============================================================
REP0xx    determinism: global/unseeded RNG, wall-clock or entropy in
          event payloads, unordered iteration and ``hash()`` in
          digest-critical code
REP1xx    fork & lock safety: bare ``acquire()``, threads or event
          loops created before a fork, worker code mutating module
          globals
REP2xx    async hygiene: blocking calls in ``async def``, un-awaited
          coroutines, dropped tasks
REP3xx    cross-file protocol checks: event kinds vs the
          ``obs.events`` schema, registry schemes vs kernel
          calculators and test references, CLI artifacts vs the
          dispatch table, wire ops vs ``service.protocol.OPS``
========  =============================================================

Everything here is stdlib-only (``ast``): the gate must run in every
environment the tests run in.  Entry points: the ``repro-lint``
console script (:mod:`repro.lint.cli`) and :func:`run_lint` for
programmatic use (the tier-1 test ``tests/lint/test_lint_clean.py``
runs it over ``src/``).
"""

from __future__ import annotations

from .baseline import load_baseline, write_baseline
from .engine import LintConfig, run_lint
from .findings import Finding
from .rules import RULES, rule_ids

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "load_baseline",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
