"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .engine import dotted_name

__all__ = [
    "dotted_name",
    "parent_map",
    "enclosing_functions",
    "iter_scopes",
    "call_tail",
]


def parent_map(tree: ast.AST) -> dict:
    """``{id(child): parent}`` for every node in ``tree``."""
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def enclosing_functions(
    node: ast.AST, parents: dict
) -> Iterator[ast.AST]:
    """Function/AsyncFunction defs around ``node``, innermost first."""
    current: Optional[ast.AST] = parents.get(id(node))
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield current
        current = parents.get(id(current))


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (async) function def, outermost first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def call_tail(node: ast.Call) -> str:
    """Last attribute segment of the callee (``''`` when unnameable).

    Unlike :func:`dotted_name` this also answers for methods on
    non-name receivers -- ``",".join(...)``, ``parts[0].append(...)``
    -- where only the method name is knowable statically.
    """
    name = dotted_name(node.func)
    if name:
        return name.rsplit(".", 1)[-1]
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""
