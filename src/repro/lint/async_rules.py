"""REP2xx -- async hygiene rules for the service daemon.

``repro.service.server`` multiplexes every tenant on one event loop;
a single blocking call starves all of them (and the drain path), an
un-awaited coroutine silently does nothing, and a task whose handle
is dropped can be garbage-collected mid-flight -- all three have
bitten real asyncio services and none is caught by tests that happen
to finish fast.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ._util import call_tail, dotted_name
from .engine import LintConfig, ModuleInfo
from .findings import Finding

__all__ = ["check_rep201", "check_rep202", "check_rep203"]

#: Dotted callees that block the loop outright.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put",
    "requests.delete", "requests.head", "requests.request",
    "input",
})

#: Bare builtins that block (checked as Name calls).
_BLOCKING_NAMES = frozenset({"open", "input"})


def _async_body_calls(fn: ast.AsyncFunctionDef):
    """Call nodes in ``fn``'s own async frame (nested defs excluded)."""

    def visit(stmts):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                continue
            yield from _calls_in(stmt)

    def _calls_in(stmt):
        stack = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    yield from visit(fn.body)


def check_rep201(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP201: blocking call inside ``async def``."""
    for fn in ast.walk(mod.tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for call in _async_body_calls(fn):
            name = dotted_name(call.func)
            hit = None
            if name in _BLOCKING_CALLS:
                hit = name
            elif isinstance(call.func, ast.Name) \
                    and call.func.id in _BLOCKING_NAMES:
                hit = call.func.id
            elif name is not None and name.startswith("subprocess."):
                hit = name
            if hit is not None:
                alt = "await asyncio.sleep(...)" if "sleep" in hit \
                    else "loop.run_in_executor(...)"
                yield mod.finding(
                    "REP201", call,
                    f"{hit}() blocks the event loop inside async "
                    f"'{fn.name}', starving every other tenant on the "
                    f"daemon; use {alt}",
                )


def _async_def_names(mod: ModuleInfo) -> set:
    return {
        node.name for node in ast.walk(mod.tree)
        if isinstance(node, ast.AsyncFunctionDef)
    }


def check_rep202(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP202: coroutine called but never awaited."""
    async_names = _async_def_names(mod)
    if not async_names:
        return
    for node in ast.walk(mod.tree):
        if not (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        name = None
        if isinstance(call.func, ast.Name) \
                and call.func.id in async_names:
            name = call.func.id
        elif isinstance(call.func, ast.Attribute) \
                and call.func.attr in async_names \
                and isinstance(call.func.value, ast.Name) \
                and call.func.value.id in ("self", "cls"):
            name = call.func.attr
        if name is not None:
            yield mod.finding(
                "REP202", node,
                f"coroutine '{name}(...)' is never awaited: the call "
                f"builds a coroutine object and drops it, so the body "
                f"never runs; await it or wrap it in "
                f"asyncio.create_task(...) and keep the handle",
            )


def check_rep203(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP203: ``create_task`` / ``ensure_future`` handle dropped."""
    for node in ast.walk(mod.tree):
        if not (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)):
            continue
        tail = call_tail(node.value)
        if tail in ("create_task", "ensure_future"):
            yield mod.finding(
                "REP203", node,
                f"{tail}(...) result discarded: asyncio keeps only a "
                f"weak reference, so the task can be garbage-collected "
                f"mid-flight; store the handle (and await or cancel it "
                f"on shutdown)",
            )
