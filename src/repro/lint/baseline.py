"""Baseline handling: reviewed, grandfathered findings.

A baseline is a JSON file of finding fingerprints that have been
*reviewed and accepted* (typically findings that predate a new rule).
``repro-lint --baseline`` subtracts them, so CI fails only on **new**
findings while the grandfathered ones stay visible in the file for
eventual burn-down.  Fingerprints hash the offending line's content
(see :mod:`repro.lint.findings`), so unrelated edits do not churn the
baseline, but touching the offending line re-surfaces the finding.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence, Union

from .findings import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

#: Conventional baseline location at the repo root.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_VERSION = 1


def load_baseline(path: Union[str, os.PathLike]) -> set:
    """Fingerprints recorded in ``path`` (empty set if absent)."""
    path = os.fspath(path)
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("version") != _VERSION:
        raise ValueError(
            f"{path}: not a repro-lint baseline (expected a JSON "
            f"object with version={_VERSION})"
        )
    return {
        str(entry["fingerprint"]) for entry in doc.get("findings", ())
    }


def write_baseline(
    path: Union[str, os.PathLike], findings: Iterable[Finding]
) -> int:
    """Write ``findings`` as the new baseline; returns the count.

    Entries keep the human-readable fields next to the fingerprint so
    a reviewer can audit the file without re-running the tool.
    """
    entries = sorted(
        (f.to_dict() for f in findings),
        key=lambda d: (d["path"], d["rule"], d["line"]),
    )
    doc = {"version": _VERSION, "findings": entries}
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], fingerprints: set
) -> tuple:
    """``(new, suppressed)`` split of ``findings`` against a baseline."""
    new: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        if finding.fingerprint in fingerprints:
            suppressed.append(finding)
        else:
            new.append(finding)
    return new, suppressed
