"""``repro-lint``: the console entry point.

Exit codes: 0 clean (or everything baselined), 1 findings, 2 usage
errors.  ``--format json`` emits a machine-readable report for CI
annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import LintConfig, run_lint
from .rules import RULES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & concurrency static analysis for the repro "
            "codebase: machine-checks the invariants the canonical-"
            "stream digests depend on (rule catalog: "
            "docs/static_analysis.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src if it "
             "exists, else .)",
    )
    parser.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE, default=None,
        metavar="FILE",
        help=f"subtract reviewed findings recorded in FILE (default "
             f"when the flag is given bare: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings into the baseline file and "
             "exit 0 (requires --baseline or uses the default path)",
    )
    parser.add_argument(
        "--select", default="REP", metavar="PREFIXES",
        help="comma-separated rule-id prefixes to run (default: REP "
             "= everything)",
    )
    parser.add_argument(
        "--ignore", default="", metavar="PREFIXES",
        help="comma-separated rule-id prefixes to skip",
    )
    parser.add_argument(
        "--tests-dir", default=None, metavar="DIR",
        help="test tree for the REP304 scheme-reference check "
             "(default: ./tests when it exists)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split(prefixes: str) -> tuple:
    return tuple(p.strip() for p in prefixes.split(",") if p.strip())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]}")
        return 0
    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    tests_dir = args.tests_dir
    if tests_dir is None and os.path.isdir("tests"):
        tests_dir = "tests"
    config = LintConfig(
        select=_split(args.select) or ("REP",),
        ignore=_split(args.ignore),
        tests_dir=tests_dir,
    )
    findings = run_lint(paths, config)
    baseline_path = args.baseline
    if args.write_baseline:
        baseline_path = baseline_path or DEFAULT_BASELINE
        count = write_baseline(baseline_path, findings)
        print(f"repro-lint: wrote {count} finding(s) to "
              f"{baseline_path}")
        return 0
    suppressed: list = []
    if baseline_path is not None:
        try:
            known = load_baseline(baseline_path)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, known)
    if args.format == "json":
        print(json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "suppressed": len(suppressed),
            },
            indent=2, sort_keys=True,
        ))
    else:
        for finding in findings:
            print(finding.render())
        tail = f" ({len(suppressed)} baselined)" if suppressed else ""
        if findings:
            print(f"repro-lint: {len(findings)} finding(s){tail}")
        else:
            print(f"repro-lint: clean{tail}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
