"""REP1xx -- fork & lock safety rules.

Every substrate forks workers (``mp.get_context("fork")`` in the
runtime, the decentral executor and the service pool).  A fork
snapshots the parent's locks and threads: a thread started before the
fork exists only in the parent, but a lock it holds is copied *held*
into the child -- the classic post-fork deadlock.  Likewise, a bare
``.acquire()`` that an exception can skip past leaks the lock into
every subsequent chunk, and worker code mutating module globals only
ever mutates its own copy (silently diverging from the parent's
bookkeeping the digests are built from).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ._util import call_tail, dotted_name, parent_map
from .engine import LintConfig, ModuleInfo
from .findings import Finding

__all__ = ["check_rep101", "check_rep102", "check_rep103"]

#: Function names treated as worker-process entry points.
_WORKER_NAME = re.compile(r"(^|_)worker(_|$)|_main$")

#: Mutating method names on module-level containers.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "update",
    "setdefault", "pop", "popleft", "popitem", "remove", "discard",
    "clear",
})

#: Event-loop factories that pin asyncio state into the parent.
_LOOP_FACTORIES = frozenset({
    "asyncio.new_event_loop", "asyncio.get_event_loop", "asyncio.run",
})


def _acquire_base(node: ast.Call) -> Optional[str]:
    name = dotted_name(node.func)
    if name is None or not name.endswith(".acquire"):
        return None
    return name[: -len(".acquire")]


def _releases(stmts, base: str) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and dotted_name(node.func) == f"{base}.release":
                return True
    return False


def check_rep101(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP101: ``lock.acquire()`` outside ``with`` / try-finally."""
    parents = parent_map(mod.tree)
    for node in ast.walk(mod.tree):
        if not (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)):
            continue
        base = _acquire_base(node.value)
        if base is None:
            continue
        # Pattern A: the acquire sits inside a try whose finally
        # releases the same lock.
        covered = False
        current = parents.get(id(node))
        while current is not None and not covered:
            if isinstance(current, ast.Try) \
                    and _releases(current.finalbody, base):
                covered = True
            current = parents.get(id(current))
        # Pattern B: ``x.acquire()`` immediately followed by a
        # try/finally that releases it.
        if not covered:
            parent = parents.get(id(node))
            body = getattr(parent, "body", None)
            if isinstance(body, list) and node in body:
                idx = body.index(node)
                if idx + 1 < len(body) \
                        and isinstance(body[idx + 1], ast.Try) \
                        and _releases(body[idx + 1].finalbody, base):
                    covered = True
        if not covered:
            yield mod.finding(
                "REP101", node,
                f"{base}.acquire() without a guaranteed release: an "
                f"exception leaks the lock into every later chunk "
                f"(and through fork into workers); use 'with {base}:' "
                f"or a try/finally release",
            )


def _creations(scope_body) -> list:
    """(line, kind, node) creation events in one scope, in source
    order, not descending into nested function/class scopes."""
    out = []

    def visit(stmts):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    # lambdas/defs inside a statement: skip their body
                    # by relying on ast.walk order being harmless here;
                    # nested defs as statements were skipped above.
                    continue
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func) or ""
                tail = name.rsplit(".", 1)[-1]
                if tail == "Thread":
                    out.append((node.lineno, "thread", node))
                elif name in _LOOP_FACTORIES:
                    out.append((node.lineno, "loop", node))
                elif tail == "Process":
                    out.append((node.lineno, "process", node))

    visit(scope_body)
    out.sort(key=lambda item: item[0])
    return out


def check_rep102(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP102: thread or event loop created before a fork."""
    if not mod.fork_sensitive:
        return
    scopes = [("module", mod.tree.body)]
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node.name, node.body))
    for scope_name, body in scopes:
        events = _creations(body)
        process_lines = [ln for ln, kind, _ in events
                         if kind == "process"]
        if scope_name == "module":
            for line, kind, node in events:
                if kind in ("thread", "loop"):
                    yield mod.finding(
                        "REP102", node,
                        f"{kind} created at import time in a module "
                        f"that forks worker processes; fork-context "
                        f"children inherit its locks mid-state -- "
                        f"create it after the workers are spawned",
                    )
            continue
        if not process_lines:
            continue
        last_fork = max(process_lines)
        for line, kind, node in events:
            if kind in ("thread", "loop") and line < last_fork:
                yield mod.finding(
                    "REP102", node,
                    f"{kind} created before a Process(...) in "
                    f"'{scope_name}': fork-context children snapshot "
                    f"the parent's threads/locks and can deadlock; "
                    f"spawn processes first, then start threads",
                )


def _module_mutables(tree: ast.Module) -> set:
    names = set()
    for stmt in tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
            isinstance(value, ast.Call)
            and call_tail(value) in ("dict", "list", "set",
                                     "deque", "defaultdict",
                                     "OrderedDict", "Counter")
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _local_bindings(fn) -> set:
    bound = {a.arg for a in fn.args.args}
    bound.update(a.arg for a in fn.args.posonlyargs)
    bound.update(a.arg for a in fn.args.kwonlyargs)
    if fn.args.vararg:
        bound.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        bound.add(fn.args.kwarg.arg)
    def bind_target(target) -> None:
        # Only plain names (and destructuring of them) bind locals;
        # ``x[k] = v`` / ``x.attr = v`` *mutate* x, they do not shadow
        # a module-level x.
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind_target(elt)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
    return bound


def check_rep103(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP103: worker-entry code mutating module-level mutable state."""
    mutables = _module_mutables(mod.tree)
    for fn in ast.walk(mod.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _WORKER_NAME.search(fn.name):
            continue
        locals_ = _local_bindings(fn)
        globals_declared = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
                yield mod.finding(
                    "REP103", node,
                    f"'global {', '.join(node.names)}' in worker entry "
                    f"'{fn.name}': after fork this rebinds only the "
                    f"child's copy, silently diverging from the "
                    f"parent; pass state through the pipe instead",
                )
        interesting = (mutables - locals_) | globals_declared
        if not interesting:
            continue
        for node in ast.walk(fn):
            target_name = None
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS \
                    and isinstance(node.func.value, ast.Name):
                target_name = node.func.value.id
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets \
                    if isinstance(node, ast.Assign) else [node.target]
                for t in targets:
                    if isinstance(t, ast.Subscript) \
                            and isinstance(t.value, ast.Name):
                        target_name = t.value.id
            if target_name in interesting:
                yield mod.finding(
                    "REP103", node,
                    f"worker entry '{fn.name}' mutates module-level "
                    f"'{target_name}': each forked child mutates its "
                    f"own copy, so the parent (and the ledger/digest "
                    f"bookkeeping) never sees it",
                )
