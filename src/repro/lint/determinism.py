"""REP0xx -- determinism rules.

The canonical-stream digests (PR 4/6/8) are only byte-stable if no
code path consults ambient nondeterminism: the process-global RNG, an
unseeded generator, the wall clock (outside the schema's ``t``/``wall``
fields, which :func:`repro.obs.export.canonical_stream` strips),
OS entropy, hash-seed-dependent ``hash()``, or set iteration order
(string sets reorder under ``PYTHONHASHSEED``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ._util import call_tail, dotted_name, enclosing_functions, parent_map
from .engine import LintConfig, ModuleInfo
from .findings import Finding

__all__ = [
    "check_rep001", "check_rep002", "check_rep003",
    "check_rep004", "check_rep005",
]

#: ``random.<fn>`` module-level functions that drive the *shared*
#: process-global generator.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "getrandbits", "randbytes",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "seed",
})

#: Legacy ``np.random.<fn>`` global-state functions (the pre-Generator
#: API); ``default_rng(seed)`` is the sanctioned spelling.
_NP_GLOBAL_FNS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson", "bytes",
})

#: Calls that read the wall clock or OS entropy.
_TAINTED_CALLS = frozenset({
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "uuid.uuid1", "uuid.uuid4", "uuid1", "uuid4",
    "os.urandom", "urandom", "os.getrandom", "secrets.token_bytes",
    "secrets.token_hex",
})


def _from_random_imports(mod: ModuleInfo) -> set:
    names = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def check_rep001(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP001: call into the process-global RNG."""
    bare = _from_random_imports(mod)
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if callee is None:
            continue
        parts = callee.split(".")
        hit = None
        if len(parts) == 2 and parts[0] == "random" \
                and parts[1] in _GLOBAL_RANDOM_FNS:
            hit = callee
        elif len(parts) == 1 and parts[0] in bare \
                and parts[0] in _GLOBAL_RANDOM_FNS:
            hit = f"random.{parts[0]}"
        elif len(parts) >= 3 and parts[0] in ("np", "numpy") \
                and parts[-2] == "random" \
                and parts[-1] in _NP_GLOBAL_FNS:
            hit = callee
        if hit is not None:
            yield mod.finding(
                "REP001", node,
                f"{hit}() drives the process-global RNG, which any "
                f"import may have advanced; thread a seeded "
                f"random.Random(seed) / np.random.default_rng(seed) "
                f"through instead",
            )


def check_rep002(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP002: RNG constructed without a seed (or from OS entropy)."""
    bare = _from_random_imports(mod)
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if callee is None:
            continue
        tail = callee.rsplit(".", 1)[-1]
        if tail == "SystemRandom" and (
            callee.startswith("random.") or callee in bare
        ):
            yield mod.finding(
                "REP002", node,
                "SystemRandom draws OS entropy and can never replay; "
                "use a seeded random.Random(seed)",
            )
            continue
        is_random_ctor = callee == "random.Random" or (
            callee == "Random" and "Random" in bare
        )
        is_default_rng = tail == "default_rng"
        if (is_random_ctor or is_default_rng) \
                and not node.args and not node.keywords:
            yield mod.finding(
                "REP002", node,
                f"{callee}() without a seed falls back to OS entropy; "
                f"pass an explicit seed so reruns are bit-identical",
            )


def _tainted(node: ast.Call) -> bool:
    callee = dotted_name(node.func)
    return callee is not None and callee in _TAINTED_CALLS


def check_rep003(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP003: wall clock / entropy flowing into event payloads or
    digest inputs.

    ``ObsEvent``'s ``t`` (third positional) and ``wall`` fields are
    stripped by ``canonical_stream``, so clock reads may feed exactly
    those; any other field becomes part of the digest surface.  In
    digest-critical modules *every* tainted call is flagged.
    """
    flagged: set = set()
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call) or call_tail(node) != "ObsEvent":
            continue
        suspect_roots: list = []
        for idx, arg in enumerate(node.args):
            if idx != 2:  # slot 2 is ``t``, excluded from the digest
                suspect_roots.append(arg)
        for kw in node.keywords:
            if kw.arg not in ("t", "wall"):
                suspect_roots.append(kw.value)
        for root in suspect_roots:
            for sub in ast.walk(root):
                if isinstance(sub, ast.Call) and _tainted(sub):
                    flagged.add(id(sub))
                    yield mod.finding(
                        "REP003", sub,
                        f"{dotted_name(sub.func)}() inside an ObsEvent "
                        f"field other than t/wall enters the canonical "
                        f"stream and breaks digest bit-identity; only "
                        f"t= and wall= may carry clock reads",
                    )
    if mod.digest_critical:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call) and _tainted(node) \
                    and id(node) not in flagged:
                yield mod.finding(
                    "REP003", node,
                    f"{dotted_name(node.func)}() in digest-critical "
                    f"code (canonical_stream/verify); digests must "
                    f"depend only on the event stream",
                )


def _is_unordered_iterable(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    return False


def check_rep004(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP004: iteration over an unordered set in digest-critical code."""
    if not mod.digest_critical:
        return
    hint = (
        "set iteration order depends on PYTHONHASHSEED for str "
        "elements; wrap in sorted(...) before it can influence the "
        "canonical stream"
    )
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) \
                and _is_unordered_iterable(node.iter):
            yield mod.finding(
                "REP004", node.iter,
                f"for-loop over an unordered set in digest-critical "
                f"code; {hint}",
            )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                               ast.DictComp, ast.SetComp)):
            for gen in node.generators:
                if _is_unordered_iterable(gen.iter):
                    yield mod.finding(
                        "REP004", gen.iter,
                        f"comprehension over an unordered set in "
                        f"digest-critical code; {hint}",
                    )
        elif isinstance(node, ast.Call) \
                and call_tail(node) in ("join", "list", "tuple") \
                and len(node.args) == 1 \
                and _is_unordered_iterable(node.args[0]):
            yield mod.finding(
                "REP004", node.args[0],
                f"{call_tail(node)}() materializes an unordered set "
                f"in digest-critical code; {hint}",
            )


def check_rep005(mod: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
    """REP005: builtin ``hash()`` in digest-critical code."""
    if not mod.digest_critical:
        return
    parents = parent_map(mod.tree)
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Name)
                and node.func.id == "hash"):
            continue
        inside_dunder = any(
            fn.name == "__hash__"
            for fn in enclosing_functions(node, parents)
        )
        if inside_dunder:
            continue
        yield mod.finding(
            "REP005", node,
            "builtin hash() is salted per process (PYTHONHASHSEED) "
            "for str/bytes; digest-critical code must use "
            "hashlib.sha256 over a canonical encoding",
        )
