"""The analysis engine: file collection, parsing, module roles.

The engine walks the given paths, parses every ``.py`` file once, and
hands each rule a :class:`ModuleInfo` -- the parsed tree plus the
*role* classification and the project-level string literals the
cross-file rules compare (event kinds, scheme registries, wire ops,
artifact names).

Roles are discovered from **content, not path**, so the same rules
work on this repo, on a temp fixture tree in the tests, and on any
downstream layout:

* *digest-critical*: the module defines ``canonical_stream`` /
  ``stream_digest`` or an ``audit_*`` function -- code whose iteration
  order and hashing feed the byte-diffable canonical stream.
* *fork-sensitive*: the module creates ``multiprocessing`` processes
  (fork-context workers inherit the parent's threads and locks).
* schema carriers: modules assigning ``EVENT_KINDS`` / ``SCHEMES`` /
  ``CALCULATORS`` / ``NON_PURE_SCHEMES`` / ``OPS`` /
  ``ALL_ARTIFACTS`` literals are the authorities the REP3xx rules
  check emissions against.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Iterable, Optional, Sequence, Union

from .findings import PARSE_RULE, Finding

__all__ = ["LintConfig", "ModuleInfo", "run_lint", "dotted_name"]

PathLike = Union[str, os.PathLike]

#: Function names that mark a module digest-critical.
_DIGEST_DEFS = ("canonical_stream", "stream_digest", "replay_cut_points")

#: Module-level literal assignments the REP3xx rules consume.  The
#: registries proper (``SCHEMES``, ``CALCULATORS``) must be *dict*
#: displays -- experiment modules reuse the name ``SCHEMES`` for plain
#: column tuples, which are not the authority.
_PROTOCOL_NAMES = frozenset({
    "EVENT_KINDS", "SCHEMES", "CALCULATORS", "NON_PURE_SCHEMES",
    "OPS", "ALL_ARTIFACTS",
})
_DICT_ONLY_NAMES = frozenset({"SCHEMES", "CALCULATORS"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _str_elements(node: ast.AST) -> Optional[list[tuple[str, int]]]:
    """String constants (with lines) inside a set/tuple/list display,
    a ``frozenset({...})`` / ``set([...])`` / ``tuple(...)`` call, or a
    dict display's keys.  ``None`` when the node is none of those."""
    if isinstance(node, ast.Call) and len(node.args) == 1 \
            and dotted_name(node.func) in ("frozenset", "set", "tuple"):
        node = node.args[0]
    elems: Iterable[Optional[ast.expr]]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        elems = node.elts
    elif isinstance(node, ast.Dict):
        elems = node.keys
    else:
        return None
    out: list[tuple[str, int]] = []
    for el in elems:
        if isinstance(el, ast.Constant) and isinstance(el.value, str):
            out.append((el.value, el.lineno))
    return out


@dataclasses.dataclass
class ModuleInfo(object):
    """One parsed file plus everything the rules ask about it."""

    path: str                 #: path as reported in findings
    source: str
    tree: ast.Module
    lines: list[str] = dataclasses.field(default_factory=list)

    # content-discovered roles
    digest_critical: bool = False
    fork_sensitive: bool = False

    #: ``{assigned_name: [(literal, line), ...]}`` for the protocol
    #: carriers in ``_PROTOCOL_NAMES``.
    protocol_sets: dict = dataclasses.field(default_factory=dict)
    #: choices=[...] of positional CLI arguments (artifact menus).
    cli_choices: list = dataclasses.field(default_factory=list)
    #: every ``== "literal"`` comparison in the module (dispatch sites).
    eq_literals: set = dataclasses.field(default_factory=set)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self._classify()

    # -- finding helper ----------------------------------------------------

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node_or_line, message: str) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line) or 0
        return Finding(
            rule=rule, path=self.path, line=int(line),
            message=message, snippet=self.snippet(int(line)),
        )

    # -- classification ----------------------------------------------------

    def _classify(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _DIGEST_DEFS \
                        or node.name.startswith("audit_"):
                    self.digest_critical = True
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func) or ""
                tail = callee.rsplit(".", 1)[-1]
                if tail == "Process" or tail == "get_context":
                    self.fork_sensitive = True
            elif isinstance(node, ast.Compare) \
                    and len(node.ops) == 1 \
                    and isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                for side in (node.left, *node.comparators):
                    if isinstance(side, ast.Constant) \
                            and isinstance(side.value, str):
                        self.eq_literals.add(side.value)
        for stmt in self.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id in _PROTOCOL_NAMES:
                if target.id in _DICT_ONLY_NAMES \
                        and not isinstance(value, ast.Dict):
                    continue
                elements = _str_elements(value)
                if elements is not None:
                    self.protocol_sets[target.id] = elements
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func) or ""
            if not callee.endswith("add_argument"):
                continue
            positional = bool(
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and not node.args[0].value.startswith("-")
            )
            if not positional:
                continue
            for kw in node.keywords:
                if kw.arg == "choices":
                    elements = _str_elements(kw.value)
                    if elements:
                        self.cli_choices.extend(elements)


@dataclasses.dataclass(frozen=True)
class LintConfig(object):
    """Engine configuration (CLI flags map 1:1 onto these fields)."""

    #: Rule-id prefixes to run (``("REP",)`` = everything).
    select: tuple = ("REP",)
    #: Rule-id prefixes to skip (applied after ``select``).
    ignore: tuple = ()
    #: Test tree for the REP304 test-reference check; ``None`` skips it.
    tests_dir: Optional[str] = None

    def wants(self, rule_id: str) -> bool:
        return any(rule_id.startswith(p) for p in self.select) \
            and not any(rule_id.startswith(p) for p in self.ignore)


def _collect_files(paths: Sequence[PathLike]) -> list[str]:
    out: list[str] = []
    for path in paths:
        path = os.fspath(path)
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return out


def _display_path(path: str) -> str:
    rel = os.path.relpath(path)
    return path if rel.startswith("..") else rel


def parse_modules(
    paths: Sequence[PathLike],
) -> tuple[list[ModuleInfo], list[Finding]]:
    """Parse every file under ``paths``; syntax errors become
    :data:`~repro.lint.findings.PARSE_RULE` findings."""
    modules: list[ModuleInfo] = []
    findings: list[Finding] = []
    for path in _collect_files(paths):
        display = _display_path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            findings.append(Finding(
                rule=PARSE_RULE, path=display, line=int(line),
                message=f"file does not parse: {exc}",
            ))
            continue
        modules.append(ModuleInfo(path=display, source=source, tree=tree))
    return modules, findings


def run_lint(
    paths: Sequence[PathLike],
    config: Optional[LintConfig] = None,
) -> list[Finding]:
    """Run every selected rule over ``paths``; sorted findings."""
    from .rules import FILE_RULES, PROJECT_RULES

    config = config or LintConfig()
    modules, findings = parse_modules(paths)
    for rule_id, _summary, check in FILE_RULES:
        if not config.wants(rule_id):
            continue
        for mod in modules:
            findings.extend(check(mod, config))
    for rule_id, _summary, check in PROJECT_RULES:
        if config.wants(rule_id):
            findings.extend(check(modules, config))
    findings = [f for f in findings if config.wants(f.rule)
                or f.rule == PARSE_RULE]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
