"""The finding model: what every rule reports and how it is keyed.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` intentionally hashes the *content* of the
offending line rather than its number, so a baseline entry survives
unrelated edits above it (the same trick ESLint and ruff baselines
use); moving or editing the offending line itself re-surfaces the
finding for review.
"""

from __future__ import annotations

import dataclasses
import hashlib

__all__ = ["Finding", "PARSE_RULE"]

#: Pseudo-rule for files the engine cannot parse at all.
PARSE_RULE = "REP000"


@dataclasses.dataclass(frozen=True)
class Finding(object):
    """One rule violation at one location."""

    rule: str          #: rule id, e.g. ``"REP001"``
    path: str          #: path as given to the engine (repo-relative)
    line: int          #: 1-based line number (0 for file-level findings)
    message: str       #: human-readable explanation with the fix hint
    snippet: str = ""  #: stripped source line the finding anchors to

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + path + line content."""
        basis = "\x1f".join((self.rule, self.path, self.snippet))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """``path:line: RULE message`` (the CLI text format)."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
