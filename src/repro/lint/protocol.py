"""REP3xx -- cross-file protocol rules.

The repo's string protocols are *closed*: an ObsEvent ``kind`` must be
declared in ``repro.obs.events.EVENT_KINDS`` (the auditor and the
canonical stream reject or mis-classify unknown kinds), a wire ``op``
must be one the daemon dispatches (``repro.service.protocol.OPS``),
every scheme in ``core.registry.SCHEMES`` needs a pure calculator in
``core.kernel.CALCULATORS`` or an explicit entry in the documented
refusal set ``NON_PURE_SCHEMES`` (plus a test that references it), and
every CLI artifact name must round-trip through the argparse menu and
the dispatch chain.  These rules read the authoritative literals from
whatever modules in the analyzed tree declare them (see
:mod:`repro.lint.engine`), so they work on fixture trees too.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterator, Optional

from ._util import call_tail
from .engine import LintConfig, ModuleInfo
from .findings import Finding

__all__ = [
    "check_rep301", "check_rep302", "check_rep303",
    "check_rep304", "check_rep305",
]

#: Helper callees whose first string argument is an event kind.
_EMIT_HELPERS = frozenset({"emit", "_emit", "dump_event"})


def _declared(modules, name: str):
    """Merged ``{literal: (module, line)}`` across declaring modules."""
    merged: dict[str, tuple] = {}
    for mod in modules:
        for literal, line in mod.protocol_sets.get(name, ()):
            merged.setdefault(literal, (mod, line))
    return merged


def _emitted_kinds(mod: ModuleInfo):
    """(kind, node) for every statically-visible kind emission."""
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        tail = call_tail(node)
        if tail == "ObsEvent":
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                yield node.args[0].value, node.args[0]
            for kw in node.keywords:
                if kw.arg == "kind" \
                        and isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, str):
                    yield kw.value.value, kw.value
        elif tail in _EMIT_HELPERS:
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                yield node.args[0].value, node.args[0]


def check_rep301(modules, config: LintConfig) -> Iterator[Finding]:
    """REP301: emitted event kind missing from ``EVENT_KINDS``."""
    kinds = _declared(modules, "EVENT_KINDS")
    if not kinds:
        return
    for mod in modules:
        for kind, node in _emitted_kinds(mod):
            if kind not in kinds:
                yield mod.finding(
                    "REP301", node,
                    f"event kind {kind!r} is not declared in "
                    f"EVENT_KINDS (obs/events.py): the auditor will "
                    f"reject it and canonical streams cannot classify "
                    f"it; add it to the schema or fix the literal "
                    f"(known: {', '.join(sorted(kinds))})",
                )


def check_rep302(modules, config: LintConfig) -> Iterator[Finding]:
    """REP302: registry scheme without kernel calculator (or refusal
    entry), or calculator for an unregistered scheme."""
    schemes = _declared(modules, "SCHEMES")
    calculators = _declared(modules, "CALCULATORS")
    non_pure = _declared(modules, "NON_PURE_SCHEMES")
    if not schemes or not calculators:
        return
    for name, (mod, line) in sorted(schemes.items()):
        if name not in calculators and name not in non_pure:
            yield mod.finding(
                "REP302", line,
                f"scheme {name!r} is registered but has neither a "
                f"core.kernel calculator (CALCULATORS) nor an entry "
                f"in the documented refusal set NON_PURE_SCHEMES; "
                f"the decentral substrate and the analytic fast path "
                f"would fail on it with an unexplained KeyError",
            )
    for name, (mod, line) in sorted(calculators.items()):
        if name not in schemes:
            yield mod.finding(
                "REP302", line,
                f"calculator {name!r} has no scheme in "
                f"core.registry.SCHEMES: it is unreachable from every "
                f"string entry point (simulate, SimJob, the CLIs)",
            )
    for name, (mod, line) in sorted(non_pure.items()):
        if name in calculators:
            yield mod.finding(
                "REP302", line,
                f"{name!r} appears in both CALCULATORS and "
                f"NON_PURE_SCHEMES; the refusal set must list exactly "
                f"the schemes without a pure form",
            )


def check_rep303(modules, config: LintConfig) -> Iterator[Finding]:
    """REP303: artifact list, CLI choices and dispatch out of sync."""
    for mod in modules:
        artifacts = dict(mod.protocol_sets.get("ALL_ARTIFACTS", ()))
        if not artifacts:
            continue
        choices = dict(mod.cli_choices)
        if choices:
            for name, line in sorted(artifacts.items()):
                if name not in choices:
                    yield mod.finding(
                        "REP303", line,
                        f"artifact {name!r} is in ALL_ARTIFACTS but "
                        f"not offered by the CLI parser's choices; "
                        f"'repro-experiments {name}' would be "
                        f"rejected at argument parsing",
                    )
            for name, line in sorted(choices.items()):
                if name == "all" or name in artifacts:
                    continue
                if name not in mod.eq_literals:
                    yield mod.finding(
                        "REP303", line,
                        f"CLI choice {name!r} has no dispatch "
                        f"comparison in this module: selecting it "
                        f"parses fine and then silently produces "
                        f"nothing",
                    )
        for name, line in sorted(artifacts.items()):
            if name not in mod.eq_literals:
                yield mod.finding(
                    "REP303", line,
                    f"artifact {name!r} has no dispatch comparison; "
                    f"'repro-experiments all' would skip it silently",
                )


def _tests_text(tests_dir: str) -> str:
    chunks: list[str] = []
    for root, dirs, names in os.walk(tests_dir):
        dirs[:] = [d for d in dirs
                   if not d.startswith(".") and d != "__pycache__"]
        for name in sorted(names):
            if not name.endswith(".py"):
                continue
            try:
                with open(os.path.join(root, name), "r",
                          encoding="utf-8") as handle:
                    chunks.append(handle.read())
            except OSError:
                continue
    return "\n".join(chunks)


def check_rep304(modules, config: LintConfig) -> Iterator[Finding]:
    """REP304: registered scheme never referenced by the test suite."""
    schemes = _declared(modules, "SCHEMES")
    tests_dir: Optional[str] = config.tests_dir
    if not schemes or not tests_dir or not os.path.isdir(tests_dir):
        return
    text = _tests_text(tests_dir)
    for name, (mod, line) in sorted(schemes.items()):
        if not re.search(rf"\b{re.escape(name)}\b", text):
            yield mod.finding(
                "REP304", line,
                f"scheme {name!r} appears nowhere under "
                f"{tests_dir}: an untested scheme has no reference "
                f"digest, so nothing would notice it breaking",
            )


def _op_literals(mod: ModuleInfo):
    """(op, node) for wire-op string literals: ``{"op": "x"}`` dict
    entries, ``doc["op"] = "x"`` assignments, ``op == "x"``
    comparisons, and ``op in ("x", "y")`` membership tests (the shape
    a dispatch arm handling aliased ops takes)."""
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if isinstance(key, ast.Constant) and key.value == "op" \
                        and isinstance(value, ast.Constant) \
                        and isinstance(value.value, str):
                    yield value.value, value
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.slice, ast.Constant) \
                        and target.slice.value == "op" \
                        and isinstance(node.value, ast.Constant) \
                        and isinstance(node.value.value, str):
                    yield node.value.value, node.value
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], (ast.In, ast.NotIn)):
            if not ((isinstance(node.left, ast.Name)
                     and node.left.id == "op")
                    or (isinstance(node.left, ast.Attribute)
                        and node.left.attr == "op")):
                continue
            container = node.comparators[0]
            if isinstance(container, (ast.Tuple, ast.List, ast.Set)):
                for elt in container.elts:
                    if isinstance(elt, ast.Constant) \
                            and isinstance(elt.value, str):
                        yield elt.value, elt
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            sides = (node.left, *node.comparators)
            names = [
                s for s in sides
                if (isinstance(s, ast.Name) and s.id == "op")
                or (isinstance(s, ast.Attribute) and s.attr == "op")
            ]
            if not names:
                continue
            for side in sides:
                if isinstance(side, ast.Constant) \
                        and isinstance(side.value, str):
                    yield side.value, side


def check_rep305(modules, config: LintConfig) -> Iterator[Finding]:
    """REP305: wire op literal missing from ``service.protocol.OPS``."""
    ops = _declared(modules, "OPS")
    if not ops:
        return
    for mod in modules:
        if "OPS" in mod.protocol_sets:
            continue  # the declaration itself is not a use
        for op, node in _op_literals(mod):
            if op not in ops:
                yield mod.finding(
                    "REP305", node,
                    f"wire op {op!r} is not in service.protocol.OPS: "
                    f"the daemon would answer 'unknown-op'; add it to "
                    f"OPS and a dispatch arm, or fix the literal "
                    f"(known: {', '.join(sorted(ops))})",
                )
