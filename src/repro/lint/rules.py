"""The rule registry: one row per rule id.

``FILE_RULES`` run once per module; ``PROJECT_RULES`` run once over
the whole analyzed set (they correlate literals across files).  The
docs generator and ``repro-lint --list-rules`` both render from here,
so adding a rule is: write the checker, add the row, add a good/bad
fixture pair under ``tests/lint/`` (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

from . import async_rules, concurrency, determinism, protocol
from .findings import PARSE_RULE

__all__ = ["FILE_RULES", "PROJECT_RULES", "RULES", "rule_ids"]

#: (rule id, one-line summary, checker) -- per-file rules.
FILE_RULES = (
    ("REP001", "call into the process-global RNG",
     determinism.check_rep001),
    ("REP002", "RNG constructed without a seed",
     determinism.check_rep002),
    ("REP003", "wall clock / entropy in event payloads or digest code",
     determinism.check_rep003),
    ("REP004", "iteration over an unordered set in digest code",
     determinism.check_rep004),
    ("REP005", "builtin hash() in digest code",
     determinism.check_rep005),
    ("REP101", "lock.acquire() without guaranteed release",
     concurrency.check_rep101),
    ("REP102", "thread or event loop created before a fork",
     concurrency.check_rep102),
    ("REP103", "worker entry mutating module-level state",
     concurrency.check_rep103),
    ("REP201", "blocking call inside async def",
     async_rules.check_rep201),
    ("REP202", "coroutine called but never awaited",
     async_rules.check_rep202),
    ("REP203", "create_task handle dropped",
     async_rules.check_rep203),
)

#: (rule id, one-line summary, checker) -- cross-file rules.
PROJECT_RULES = (
    ("REP301", "event kind not in the EVENT_KINDS schema",
     protocol.check_rep301),
    ("REP302", "registry scheme vs kernel calculator mismatch",
     protocol.check_rep302),
    ("REP303", "CLI artifact names out of sync with dispatch",
     protocol.check_rep303),
    ("REP304", "registered scheme never referenced by tests",
     protocol.check_rep304),
    ("REP305", "wire op not in service.protocol.OPS",
     protocol.check_rep305),
)

#: ``{rule id: one-line summary}`` for every rule (parse errors too).
RULES = {
    PARSE_RULE: "file does not parse",
    **{rid: summary for rid, summary, _ in FILE_RULES},
    **{rid: summary for rid, summary, _ in PROJECT_RULES},
}


def rule_ids() -> list:
    """Every reportable rule id, sorted."""
    return sorted(RULES)
