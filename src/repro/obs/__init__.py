"""repro.obs -- unified tracing, metrics, and structured logging.

One span/event model (:class:`ObsEvent`) for the chunk lifecycle
``request -> assign -> compute -> result`` (plus heartbeats, ACP
updates, counter fetch-adds, and fault injections), emitted by all
five execution paths:

* the master--slave simulator (``simulate(..., collector=...)``),
* the TreeS simulator (``simulate_tree(..., collector=...)``),
* the decentral contention simulator
  (``simulate_decentral(..., collector=...)``),
* the real master--worker runtime
  (``run_parallel(..., collector=...)`` -- master-side events plus
  worker-side shard writers merged after the run),
* the decentral counter runtime
  (``run_decentral(..., collector=...)`` -- events ride in the shard
  files).

Because every substrate speaks the same schema, simulator and runtime
traces are directly diffable (:func:`canonical_stream`), one metrics
catalog serves all of them (:func:`metrics_from_events`), and the
trace auditor (:func:`repro.verify.audit_events`) checks any of them.

Typical use::

    from repro import simulate, paper_workload, paper_cluster
    from repro.obs import capture, trace_report
    wl = paper_workload(width=400, height=200)
    with capture() as trace:
        simulate("TSS", wl, paper_cluster(wl), collector=trace)
    print(trace_report(trace.events))

The disabled path is ~free: instrumentation sites gate on a falsy
:class:`NullCollector`, so runs without a collector never construct
an event (guarded by ``benchmarks/test_bench_obs.py``).
"""

from .critpath import (
    CATEGORIES,
    ChainLink,
    CritPathReport,
    DriftReport,
    WorkerBreakdown,
    critical_path,
    fastpath_drift,
)
from .collect import (
    NULL,
    BufferedCollector,
    Collector,
    JsonlCollector,
    NullCollector,
    TaggedCollector,
    capture,
    resolve,
)
from .events import (
    EVENT_KINDS,
    JOB_KINDS,
    LIFECYCLE_KINDS,
    SOURCES,
    ObsEvent,
    SchemaError,
    validate_event,
)
from .export import (
    canonical_stream,
    read_jsonl,
    stream_digest,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .logutil import (
    ENV_LOG_LEVEL,
    configure_logging,
    get_logger,
    write_artifact,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_events,
)
from .report import WorkerSummary, summarize_workers, trace_report
from .timeseries import RollingMetrics, RollingWindow

__all__ = [
    "EVENT_KINDS",
    "JOB_KINDS",
    "LIFECYCLE_KINDS",
    "SOURCES",
    "ENV_LOG_LEVEL",
    "NULL",
    "ObsEvent",
    "SchemaError",
    "validate_event",
    "Collector",
    "NullCollector",
    "BufferedCollector",
    "JsonlCollector",
    "TaggedCollector",
    "capture",
    "resolve",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "canonical_stream",
    "stream_digest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_from_events",
    "configure_logging",
    "get_logger",
    "write_artifact",
    "WorkerSummary",
    "summarize_workers",
    "trace_report",
    "RollingWindow",
    "RollingMetrics",
    "CATEGORIES",
    "WorkerBreakdown",
    "ChainLink",
    "CritPathReport",
    "DriftReport",
    "critical_path",
    "fastpath_drift",
]
