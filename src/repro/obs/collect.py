"""Collectors: where emitted events go.

The contract every instrumented hot path relies on:

* Instrumented code stores ``self.obs = resolve(collector)`` and wraps
  each emission site in ``if self.obs: ...`` -- the
  :class:`NullCollector` is *falsy*, so the disabled path costs one
  truth test and never even constructs the event object.  That is the
  whole design of the ~zero-cost off switch (guarded by
  ``benchmarks/test_bench_obs.py``).
* Collectors never validate on emit (schema checks live in tests and
  importers) and never raise out of ``emit`` for flow-control reasons:
  an observability layer must not alter the run it observes.
* :class:`JsonlCollector` is process- and thread-safe: lines are
  buffered and flushed with a single ``O_APPEND`` write under a lock,
  so concurrent emitters (the chaos driver thread, the master loop)
  interleave whole lines, never fragments.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import threading
from typing import Iterator, Optional, Union

from .events import ObsEvent

__all__ = [
    "Collector",
    "NullCollector",
    "BufferedCollector",
    "JsonlCollector",
    "TaggedCollector",
    "NULL",
    "resolve",
    "capture",
]


class Collector(object):
    """Base collector: truthy, must implement :meth:`emit`."""

    def __bool__(self) -> bool:
        # Explicit: a subclass growing __len__ (BufferedCollector) must
        # not become falsy while empty -- emission sites gate on truth.
        return True

    def emit(self, event: ObsEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to their destination (no-op default)."""

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "Collector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullCollector(Collector):
    """The disabled path: falsy, so emission sites skip entirely."""

    def __bool__(self) -> bool:
        return False

    def emit(self, event: ObsEvent) -> None:  # pragma: no cover - gated
        pass


#: The shared no-op collector every instrumented path defaults to.
NULL = NullCollector()


def resolve(collector: Optional[Collector]) -> Collector:
    """Normalize an optional collector argument to a real collector."""
    return NULL if collector is None else collector


class BufferedCollector(Collector):
    """In-memory event list; appends are GIL-atomic (thread-safe)."""

    def __init__(self) -> None:
        self.events: list[ObsEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self.events)

    def emit(self, event: ObsEvent) -> None:
        self.events.append(event)

    def extend(self, events) -> None:
        """Fan-in: absorb events gathered elsewhere (shards, pools)."""
        self.events.extend(events)

    def by_kind(self, kind: str) -> list[ObsEvent]:
        return [e for e in self.events if e.kind == kind]


class TaggedCollector(Collector):
    """Prefix every event's ``detail`` with a tag, then forward.

    The multi-tenant service wraps one of these per tenant around a
    shared sink, so a merged stream stays attributable
    (``detail="tenant=alice …"``) without changing the event schema.
    Events whose detail already carries the tag pass through untouched
    (server-side job events bake their tenant in at construction).
    """

    def __init__(self, inner: Collector, tag: str) -> None:
        if not tag:
            raise ValueError("TaggedCollector needs a non-empty tag")
        self.inner = inner
        self.tag = tag
        self._prefix = f"{tag} "

    def emit(self, event: ObsEvent) -> None:
        detail = event.detail
        if detail.startswith(self._prefix) or detail == self.tag:
            self.inner.emit(event)
            return
        tagged = self._prefix + detail if detail else self.tag
        self.inner.emit(dataclasses.replace(event, detail=tagged))

    def flush(self) -> None:
        self.inner.flush()


class JsonlCollector(Collector):
    """Append-only JSONL sink; safe across threads and processes.

    Lines accumulate in memory and are written ``flush_every`` events
    at a time with one :func:`os.write` on an ``O_APPEND`` descriptor.
    POSIX guarantees O_APPEND writes are atomic with respect to each
    other, so multiple processes can share one trace file and the
    reader still sees whole lines.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 flush_every: int = 256) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = os.fspath(path)
        self.flush_every = int(flush_every)
        self._lines: list[str] = []
        self._lock = threading.Lock()
        # Create eagerly so an empty run still leaves a readable file.
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        os.close(fd)

    def emit(self, event: ObsEvent) -> None:
        line = json.dumps(event.to_dict(), sort_keys=True)
        with self._lock:
            self._lines.append(line)
            if len(self._lines) >= self.flush_every:
                self._flush_locked()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._lines:
            return
        payload = ("\n".join(self._lines) + "\n").encode("utf-8")
        self._lines = []
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)


@contextlib.contextmanager
def capture() -> Iterator[BufferedCollector]:
    """Capture events in memory::

        from repro.obs import capture
        with capture() as trace:
            simulate("TSS", wl, cluster, collector=trace)
        print(len(trace.events))
    """
    collector = BufferedCollector()
    yield collector
