"""Critical-path explanation over a unified event stream.

The paper's argument is about *where the time goes*: a chunk ladder is
good when no worker is left waiting on the master or idling after its
last chunk while a straggler finishes.  This module turns any ObsEvent
stream (sim, runtime, decentral, or a service trace) into that
explanation, offline and purely -- no clock reads, no substrate
imports, deterministic output for a deterministic stream.

Three products:

* :func:`critical_path` -- per-worker attribution of the full span to
  ``compute`` / ``master-wait`` / ``network`` / ``fault-recovery`` /
  ``idle`` (the categories tile each worker's span exactly, by
  construction), the blocking chain from the makespan backwards, and
  the paper's load-imbalance metrics (finish-time spread, busy-time
  sigma).
* :func:`fastpath_drift` -- diff observed chunk completion times
  against an analytic fast-path prediction
  (:func:`repro.simulation.fastpath` chunk records, passed in by the
  caller so ``repro.obs`` stays import-free of the substrates).
* ``CritPathReport.to_dict`` / ``summary`` -- JSON-able and
  human-readable forms for the ``critpath-report`` artifact.

Timing model (matches the master DES): a ``compute`` event at ``t``
with duration ``value`` means busy ``[t, t + value)``; the gap that
*follows* an event is attributed by what the worker was waiting on
next -- after a ``request`` or ``assign`` the wire (``network``),
after a ``result`` landed the master's FIFO (``master-wait``), after
a ``fault`` recovery (``fault-recovery``) until the ``restart``,
after ``terminate`` nothing (``idle``).  The lead-in before a
worker's first event is ``network`` (its first request is in flight).
Point kinds that do not change what the worker waits on (heartbeat,
acp-update, adapt, job-*) are transparent.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Optional, Sequence

from .events import ObsEvent

__all__ = [
    "CATEGORIES",
    "WorkerBreakdown",
    "ChainLink",
    "CritPathReport",
    "DriftReport",
    "critical_path",
    "fastpath_drift",
]

#: The attribution categories; each worker's span tiles into these.
CATEGORIES = (
    "compute", "master-wait", "network", "fault-recovery", "idle",
)

#: Kinds that never change what a worker is waiting on.
_TRANSPARENT = frozenset({
    "heartbeat", "acp-update", "adapt",
    "job-submit", "job-assign", "job-result", "job-reject",
})

#: What the worker waits on *after* each boundary kind fires.
_AFTER = {
    "request": "network",       # request (+ piggyback) in flight
    "result": "master-wait",    # landed; waiting on master FIFO
    "assign": "network",        # reply in flight back to the worker
    "park": "master-wait",      # parked at the master
    "fetch-add": "network",     # counter round-trip tail
    "steal": "network",         # stolen interval in transit
    "repair": "idle",           # post-run repair; worker span over
    "fault": "fault-recovery",
    "restart": "network",       # rejoin request goes out immediately
    "terminate": "idle",
}


@dataclasses.dataclass
class WorkerBreakdown(object):
    """Where one worker's span ``[first_t, span_end]`` went."""

    worker: int
    first_t: float
    span_end: float
    finish_t: float           # end of its last productive activity
    chunks: int
    iterations: int
    categories: dict[str, float] = dataclasses.field(
        default_factory=dict
    )

    @property
    def span(self) -> float:
        return self.span_end - self.first_t

    @property
    def busy(self) -> float:
        return self.categories.get("compute", 0.0)

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "first_t": self.first_t,
            "span_end": self.span_end,
            "finish_t": self.finish_t,
            "chunks": self.chunks,
            "iterations": self.iterations,
            "categories": dict(self.categories),
        }


@dataclasses.dataclass
class ChainLink(object):
    """One hop of the blocking chain, walking back from the makespan."""

    kind: str
    worker: int
    t: float
    start: Optional[int] = None
    stop: Optional[int] = None

    def to_dict(self) -> dict:
        doc: dict = {
            "kind": self.kind, "worker": self.worker, "t": self.t,
        }
        if self.start is not None:
            doc["start"] = self.start
            doc["stop"] = self.stop
        return doc


@dataclasses.dataclass
class CritPathReport(object):
    """The full explanation for one event stream."""

    makespan: float
    workers: list[WorkerBreakdown]
    chain: list[ChainLink]
    finish_max: float
    finish_mean: float
    finish_spread: float      # max - min finish time
    imbalance: float          # (max - min) / mean finish time
    busy_sigma: float         # population sigma of busy (compute) time

    def to_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "finish_max": self.finish_max,
            "finish_mean": self.finish_mean,
            "finish_spread": self.finish_spread,
            "imbalance": self.imbalance,
            "busy_sigma": self.busy_sigma,
            "workers": [w.to_dict() for w in self.workers],
            "chain": [c.to_dict() for c in self.chain],
        }

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"makespan {self.makespan:.6f}s  "
            f"finish spread {self.finish_spread:.6f}s  "
            f"imbalance {self.imbalance:.4f}  "
            f"busy sigma {self.busy_sigma:.6f}s",
        ]
        for w in sorted(self.workers, key=lambda w: w.worker):
            span = w.span or 1.0
            parts = "  ".join(
                f"{cat} {w.categories.get(cat, 0.0):.4f}s"
                f" ({100.0 * w.categories.get(cat, 0.0) / span:.1f}%)"
                for cat in CATEGORIES
                if w.categories.get(cat, 0.0) > 0.0
            )
            lines.append(
                f"  worker {w.worker}: {w.chunks} chunks, "
                f"{w.iterations} iters, finish {w.finish_t:.6f}s | "
                f"{parts}"
            )
        if self.chain:
            hops = " <- ".join(
                f"{c.kind}@{c.t:.4f}(w{c.worker})"
                for c in self.chain[:8]
            )
            more = len(self.chain) - 8
            tail = f" <- ... ({more} more)" if more > 0 else ""
            lines.append(f"  blocking chain: {hops}{tail}")
        return "\n".join(lines)


def _span_categories(
    events: Sequence[ObsEvent], makespan: float
) -> WorkerBreakdown:
    """Attribute one worker's span; events are time-sorted."""
    worker = events[0].worker
    first_t = events[0].t
    categories = {cat: 0.0 for cat in CATEGORIES}
    cursor = first_t
    pending = "network"
    finish_t = first_t
    chunks = 0
    iterations = 0

    def charge(upto: float) -> None:
        nonlocal cursor
        if upto > cursor:
            categories[pending] += upto - cursor
            cursor = upto

    for ev in events:
        if ev.kind in _TRANSPARENT:
            continue
        charge(ev.t)
        if ev.kind == "compute":
            duration = ev.value or 0.0
            categories["compute"] += duration
            cursor = ev.t + duration
            finish_t = max(finish_t, cursor)
            chunks += 1
            iterations += (ev.stop or 0) - (ev.start or 0)
            pending = "network"   # next request goes out at finish
        else:
            if ev.kind == "result":
                finish_t = max(finish_t, ev.t)
            pending = _AFTER.get(ev.kind, pending)
    span_end = max(cursor, makespan)
    charge(span_end)
    breakdown = WorkerBreakdown(
        worker=worker, first_t=first_t, span_end=span_end,
        finish_t=finish_t, chunks=chunks, iterations=iterations,
        categories={
            k: v for k, v in categories.items() if v > 0.0
        } or {"idle": 0.0},
    )
    return breakdown


def _blocking_chain(
    per_worker: dict[int, list[ObsEvent]],
    last_result: Optional[ObsEvent],
) -> list[ChainLink]:
    """Walk back from the makespan result through the cycle that
    produced it, then through the same worker's preceding cycles.

    The chain answers "what was the run waiting on at the end": the
    final ``result``, the ``compute`` that produced it, the ``assign``
    that dispatched it, the ``request`` that asked for it -- and so on
    back towards t = 0.  Purely positional (matched on interval and
    order), so it works on any substrate's stream.
    """
    if last_result is None:
        return []
    events = per_worker.get(last_result.worker, [])
    idx = len(events) - 1
    while idx >= 0 and events[idx] is not last_result:
        idx -= 1
    chain = [ChainLink(
        kind="result", worker=last_result.worker, t=last_result.t,
        start=last_result.start, stop=last_result.stop,
    )]
    # Walk each cycle back: the compute that produced the interval,
    # the assign that dispatched it, the request that asked for it;
    # that request went out when the *previous* compute ended (or at
    # t=0 for the first cycle), so the next hop re-anchors on the
    # nearest preceding compute, whatever its interval.
    want = "compute"
    match: Optional[tuple] = (last_result.start, last_result.stop)
    idx -= 1
    while idx >= 0 and len(chain) < 64:
        ev = events[idx]
        idx -= 1
        if ev.kind != want:
            continue
        if want == "compute":
            if match is not None and (ev.start, ev.stop) != match:
                continue
            match = (ev.start, ev.stop)
            nxt = "assign"
        elif want == "assign":
            if (ev.start, ev.stop) != match:
                continue
            match = None
            nxt = "request"
        else:  # request -- no interval; preceding compute re-anchors
            nxt = "compute"
        chain.append(ChainLink(
            kind=ev.kind, worker=ev.worker, t=ev.t,
            start=ev.start, stop=ev.stop,
        ))
        want = nxt
    return chain


def critical_path(events: Iterable[ObsEvent]) -> CritPathReport:
    """Explain an event stream: attribution, chain, imbalance.

    ``makespan`` is the last ``result`` arrival -- the paper's
    :math:`T_p` -- falling back to the last event time for streams
    with no result events.
    """
    ordered = sorted(
        (ev for ev in events if ev.worker >= 0),
        key=lambda ev: ev.t,
    )
    per_worker: dict[int, list[ObsEvent]] = {}
    last_result: Optional[ObsEvent] = None
    for ev in ordered:
        per_worker.setdefault(ev.worker, []).append(ev)
        if ev.kind == "result" and (
            last_result is None or ev.t >= last_result.t
        ):
            last_result = ev
    if last_result is not None:
        makespan = last_result.t
    elif ordered:
        makespan = max(
            ev.t + (ev.value or 0.0) if ev.kind == "compute" else ev.t
            for ev in ordered
        )
    else:
        makespan = 0.0

    workers = [
        _span_categories(evs, makespan)
        for _, evs in sorted(per_worker.items())
    ]
    finishes = [w.finish_t for w in workers]
    busies = [w.busy for w in workers]
    finish_max = max(finishes) if finishes else 0.0
    finish_mean = (
        sum(finishes) / len(finishes) if finishes else 0.0
    )
    finish_spread = (
        finish_max - min(finishes) if finishes else 0.0
    )
    imbalance = (
        finish_spread / finish_mean if finish_mean > 0 else 0.0
    )
    busy_sigma = 0.0
    if busies:
        mean_busy = sum(busies) / len(busies)
        busy_sigma = math.sqrt(
            sum((b - mean_busy) ** 2 for b in busies) / len(busies)
        )
    return CritPathReport(
        makespan=makespan,
        workers=workers,
        chain=_blocking_chain(per_worker, last_result),
        finish_max=finish_max,
        finish_mean=finish_mean,
        finish_spread=finish_spread,
        imbalance=imbalance,
        busy_sigma=busy_sigma,
    )


@dataclasses.dataclass
class DriftReport(object):
    """Observed-vs-predicted chunk timing diff."""

    matched: int
    unmatched_observed: int
    unmatched_predicted: int
    max_abs_drift: float
    mean_abs_drift: float

    @property
    def ok(self) -> bool:
        """No unmatched chunks and drift within float-sum noise."""
        return (
            self.unmatched_observed == 0
            and self.unmatched_predicted == 0
            and self.max_abs_drift <= 1e-9
        )

    def to_dict(self) -> dict:
        return {
            "matched": self.matched,
            "unmatched_observed": self.unmatched_observed,
            "unmatched_predicted": self.unmatched_predicted,
            "max_abs_drift": self.max_abs_drift,
            "mean_abs_drift": self.mean_abs_drift,
            "ok": self.ok,
        }


def fastpath_drift(
    events: Iterable[ObsEvent],
    predicted,
) -> DriftReport:
    """Diff observed chunk completion times against a prediction.

    ``predicted`` is an iterable of chunk records with ``start``,
    ``stop`` and ``completed_at`` attributes (e.g.
    ``SimResult.chunks`` from an analytic fast-path run, where
    ``completed_at`` is the compute finish).  The observed completion
    of a chunk is its ``compute`` event's ``t + value``.  Chunks are
    matched on their ``[start, stop)`` interval; duplicate intervals
    (chaos reruns) match in time order.
    """
    observed: dict[tuple, list[float]] = {}
    n_observed = 0
    for ev in events:
        if ev.kind != "compute" or ev.start is None:
            continue
        end = ev.t + (ev.value or 0.0)
        observed.setdefault((ev.start, ev.stop), []).append(end)
        n_observed += 1
    for times in observed.values():
        times.sort()
    drifts: list[float] = []
    unmatched_predicted = 0
    for rec in predicted:
        key = (rec.start, rec.stop)
        times = observed.get(key)
        if not times:
            unmatched_predicted += 1
            continue
        drifts.append(abs(times.pop(0) - rec.completed_at))
    unmatched_observed = n_observed - len(drifts)
    return DriftReport(
        matched=len(drifts),
        unmatched_observed=unmatched_observed,
        unmatched_predicted=unmatched_predicted,
        max_abs_drift=max(drifts) if drifts else 0.0,
        mean_abs_drift=(
            sum(drifts) / len(drifts) if drifts else 0.0
        ),
    )
