"""The unified event schema: one span/event model for every substrate.

The paper's whole evaluation is per-worker timing behaviour -- chunk
sizes, idle gaps, parallel times -- compared *across* scheduling
schemes.  Before this module each substrate recorded timing its own
way (``ChunkRecord`` lists in the simulators, ``(wid, start, stop)``
tuples in the master runtime, pickled shard records in the decentral
runtime), so cross-substrate questions ("does the simulator's chunk
lifecycle match the real runtime's?") needed substrate-specific
plumbing.  :class:`ObsEvent` is the one record type they all emit:

========== ===========================================================
kind       meaning
========== ===========================================================
request    a worker asked for work (master request / counter claim)
assign     the dispatcher handed an interval to a worker
compute    a worker started executing ``[start, stop)``; ``value``
           carries the duration
result     the interval's results became durable (landed on the
           master, or hit the shard file / flush arrival)
terminate  a worker was released (loop exhausted for it)
heartbeat  a liveness beat (real runtime only)
acp-update a worker registered its ACP with the scheduler
fetch-add  one atomic counter access (decentral); ``value`` carries
           the queueing delay (contention), ``detail`` is ``global``
           or ``local``
steal      a TreeS thief took ``[start, stop)`` from ``detail``'s PE
park       the dispatcher parked an idle worker (work may reappear)
fault      a fault fired: ``detail`` is ``death`` / ``stall`` /
           ``delay`` / ``loss`` / ``spike`` / ``deadline``
restart    a dead worker rejoined
repair     the decentral parent re-executed a hole after the run
adapt      the adaptive meta-scheduler opened a stage: ``[start,
           stop)`` is the stage window, ``detail`` the decision
           (``select TSS`` / ``retune CSS(64) k=12``), ``value`` the
           efficiency posted for the previous stage
job-submit the service admitted a tenant's job (``detail`` carries
           ``tenant=... job=... scheme=...``)
job-assign the service finished cost-profile resolution and queued
           the job onto the shared pool
job-result the job reached a terminal success; ``value`` carries the
           pool execution time, ``worker`` the slot that ran it
job-reject admission refused (``detail`` names the backpressure
           reason: ``queue-full`` / ``tenant-quota`` / ``draining``)
           or the job failed terminally
========== ===========================================================

The four ``job-*`` kinds are the *service-level* lifecycle -- one
event per job transition, emitted by :mod:`repro.service.server` into
per-tenant streams -- as opposed to the chunk-level lifecycle the
substrates emit per interval.

``t`` is the substrate's own clock -- virtual seconds in the
simulators, seconds since run start in the real runtimes; ``wall`` is
absolute wall-clock time where one exists.  Both are excluded from
:func:`repro.obs.export.canonical_stream`, which is what makes
simulator and runtime traces directly diffable.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

__all__ = [
    "EVENT_KINDS",
    "SOURCES",
    "LIFECYCLE_KINDS",
    "JOB_KINDS",
    "ObsEvent",
    "SchemaError",
    "validate_event",
]

#: Every legal ``ObsEvent.kind``.
EVENT_KINDS = frozenset({
    "request",
    "assign",
    "compute",
    "result",
    "terminate",
    "heartbeat",
    "acp-update",
    "fetch-add",
    "steal",
    "park",
    "fault",
    "restart",
    "repair",
    "adapt",
    "job-submit",
    "job-assign",
    "job-result",
    "job-reject",
})

#: The service-level job lifecycle subset (one event per job
#: transition, vs. :data:`LIFECYCLE_KINDS` which is per chunk).
JOB_KINDS = frozenset({
    "job-submit", "job-assign", "job-result", "job-reject",
})

#: The chunk-lifecycle subset (the ``request -> assign -> compute ->
#: result`` spine every substrate shares).
LIFECYCLE_KINDS = frozenset({"request", "assign", "compute", "result"})

#: Every execution path that emits events.
SOURCES = frozenset({
    "sim.master",       # simulation.engine.MasterSlaveSimulation
    "sim.tree",         # simulation.tree_engine.TreeSimulation
    "sim.decentral",    # decentral.sim_engine.DecentralSimulation
    "runtime.master",   # runtime.master.master_loop (master side)
    "runtime.worker",   # runtime.worker.worker_main (shard writer)
    "runtime.decentral",  # decentral.executor (workers + repair)
    "chaos",            # fault drivers (ChaosController and kin)
    "service",          # service.server job-level lifecycle
})

#: Kinds that must carry an interval.
_INTERVAL_KINDS = frozenset({"compute", "result", "steal", "repair"})


class SchemaError(ValueError):
    """An event violates the unified schema."""


@dataclasses.dataclass(frozen=True)
class ObsEvent(object):
    """One observation; immutable, picklable, JSON-serializable.

    ``worker`` is ``-1`` for events not attributable to one worker
    (e.g. a master stall).  ``value`` is the kind-specific measurement
    (compute duration, fetch-add queueing delay, stall length);
    ``detail`` the kind-specific qualifier (fault kind, counter tier,
    steal victim).
    """

    kind: str
    source: str
    t: float
    worker: int = -1
    start: Optional[int] = None
    stop: Optional[int] = None
    stage: Optional[int] = None
    acp: Optional[int] = None
    value: Optional[float] = None
    detail: str = ""
    wall: Optional[float] = None

    def to_dict(self) -> dict[str, Any]:
        """Compact dict form: unset optional fields are omitted."""
        doc: dict[str, Any] = {
            "kind": self.kind,
            "source": self.source,
            "t": self.t,
        }
        if self.worker != -1:
            doc["worker"] = self.worker
        for field in ("start", "stop", "stage", "acp", "value", "wall"):
            v = getattr(self, field)
            if v is not None:
                doc[field] = v
        if self.detail:
            doc["detail"] = self.detail
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ObsEvent":
        try:
            return cls(
                kind=doc["kind"],
                source=doc["source"],
                t=float(doc["t"]),
                worker=int(doc.get("worker", -1)),
                start=doc.get("start"),
                stop=doc.get("stop"),
                stage=doc.get("stage"),
                acp=doc.get("acp"),
                value=doc.get("value"),
                detail=doc.get("detail", ""),
                wall=doc.get("wall"),
            )
        except KeyError as exc:
            raise SchemaError(f"event dict missing field {exc}") from exc


def validate_event(event: ObsEvent) -> ObsEvent:
    """Check ``event`` against the schema; returns it or raises.

    Collectors do *not* validate on the hot path (emission must stay
    cheap); validation belongs in tests, importers and the auditor.
    """
    if event.kind not in EVENT_KINDS:
        raise SchemaError(
            f"unknown event kind {event.kind!r}; legal kinds: "
            f"{sorted(EVENT_KINDS)}"
        )
    if event.source not in SOURCES:
        raise SchemaError(
            f"unknown event source {event.source!r}; legal sources: "
            f"{sorted(SOURCES)}"
        )
    if not isinstance(event.t, (int, float)) or event.t < 0:
        raise SchemaError(
            f"event time must be a non-negative number, got {event.t!r}"
        )
    if event.kind in _INTERVAL_KINDS:
        if event.start is None or event.stop is None:
            raise SchemaError(
                f"{event.kind!r} events must carry an interval, got "
                f"start={event.start!r} stop={event.stop!r}"
            )
        if event.stop <= event.start or event.start < 0:
            raise SchemaError(
                f"{event.kind!r} event interval [{event.start}, "
                f"{event.stop}) is empty or negative"
            )
    if event.start is not None and event.stop is not None \
            and event.stop < event.start:
        raise SchemaError(
            f"event interval [{event.start}, {event.stop}) is reversed"
        )
    if event.kind == "fault" and not event.detail:
        raise SchemaError("fault events must name the fault in `detail`")
    if event.value is not None and event.value < 0:
        raise SchemaError(
            f"event value must be >= 0, got {event.value!r}"
        )
    return event
