"""Exporters: JSONL, Chrome trace-event format, canonical stream.

* **JSONL** is the interchange format: one compact event dict per
  line, loadable by :func:`read_jsonl` (round-trips exactly).
* **Chrome trace-event format** (``chrome://tracing`` / Perfetto):
  one track per worker.  Compute spans become complete ("X") events,
  everything else instant ("i") events, so a captured run -- simulated
  or real -- can be inspected on a zoomable timeline.
* The **canonical stream** is the cross-substrate diff surface: the
  lifecycle events that are *deterministic* for a scheme (the executed
  interval tiling), stripped of clocks and worker identity, sorted.
  A simulated run and a real run of the same scheme under the same
  fault plan produce byte-identical canonical streams -- that equality
  is what validates the simulator against reality (see
  ``tests/obs/test_cross_substrate.py``).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from typing import Iterable, Sequence, Union

from .events import ObsEvent

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "canonical_stream",
    "stream_digest",
]

#: Microseconds per unit of event time (Chrome traces use us).
_US = 1_000_000.0


def to_jsonl(events: Iterable[ObsEvent]) -> str:
    """Serialize events as JSON lines (compact dict per line)."""
    out = io.StringIO()
    for ev in events:
        out.write(json.dumps(ev.to_dict(), sort_keys=True))
        out.write("\n")
    return out.getvalue()


def write_jsonl(path: Union[str, os.PathLike],
                events: Iterable[ObsEvent]) -> int:
    """Write events to ``path``; returns the number written."""
    events = list(events)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(events))
    return len(events)


def read_jsonl(source: Union[str, os.PathLike]) -> list[ObsEvent]:
    """Load events from a JSONL file path (or raw JSONL text).

    A string containing a newline (or starting with ``{``) is treated
    as JSONL text, anything else as a path.  Blank lines are skipped;
    a torn trailing line (killed writer) is ignored, mirroring the
    decentral shard reader's posture.
    """
    text: str
    if isinstance(source, str) and (
        "\n" in source or source.lstrip().startswith("{")
    ):
        text = source
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    events: list[ObsEvent] = []
    lines = text.split("\n")
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(ObsEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, ValueError):
            if i == len(lines) - 1:
                break  # torn tail from a killed writer
            raise
    return events


def to_chrome_trace(events: Sequence[ObsEvent]) -> dict:
    """Events as a Chrome trace-event document (Perfetto-loadable).

    Layout: one *process* per source substrate, one *thread* (track)
    per worker.  Compute events render as spans (phase "X", duration
    from ``value``); every other kind is an instant marker (phase "i")
    so faults, heartbeats and counter ops line up against the spans.
    """
    sources = sorted({ev.source for ev in events})
    pid_of = {src: i + 1 for i, src in enumerate(sources)}
    trace: list[dict] = []
    for src in sources:
        trace.append({
            "name": "process_name", "ph": "M", "pid": pid_of[src],
            "tid": 0, "args": {"name": src},
        })
    named: set[tuple[int, int]] = set()
    for ev in events:
        pid = pid_of[ev.source]
        tid = ev.worker if ev.worker >= 0 else 9999
        if (pid, tid) not in named:
            named.add((pid, tid))
            trace.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tid,
                "args": {
                    "name": (
                        f"worker {ev.worker}" if ev.worker >= 0
                        else "dispatcher"
                    )
                },
            })
        args = {
            k: v for k, v in ev.to_dict().items()
            if k not in ("kind", "source", "t", "worker")
        }
        if ev.kind == "compute":
            trace.append({
                "name": f"compute [{ev.start}, {ev.stop})",
                "cat": ev.kind,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": ev.t * _US,
                "dur": (ev.value or 0.0) * _US,
                "args": args,
            })
        else:
            trace.append({
                "name": ev.kind + (f":{ev.detail}" if ev.detail else ""),
                "cat": ev.kind,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": ev.t * _US,
                "args": args,
            })
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, os.PathLike],
                       events: Sequence[ObsEvent]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(events), handle)


def canonical_stream(events: Iterable[ObsEvent]) -> list[dict]:
    """The substrate-independent view of a trace.

    Keeps the *durable* lifecycle facts -- which intervals were
    executed and delivered (``result`` events) -- and drops everything
    clock- or identity-bound: ``t`` and ``wall`` (virtual vs wall
    time), ``worker`` (which PE won a chunk is racy on real hardware),
    ``source``, and per-substrate extras.  For a deterministic scheme
    the surviving stream is identical across every substrate, fault
    plan or not: requeued intervals are reassigned verbatim, so the
    executed tiling never moves.
    """
    rows = [
        {"kind": ev.kind, "start": ev.start, "stop": ev.stop}
        for ev in events
        if ev.kind == "result" and ev.start is not None
    ]
    rows.sort(key=lambda r: (r["start"], r["stop"]))
    return rows


def stream_digest(events: Iterable[ObsEvent]) -> str:
    """sha256 over the canonical stream's JSONL serialization."""
    payload = "\n".join(
        json.dumps(row, sort_keys=True) for row in canonical_stream(events)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
