"""Structured stdlib logging for the whole package.

Until this layer existed ``src/`` contained no logging at all --
worker drops, requeues, deadline expiries and chaos injections were
silent.  Every module now logs through ``get_logger(__name__)`` under
the ``repro`` root logger:

* libraries stay quiet by default (a ``NullHandler`` on the root, the
  stdlib's recommended library posture);
* :func:`configure_logging` turns on structured stderr output, with
  the level taken from its argument, ``$REPRO_LOG_LEVEL``, or
  ``WARNING`` in that order -- the CLI wires ``--log-level`` to it;
* artifact text (tables, reports -- the CLI's *product*) goes through
  :func:`write_artifact`, a logger-backed stdout writer whose plain
  formatter keeps the output byte-identical to the old ``print``.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, Union

__all__ = [
    "ENV_LOG_LEVEL",
    "get_logger",
    "configure_logging",
    "write_artifact",
]

#: Environment variable naming the default log level.
ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"

_ROOT = "repro"
_ARTIFACT = "repro.artifact"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


class _StreamProxy(object):
    """Resolves the target stream at write time.

    Handlers capture their stream once; tests (capsys) and callers
    swap ``sys.stdout``/``sys.stderr`` after import, so a late-bound
    proxy is what keeps logging output visible to them.
    """

    def __init__(self, name: str) -> None:
        self._name = name

    def write(self, text: str) -> None:
        getattr(sys, self._name).write(text)

    def flush(self) -> None:
        stream = getattr(sys, self._name)
        if hasattr(stream, "flush"):
            stream.flush()


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (idempotent, quiet by
    default)."""
    root = logging.getLogger(_ROOT)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def resolve_level(level: Optional[Union[int, str]] = None) -> int:
    """Numeric level from arg, ``$REPRO_LOG_LEVEL``, or WARNING."""
    if level is None:
        level = os.environ.get(ENV_LOG_LEVEL) or "WARNING"
    if isinstance(level, int):
        return level
    parsed = logging.getLevelName(str(level).upper())
    if not isinstance(parsed, int):
        raise ValueError(
            f"unknown log level {level!r}; use DEBUG/INFO/WARNING/"
            f"ERROR/CRITICAL or a number"
        )
    return parsed


def configure_logging(
    level: Optional[Union[int, str]] = None,
    stream: str = "stderr",
) -> logging.Logger:
    """Install (or reconfigure) the package's structured handler.

    Idempotent: the previous structured handler is replaced, never
    stacked, so repeated CLI invocations in one process do not
    multiply output.
    """
    root = get_logger(_ROOT)
    root.setLevel(resolve_level(level))
    for handler in list(root.handlers):
        if getattr(handler, "_repro_structured", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(_StreamProxy(stream))
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, "_repro_structured", True)
    root.addHandler(handler)
    return root


def _artifact_logger() -> logging.Logger:
    logger = logging.getLogger(_ARTIFACT)
    if not any(getattr(h, "_repro_artifact", False)
               for h in logger.handlers):
        handler = logging.StreamHandler(_StreamProxy("stdout"))
        handler.setFormatter(logging.Formatter("%(message)s"))
        setattr(handler, "_repro_artifact", True)
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        # Artifact text must not also reach the structured stderr
        # handler (it is the program's product, not a diagnostic).
        logger.propagate = False
    return logger


def write_artifact(text: str) -> None:
    """Emit artifact text on stdout through the logging stack.

    The replacement for the CLI's bare ``print``: same bytes on
    stdout, but routed through a handler so it honours redirection,
    testing hooks, and future handler swaps (files, pagers).
    """
    _artifact_logger().info("%s", text)
