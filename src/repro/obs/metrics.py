"""Lightweight metrics registry: counters, gauges, histograms.

No external dependency (the container has no prometheus client and
must not grow one): a registry is a named bag of three primitive types
with a JSON-able :meth:`MetricsRegistry.snapshot`.  The standard run
metrics -- chunk-size distribution, dispatch latency, per-worker idle
time, counter contention, heartbeat misses, restarts -- are *derived*
from the unified event stream by :func:`metrics_from_events`, so any
substrate that emits schema events gets the full catalog for free.
"""

from __future__ import annotations

import bisect
import dataclasses
import json
from typing import Iterable, Optional, Sequence

from .events import ObsEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_from_events",
]

#: Default histogram bucket bounds: log-ish spread covering chunk
#: sizes (iterations) and latencies (seconds) alike.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0, 5000.0,
)


@dataclasses.dataclass
class Counter(object):
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclasses.dataclass
class Gauge(object):
    """A value that can go anywhere."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram(object):
    """Fixed-bucket histogram with count/sum/min/max."""

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # +inf tail
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds.

        The extremes are exact: q=0 returns the observed minimum and
        q=1 the observed maximum (a bucket bound would misreport both
        -- ``seen >= q * count`` is trivially true at q=0).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for bound, n in zip(self.bounds, self.counts):
            seen += n
            if seen >= target:
                return bound
        return self.max

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                str(b): c for b, c in zip(self.bounds, self.counts)
            },
            "overflow": self.counts[-1],
        }


class MetricsRegistry(object):
    """Named metrics with get-or-create accessors and a JSON snapshot."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram,
                         lambda: Histogram(name, buckets))

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Per-run snapshot: ``{metric name: typed snapshot dict}``."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def metrics_from_events(
    events: Iterable[ObsEvent],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Derive the standard metric catalog from a unified event stream.

    Catalog (see ``docs/observability.md``):

    * ``chunk_size`` (histogram, iterations) -- from compute events;
    * ``compute_seconds`` (histogram) -- compute durations;
    * ``dispatch_latency`` (histogram, seconds) -- per-worker
      request -> next assign gap;
    * ``worker_idle_seconds`` (histogram) -- per-worker gap between a
      chunk's result/compute-end and the next assignment;
    * ``counter_wait_seconds`` (histogram) -- fetch-add queueing delay
      (decentral contention);
    * ``counter_ops_global`` / ``counter_ops_local`` (counters);
    * ``chunks_total`` / ``iterations_total`` / ``results_total`` /
      ``heartbeats_total`` / ``steals_total`` / ``repairs_total``
      (counters);
    * ``faults_total`` plus ``faults_<detail>`` (counters);
    * ``heartbeat_misses`` (counter) -- deadline-expiry faults;
    * ``restarts_total`` (counter);
    * ``workers`` (gauge) -- distinct workers observed.
    """
    reg = registry if registry is not None else MetricsRegistry()
    chunk_size = reg.histogram("chunk_size")
    compute_seconds = reg.histogram("compute_seconds")
    dispatch = reg.histogram("dispatch_latency")
    idle = reg.histogram("worker_idle_seconds")
    counter_wait = reg.histogram("counter_wait_seconds")
    chunks_total = reg.counter("chunks_total")
    iterations_total = reg.counter("iterations_total")
    results_total = reg.counter("results_total")
    heartbeats = reg.counter("heartbeats_total")
    steals = reg.counter("steals_total")
    repairs = reg.counter("repairs_total")
    faults = reg.counter("faults_total")
    misses = reg.counter("heartbeat_misses")
    restarts = reg.counter("restarts_total")
    workers_gauge = reg.gauge("workers")

    last_request: dict[int, float] = {}
    last_done: dict[int, float] = {}
    workers: set[int] = set()
    for ev in events:
        if ev.worker >= 0:
            workers.add(ev.worker)
        kind = ev.kind
        if kind == "request":
            last_request[ev.worker] = ev.t
        elif kind == "assign":
            at = last_request.pop(ev.worker, None)
            if at is not None and ev.t >= at:
                dispatch.observe(ev.t - at)
            done = last_done.pop(ev.worker, None)
            if done is not None and ev.t >= done:
                idle.observe(ev.t - done)
        elif kind == "compute":
            chunks_total.inc()
            size = (ev.stop or 0) - (ev.start or 0)
            chunk_size.observe(size)
            iterations_total.inc(size)
            if ev.value is not None:
                compute_seconds.observe(ev.value)
                last_done[ev.worker] = ev.t + ev.value
        elif kind == "result":
            results_total.inc()
            last_done[ev.worker] = max(
                ev.t, last_done.get(ev.worker, 0.0)
            )
        elif kind == "heartbeat":
            heartbeats.inc()
        elif kind == "fetch-add":
            if ev.detail == "local":
                reg.counter("counter_ops_local").inc()
            else:
                reg.counter("counter_ops_global").inc()
            if ev.value is not None:
                counter_wait.observe(ev.value)
        elif kind == "steal":
            steals.inc()
        elif kind == "repair":
            repairs.inc()
        elif kind == "fault":
            faults.inc()
            reg.counter(f"faults_{ev.detail or 'unknown'}").inc()
            if ev.detail == "deadline":
                misses.inc()
        elif kind == "restart":
            restarts.inc()
    workers_gauge.set(len(workers))
    return reg
