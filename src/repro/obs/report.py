"""Per-worker utilization/latency summary from a unified trace.

:func:`trace_report` renders the table behind the
``repro-experiments trace-report`` artifact: one row per worker with
chunk/iteration counts, busy vs idle seconds, utilization, and
dispatch-latency statistics, followed by the event census and the
canonical-stream digest (the cross-substrate fingerprint).  It works
on *any* captured trace -- simulated or real -- because it consumes
only schema events.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from .events import ObsEvent
from .export import stream_digest
from .metrics import metrics_from_events

__all__ = ["WorkerSummary", "summarize_workers", "trace_report"]


@dataclasses.dataclass
class WorkerSummary(object):
    """Aggregates for one worker track."""

    worker: int
    chunks: int = 0
    iterations: int = 0
    busy: float = 0.0          # sum of compute durations
    dispatch_sum: float = 0.0  # request -> assign gaps
    dispatch_max: float = 0.0
    dispatches: int = 0
    first_t: Optional[float] = None
    last_t: float = 0.0
    faults: int = 0
    restarts: int = 0

    def observe(self, ev: ObsEvent) -> None:
        self.first_t = ev.t if self.first_t is None else min(
            self.first_t, ev.t
        )
        self.last_t = max(self.last_t, ev.t)
        if ev.kind == "compute":
            self.chunks += 1
            self.iterations += (ev.stop or 0) - (ev.start or 0)
            if ev.value is not None:
                self.busy += ev.value
                self.last_t = max(self.last_t, ev.t + ev.value)
        elif ev.kind == "fault":
            self.faults += 1
        elif ev.kind == "restart":
            self.restarts += 1

    def observe_dispatch(self, latency: float) -> None:
        self.dispatches += 1
        self.dispatch_sum += latency
        self.dispatch_max = max(self.dispatch_max, latency)

    def utilization(self, horizon: float) -> float:
        span = horizon - (self.first_t or 0.0)
        return self.busy / span if span > 0 else 0.0


def summarize_workers(
    events: Iterable[ObsEvent],
) -> dict[int, WorkerSummary]:
    """Per-worker aggregates from a unified stream."""
    summaries: dict[int, WorkerSummary] = {}
    last_request: dict[int, float] = {}
    for ev in events:
        if ev.worker < 0:
            continue
        summary = summaries.get(ev.worker)
        if summary is None:
            summary = summaries[ev.worker] = WorkerSummary(ev.worker)
        summary.observe(ev)
        if ev.kind == "request":
            last_request[ev.worker] = ev.t
        elif ev.kind == "assign":
            at = last_request.pop(ev.worker, None)
            if at is not None and ev.t >= at:
                summary.observe_dispatch(ev.t - at)
    return summaries


def trace_report(
    events: Iterable[ObsEvent],
    title: str = "trace report",
) -> str:
    """Render the per-worker utilization/latency summary table."""
    events = list(events)
    if not events:
        return f"{title}: (empty trace)"
    summaries = summarize_workers(events)
    horizon = max(
        (s.last_t for s in summaries.values()), default=0.0
    )
    sources = sorted({ev.source for ev in events})
    lines = [
        f"{title} -- {len(events)} events from "
        f"{', '.join(sources)}; horizon t={horizon:.4f}",
        "",
        f"{'worker':>6} {'chunks':>7} {'iters':>8} {'busy(s)':>10} "
        f"{'util%':>6} {'disp.mean':>10} {'disp.max':>9} "
        f"{'faults':>6} {'restarts':>8}",
    ]
    for wid in sorted(summaries):
        s = summaries[wid]
        mean = s.dispatch_sum / s.dispatches if s.dispatches else 0.0
        lines.append(
            f"{wid:>6d} {s.chunks:>7d} {s.iterations:>8d} "
            f"{s.busy:>10.4f} {100 * s.utilization(horizon):>6.1f} "
            f"{mean:>10.5f} {s.dispatch_max:>9.5f} "
            f"{s.faults:>6d} {s.restarts:>8d}"
        )
    census: dict[str, int] = {}
    for ev in events:
        census[ev.kind] = census.get(ev.kind, 0) + 1
    lines.append("")
    lines.append(
        "events: " + "  ".join(
            f"{kind}={census[kind]}" for kind in sorted(census)
        )
    )
    reg = metrics_from_events(events)
    chunk = reg.histogram("chunk_size")
    disp = reg.histogram("dispatch_latency")
    lines.append(
        f"chunk size: n={chunk.count} mean={chunk.mean:.1f} "
        f"min={chunk.min or 0:.0f} max={chunk.max or 0:.0f}; "
        f"dispatch latency: mean={disp.mean:.5f}s "
        f"p90~{disp.quantile(0.9):.5f}s"
    )
    lines.append(f"canonical stream sha256: {stream_digest(events)}")
    return "\n".join(lines)
