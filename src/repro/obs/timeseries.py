"""Rolling time-series windows over the unified event stream.

:func:`repro.obs.metrics.metrics_from_events` answers "what happened
over the whole run"; a live daemon needs "what is happening *now*".
:class:`RollingWindow` is a fixed-width ring of time bins (no
unbounded growth, O(bins) memory per series) and
:class:`RollingMetrics` feeds a small catalog of windows from
:class:`~repro.obs.events.ObsEvent` instances as they arrive,
exposing rate / utilization / imbalance gauges for
``ServiceServer._metrics_snapshot`` and ``repro-service metrics
--watch``.

Time discipline: nothing in this module reads a clock (REP002 -- the
windows must be drivable by simulated time for tests and by the
pool's monotonic clock in the daemon).  Every observation and every
query carries an explicit timestamp; by default events are keyed on
their own ``t`` and queries on the latest time seen.
"""

from __future__ import annotations

import math
from typing import Optional

from .events import ObsEvent

__all__ = [
    "RollingWindow",
    "RollingMetrics",
]


class RollingWindow(object):
    """A ring of time bins holding (sum, count) of observations.

    The window covers ``[now - width, now]``: observations older than
    ``width`` are forgotten lazily when their bin is reused or when a
    query's ``now`` has moved past them.  Observations are accepted in
    any order as long as they are within the window; stale ones (older
    than ``width`` before the newest time seen) are dropped and
    counted in :attr:`stale`.
    """

    __slots__ = (
        "width", "bins", "_bin_width", "_sums", "_counts", "_epochs",
        "_latest", "stale",
    )

    def __init__(self, width: float, bins: int = 60) -> None:
        if width <= 0 or not math.isfinite(width):
            raise ValueError(f"window width must be finite > 0: {width}")
        if bins < 1:
            raise ValueError(f"window needs >= 1 bin, got {bins}")
        self.width = float(width)
        self.bins = int(bins)
        self._bin_width = self.width / self.bins
        self._sums = [0.0] * self.bins
        self._counts = [0] * self.bins
        # Which absolute bin (epoch) each slot currently holds; -1 for
        # never-used so epoch 0 observations are not silently merged.
        self._epochs = [-1] * self.bins
        self._latest: Optional[float] = None
        self.stale = 0

    def _epoch(self, t: float) -> int:
        return int(t // self._bin_width)

    def observe(self, t: float, value: float = 1.0) -> None:
        """Record ``value`` at time ``t`` (any non-negative time)."""
        t = float(t)
        if self._latest is None or t > self._latest:
            self._latest = t
        elif t < self._latest - self.width:
            self.stale += 1
            return
        epoch = self._epoch(t)
        slot = epoch % self.bins
        if self._epochs[slot] != epoch:
            self._epochs[slot] = epoch
            self._sums[slot] = 0.0
            self._counts[slot] = 0
        self._sums[slot] += value
        self._counts[slot] += 1

    @property
    def latest(self) -> Optional[float]:
        """Newest observation time seen, or ``None`` when empty."""
        return self._latest

    def _resolve_now(self, now: Optional[float]) -> float:
        if now is None:
            now = self._latest
        return 0.0 if now is None else float(now)

    def _live(self, now: float):
        # Bins whose epoch falls inside [now - width, now].
        lo = self._epoch(max(0.0, now - self.width))
        hi = self._epoch(now)
        for slot in range(self.bins):
            epoch = self._epochs[slot]
            if lo <= epoch <= hi:
                yield slot

    def total(self, now: Optional[float] = None) -> float:
        """Sum of values inside the window ending at ``now``."""
        now = self._resolve_now(now)
        return sum(self._sums[s] for s in self._live(now))

    def count(self, now: Optional[float] = None) -> int:
        """Number of observations inside the window."""
        now = self._resolve_now(now)
        return sum(self._counts[s] for s in self._live(now))

    def rate(self, now: Optional[float] = None) -> float:
        """Observations per second over the window."""
        return self.count(now) / self.width

    def value_rate(self, now: Optional[float] = None) -> float:
        """Sum of values per second over the window."""
        return self.total(now) / self.width

    def mean(self, now: Optional[float] = None) -> float:
        """Mean observed value inside the window (0.0 when empty)."""
        n = self.count(now)
        return self.total(now) / n if n else 0.0


class RollingMetrics(object):
    """The live-telemetry catalog: rolling windows fed by ObsEvents.

    ========================= =========================================
    gauge                     meaning (all over the last ``width`` s)
    ========================= =========================================
    ``chunk_rate``            compute events / s
    ``iteration_rate``        loop iterations completed / s
    ``result_rate``           result events / s
    ``fault_rate``            fault events / s
    ``job_rate``              service job completions / s
    ``utilization``           busy seconds / (workers x width)
    ``imbalance``             (max - min) / mean of per-worker busy
                              seconds (the paper's imbalance metric
                              applied to the window)
    ``busy_sigma``            population std-dev of per-worker busy s
    ========================= =========================================

    ``observe(event, at=...)`` keys the windows on ``at`` when given
    (the daemon passes its receive time so many jobs' sim clocks do
    not collide), else on the event's own ``t``.
    """

    def __init__(self, width: float = 10.0, bins: int = 60) -> None:
        self.width = float(width)
        self.bins = int(bins)
        self.chunks = RollingWindow(width, bins)
        self.iterations = RollingWindow(width, bins)
        self.results = RollingWindow(width, bins)
        self.faults = RollingWindow(width, bins)
        self.jobs = RollingWindow(width, bins)
        self.busy: dict[int, RollingWindow] = {}
        self.events_seen = 0

    def _busy_window(self, worker: int) -> RollingWindow:
        win = self.busy.get(worker)
        if win is None:
            win = RollingWindow(self.width, self.bins)
            self.busy[worker] = win
        return win

    def observe(self, event: ObsEvent,
                at: Optional[float] = None) -> None:
        """Fold one event into the windows."""
        t = float(event.t) if at is None else float(at)
        self.events_seen += 1
        kind = event.kind
        if kind == "compute":
            self.chunks.observe(t)
            size = (event.stop or 0) - (event.start or 0)
            if size > 0:
                self.iterations.observe(t, float(size))
            if event.value is not None and event.worker >= 0:
                self._busy_window(event.worker).observe(t, event.value)
        elif kind == "result":
            self.results.observe(t)
        elif kind == "fault":
            self.faults.observe(t)
        elif kind == "job-result":
            self.jobs.observe(t)

    def observe_all(self, events, at: Optional[float] = None) -> None:
        for ev in events:
            self.observe(ev, at=at)

    def latest(self) -> Optional[float]:
        times = [
            w.latest for w in (
                self.chunks, self.iterations, self.results,
                self.faults, self.jobs, *self.busy.values(),
            ) if w.latest is not None
        ]
        return max(times) if times else None

    def snapshot(self, now: Optional[float] = None) -> dict:
        """JSON-able gauge values for the window ending at ``now``."""
        if now is None:
            now = self.latest()
        busy_totals = [
            w.total(now) for w in self.busy.values()
        ]
        utilization = 0.0
        imbalance = 0.0
        sigma = 0.0
        if busy_totals:
            n = len(busy_totals)
            mean = sum(busy_totals) / n
            utilization = min(1.0, mean / self.width)
            if mean > 0:
                imbalance = (
                    (max(busy_totals) - min(busy_totals)) / mean
                )
            sigma = math.sqrt(
                sum((b - mean) ** 2 for b in busy_totals) / n
            )
        return {
            "window_seconds": self.width,
            "now": now if now is not None else 0.0,
            "chunk_rate": self.chunks.rate(now),
            "iteration_rate": self.iterations.value_rate(now),
            "result_rate": self.results.rate(now),
            "fault_rate": self.faults.rate(now),
            "job_rate": self.jobs.rate(now),
            "utilization": utilization,
            "imbalance": imbalance,
            "busy_sigma": sigma,
            "workers_seen": len(self.busy),
        }
