"""Real master--worker execution on OS processes (the mpi4py-style
substrate; see DESIGN.md for the MPI substitution argument)."""

from .config import DEFAULT_CONFIG, RuntimeConfig
from .estimator import estimate_virtual_powers, probe_seconds_per_iteration
from .executor import (
    BackgroundLoad,
    RunResult,
    assemble_results,
    run_parallel,
    run_serial,
)
from .master import (
    IncompleteRunError,
    MasterHooks,
    MasterResult,
    WorkerTimeoutError,
    master_loop,
)
from .mpi import have_mpi, run_mpi
from .messages import Assign, Heartbeat, Request, Terminate, WorkerStats
from .serial import best_of, time_serial
from .worker import WorkerSpec, worker_main

__all__ = [
    "Assign",
    "Heartbeat",
    "Request",
    "Terminate",
    "WorkerStats",
    "RuntimeConfig",
    "DEFAULT_CONFIG",
    "MasterHooks",
    "IncompleteRunError",
    "WorkerTimeoutError",
    "assemble_results",
    "WorkerSpec",
    "worker_main",
    "MasterResult",
    "master_loop",
    "RunResult",
    "run_parallel",
    "run_serial",
    "BackgroundLoad",
    "estimate_virtual_powers",
    "probe_seconds_per_iteration",
    "have_mpi",
    "run_mpi",
    "best_of",
    "time_serial",
]
