"""Real master--worker execution on OS processes (the mpi4py-style
substrate; see DESIGN.md for the MPI substitution argument)."""

from .estimator import estimate_virtual_powers, probe_seconds_per_iteration
from .executor import BackgroundLoad, RunResult, run_parallel, run_serial
from .master import MasterResult, master_loop
from .mpi import have_mpi, run_mpi
from .messages import Assign, Request, Terminate, WorkerStats
from .serial import best_of, time_serial
from .worker import WorkerSpec, worker_main

__all__ = [
    "Assign",
    "Request",
    "Terminate",
    "WorkerStats",
    "WorkerSpec",
    "worker_main",
    "MasterResult",
    "master_loop",
    "RunResult",
    "run_parallel",
    "run_serial",
    "BackgroundLoad",
    "estimate_virtual_powers",
    "probe_seconds_per_iteration",
    "have_mpi",
    "run_mpi",
    "best_of",
    "time_serial",
]
