"""Runtime tuning knobs, with environment overrides.

The master's poll timeout used to be a magic ``wait(..., timeout=5.0)``
buried in :mod:`repro.runtime.master`; every timing behaviour of the
runtime now lives here, documented, defaulted, and overridable both
programmatically (pass a :class:`RuntimeConfig`) and operationally
(environment variables, read by :meth:`RuntimeConfig.from_env`):

``REPRO_POLL_TIMEOUT``
    Seconds :func:`multiprocessing.connection.wait` blocks per poll
    (default 5.0).  Smaller values detect dead workers faster and admit
    chaos-restarted workers sooner, at the cost of more wakeups.
``REPRO_WORKER_DEADLINE``
    Seconds of total silence (no request, no heartbeat) after which a
    worker is declared dead and its outstanding interval is requeued
    (default 120).  ``0`` or negative disables the deadline.
``REPRO_HEARTBEAT_INTERVAL``
    Seconds between worker heartbeats (default 2.0).  Heartbeats let a
    worker stay "alive" through a long chunk; without them the deadline
    must exceed the longest chunk.  ``0`` or negative disables them.
``REPRO_JOIN_TIMEOUT``
    Seconds the executor waits for worker processes to exit (default
    30).
``REPRO_RESTART_BACKOFF``
    Seconds the master sleeps between checks while no worker is
    connected but a (chaos) restart is still expected (default 0.05).

Values are validated; a deadline shorter than the heartbeat interval is
rejected because every worker would time out by construction.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Optional

__all__ = ["RuntimeConfig", "DEFAULT_CONFIG", "env_float"]


def env_float(name: str) -> Optional[float]:
    """Parse ``$name`` as a finite float; ``None`` when unset/empty.

    Shared by every ``REPRO_*`` knob (runtime and service client):
    errors always name the variable, and non-finite values are
    rejected before they can disable a timeout forever.
    """
    return _env_float(name)


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be a number, got {raw!r}"
        ) from None
    if not math.isfinite(value):
        # float("nan") / float("inf") parse fine but would either trip
        # validation with a message that never names the env var, or
        # (inf) silently disable polling forever.
        raise ValueError(
            f"environment variable {name} must be finite, got {raw!r}"
        )
    return value


def _disable_if_nonpositive(value: Optional[float]) -> Optional[float]:
    if value is not None and value <= 0:
        return None
    return value


@dataclasses.dataclass(frozen=True)
class RuntimeConfig(object):
    """Timing knobs for the multiprocessing runtime (see module doc)."""

    poll_timeout: float = 5.0
    worker_deadline: Optional[float] = 120.0
    heartbeat_interval: Optional[float] = 2.0
    join_timeout: float = 30.0
    restart_backoff: float = 0.05

    def __post_init__(self) -> None:
        if not (self.poll_timeout > 0):
            raise ValueError(
                f"poll_timeout must be > 0, got {self.poll_timeout}"
            )
        if self.worker_deadline is not None \
                and not (self.worker_deadline > 0):
            raise ValueError(
                "worker_deadline must be > 0 or None (disabled), got "
                f"{self.worker_deadline}"
            )
        if self.heartbeat_interval is not None \
                and not (self.heartbeat_interval > 0):
            raise ValueError(
                "heartbeat_interval must be > 0 or None (disabled), got "
                f"{self.heartbeat_interval}"
            )
        if not (self.join_timeout > 0):
            raise ValueError(
                f"join_timeout must be > 0, got {self.join_timeout}"
            )
        if not (self.restart_backoff > 0):
            raise ValueError(
                f"restart_backoff must be > 0, got {self.restart_backoff}"
            )
        if self.worker_deadline is not None \
                and self.heartbeat_interval is not None \
                and self.worker_deadline <= self.heartbeat_interval:
            raise ValueError(
                f"worker_deadline ({self.worker_deadline}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval}), or "
                f"every worker would miss its deadline by construction"
            )

    @classmethod
    def from_env(cls, **overrides) -> "RuntimeConfig":
        """Defaults, overlaid with ``REPRO_*`` env vars, then kwargs.

        ``REPRO_WORKER_DEADLINE=0`` / ``REPRO_HEARTBEAT_INTERVAL=0``
        (or any non-positive value) disable the corresponding feature.
        """
        values: dict = {}
        poll = _env_float("REPRO_POLL_TIMEOUT")
        if poll is not None:
            if poll <= 0:
                # Unlike the deadline/heartbeat knobs there is no
                # "disabled" reading of a non-positive poll timeout;
                # fail here so the error names the variable instead of
                # surfacing as a bare constructor complaint.
                raise ValueError(
                    f"environment variable REPRO_POLL_TIMEOUT must be "
                    f"> 0, got {poll}"
                )
            values["poll_timeout"] = poll
        deadline = _env_float("REPRO_WORKER_DEADLINE")
        if deadline is not None:
            values["worker_deadline"] = _disable_if_nonpositive(deadline)
        heartbeat = _env_float("REPRO_HEARTBEAT_INTERVAL")
        if heartbeat is not None:
            values["heartbeat_interval"] = (
                _disable_if_nonpositive(heartbeat)
            )
        join = _env_float("REPRO_JOIN_TIMEOUT")
        if join is not None:
            values["join_timeout"] = join
        backoff = _env_float("REPRO_RESTART_BACKOFF")
        if backoff is not None:
            values["restart_backoff"] = backoff
        values.update(overrides)
        return cls(**values)


#: Module-level default (environment not consulted; use
#: :meth:`RuntimeConfig.from_env` for operational overrides).
DEFAULT_CONFIG = RuntimeConfig()
