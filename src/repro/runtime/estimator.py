"""Virtual-power estimation by probing -- paper Sec. 3.

"The PE speeds are not precise ... one must run simulations to obtain
estimates of the throughputs."  The distributed schemes need each
worker's virtual power ``V_i`` (speed relative to the slowest PE); on a
real deployment nobody hands you that number, so this module measures
it: every worker executes the same uniform probe workload and the
per-iteration wall times are inverted into relative powers.

With this, a user can bootstrap a heterogeneous run end-to-end::

    powers = estimate_virtual_powers(n_workers=4, specs=specs)
    specs = [WorkerSpec(virtual_power=v, slowdown=s.slowdown)
             for v, s in zip(powers, specs)]
    run_parallel("DTSS", workload, 4, specs=specs)
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads import SpinWorkload
from .executor import run_parallel
from .worker import WorkerSpec

__all__ = ["estimate_virtual_powers", "probe_seconds_per_iteration"]


def probe_seconds_per_iteration(
    n_workers: int,
    specs: Optional[Sequence[WorkerSpec]] = None,
    probe_iterations: int = 8,
    probe_spins: int = 30,
) -> dict[int, float]:
    """Measured seconds per probe iteration, per worker.

    Every worker gets an equal contiguous block of a *uniform,
    compute-bound* workload (:class:`~repro.workloads.SpinWorkload` --
    a memory-bound probe such as matrix addition would mis-measure
    because repeats run cache-hot), so per-iteration wall time is a
    clean speed probe.  Workers that received no block (possible if a
    peer raced through everything) are absent from the result.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if probe_iterations < 1:
        raise ValueError("probe_iterations must be >= 1")
    probe = SpinWorkload(
        n_workers * probe_iterations, spins=probe_spins
    )
    # Static blocks guarantee every worker measures the same amount of
    # work; CSS would let fast workers starve slow ones of probe blocks.
    run = run_parallel(
        "S", probe, n_workers, specs=specs, collect_results=False
    )
    out: dict[int, float] = {}
    for wid, stats in run.stats.items():
        if stats.iterations:
            out[wid] = stats.compute_seconds / stats.iterations
    return out


def estimate_virtual_powers(
    n_workers: int,
    specs: Optional[Sequence[WorkerSpec]] = None,
    probe_iterations: int = 8,
    probe_spins: int = 30,
    repeats: int = 3,
) -> list[float]:
    """Estimated ``V_i`` per worker (slowest = 1.0, decimal allowed).

    Takes the per-worker *minimum* over ``repeats`` probes (minimum is
    the standard noise-robust wall-time estimator).  Workers that never
    produced a measurement default to 1.0.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best: dict[int, float] = {}
    for _ in range(repeats):
        sample = probe_seconds_per_iteration(
            n_workers,
            specs=specs,
            probe_iterations=probe_iterations,
            probe_spins=probe_spins,
        )
        for wid, sec in sample.items():
            best[wid] = min(best.get(wid, sec), sec)
    if not best:
        return [1.0] * n_workers
    slowest = max(best.values())
    return [
        (slowest / best[wid]) if wid in best else 1.0
        for wid in range(n_workers)
    ]
