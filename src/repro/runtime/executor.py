"""High-level runner: execute a workload on real worker processes.

:func:`run_parallel` is the runtime counterpart of
:func:`repro.simulation.simulate`: it spawns one OS process per worker,
drives the master loop in the calling process, reassembles piggy-backed
results into serial order, and reports wall-clock times.

Nondedicated mode: :class:`BackgroundLoad` starts the paper's stressor
(processes adding two random 1000x1000 matrices) on request and stops it
afterwards; use it as a context manager around a run.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import tempfile
import time
from typing import Optional, Sequence

import numpy as np

from ..core import Scheduler, make
from ..core.acp import IMPROVED_ACP, AcpModel
from ..obs import read_jsonl
from ..obs import resolve as _resolve_collector
from ..workloads import Workload, matrix_add_load
from .config import RuntimeConfig
from .master import MasterHooks, MasterResult, master_loop
from .messages import WorkerStats
from .worker import WorkerSpec, worker_main

__all__ = ["RunResult", "run_parallel", "run_serial", "BackgroundLoad"]


@dataclasses.dataclass
class RunResult(object):
    """Outcome of one real parallel run."""

    scheme: str
    elapsed: float
    results: Optional[np.ndarray]
    stats: dict[int, WorkerStats]
    chunks: list[tuple[int, int, int]]
    requeued: int = 0

    @property
    def total_chunks(self) -> int:
        return len(self.chunks)


def run_serial(workload: Workload) -> tuple[np.ndarray, float]:
    """Execute the loop serially; returns (results, elapsed seconds)."""
    t0 = time.perf_counter()
    out = workload.execute_serial()
    return out, time.perf_counter() - t0


def run_parallel(
    scheme: str | Scheduler,
    workload: Workload,
    n_workers: int,
    specs: Optional[Sequence[WorkerSpec]] = None,
    acp_model: AcpModel = IMPROVED_ACP,
    collect_results: bool = True,
    mp_context: str = "fork",
    config: Optional[RuntimeConfig] = None,
    hooks: Optional[MasterHooks] = None,
    worker_delays: Optional[dict[int, list[tuple[float, float]]]] = None,
    collector=None,
    **scheme_kwargs,
) -> RunResult:
    """Run ``workload`` under ``scheme`` on ``n_workers`` processes.

    ``specs`` carries per-worker heterogeneity (slowdown, virtual power,
    static run-queue); omitted entries default to a plain worker.
    Results are reassembled in iteration order, so
    ``np.array_equal(run.results, workload.execute_serial())`` holds for
    any scheme -- the runtime's core correctness property.

    ``config`` tunes polling/heartbeat/deadline behaviour (defaults to
    :meth:`RuntimeConfig.from_env`); ``hooks`` and ``worker_delays``
    are the chaos entry points (see :func:`repro.chaos.run_chaos`).

    ``collector`` receives the unified observability stream: the
    master's events inline (source ``runtime.master``) plus each worker
    process's JSONL shard (source ``runtime.worker``), merged after the
    join -- see :mod:`repro.obs`.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    specs = list(specs or [])
    while len(specs) < n_workers:
        specs.append(WorkerSpec())
    scheduler = (
        make(scheme, workload.size, n_workers, **scheme_kwargs)
        if isinstance(scheme, str)
        else scheme
    )
    if getattr(scheduler, "feedback_dependent", False):
        # Adaptive meta-scheduling: the cost feedback loop needs the
        # workload (the master process holds it; workers get copies).
        scheduler.bind_workload(workload)
    config = config or RuntimeConfig.from_env()
    worker_delays = worker_delays or {}
    obs = _resolve_collector(collector)
    obs_dir: Optional[tempfile.TemporaryDirectory] = None
    obs_paths: dict[int, str] = {}
    if obs:
        obs_dir = tempfile.TemporaryDirectory(prefix="repro-obs-")
        obs_paths = {
            wid: os.path.join(obs_dir.name, f"worker-{wid}.jsonl")
            for wid in range(n_workers)
        }
    ctx = mp.get_context(mp_context)
    pipes = {}
    processes = []
    try:
        for wid in range(n_workers):
            parent, child = ctx.Pipe()
            pipes[wid] = parent
            proc = ctx.Process(
                target=worker_main,
                args=(child, workload, wid),
                kwargs={
                    "spec": specs[wid],
                    "distributed": scheduler.distributed,
                    "acp_model": acp_model,
                    "heartbeat_interval": config.heartbeat_interval,
                    "delays": worker_delays.get(wid),
                    "obs_path": obs_paths.get(wid),
                },
                daemon=True,
            )
            processes.append(proc)
        t0 = time.perf_counter()
        for proc in processes:
            proc.start()
        meta = {
            wid: (specs[wid].virtual_power, specs[wid].run_queue)
            for wid in range(n_workers)
        }
        master: MasterResult = master_loop(
            scheduler, pipes, meta, config=config, hooks=hooks,
            collector=collector,
        )
        elapsed = time.perf_counter() - t0
        for proc in processes:
            proc.join(timeout=config.join_timeout)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
        # Fan the worker shards into the caller's collector: each is a
        # whole-file read after the join, so no cross-process locking.
        for wid in sorted(obs_paths):
            path = obs_paths[wid]
            if os.path.exists(path):
                for ev in read_jsonl(path):
                    obs.emit(ev)
    finally:
        if obs_dir is not None:
            obs_dir.cleanup()
    combined: Optional[np.ndarray] = None
    if collect_results:
        master.results.sort(key=lambda pair: pair[0])
        combined = (
            np.concatenate([np.atleast_1d(np.asarray(r))
                            for _, r in master.results])
            if master.results
            else np.zeros(0)
        )
    return RunResult(
        scheme=scheduler.name,
        elapsed=elapsed,
        results=combined,
        stats=master.stats,
        chunks=master.chunks,
        requeued=master.requeued,
    )


def assemble_results(
    master_results: list[tuple[int, object]],
) -> np.ndarray:
    """Reassemble piggy-backed ``(start, payload)`` pairs serially."""
    ordered = sorted(master_results, key=lambda pair: pair[0])
    return (
        np.concatenate([np.atleast_1d(np.asarray(r)) for _, r in ordered])
        if ordered
        else np.zeros(0)
    )


class BackgroundLoad(object):
    """The paper's nondedicated stressor as a context manager.

    Starts ``processes`` matrix-add loops (1000x1000 by default, the
    paper's size) and stops them on exit.  On a single host these
    contend for CPU with every worker; the paper pinned them to chosen
    slaves, which process-level CPU affinity could emulate but the
    experiments here treat as uniform background pressure.
    """

    def __init__(
        self,
        processes: int = 2,
        size: int = 1000,
        mp_context: str = "fork",
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self.size = size
        self._ctx = mp.get_context(mp_context)
        self._stop = self._ctx.Event()
        self._procs: list[mp.process.BaseProcess] = []

    def __enter__(self) -> "BackgroundLoad":
        for i in range(self.processes):
            proc = self._ctx.Process(
                target=matrix_add_load,
                args=(self._stop,),
                kwargs={"size": self.size, "seed": i},
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
        self._procs.clear()
