"""Master loop for the multiprocessing runtime.

The master multiplexes worker pipes with
:func:`multiprocessing.connection.wait` (the select-style idiom), feeds
each request through the scheduler, and collects piggy-backed results.

Fault tolerance beyond the paper -- the same fail-stop semantics the
simulator implements (see ``docs/fault_model.md``):

* if a worker dies mid-chunk (its pipe reports EOF, or it misses its
  liveness deadline), the master *requeues* the outstanding interval in
  a FIFO deque -- exactly like the simulator's ``_requeue`` -- and hands
  it to the next requester before consulting the scheduler, so a run
  completes despite worker loss;
* a worker that runs dry while a peer still holds an outstanding chunk
  is *parked*, not terminated: if the peer dies, the parked worker
  recomputes the lost interval (the simulator parks identically);
* workers send :class:`~repro.runtime.messages.Heartbeat` messages from
  a side thread, so the deadline (``RuntimeConfig.worker_deadline``)
  distinguishes a long chunk from a dead process;
* chaos restarts enter through :class:`MasterHooks` admissions -- the
  loop keeps serving while a restart is still expected even if no
  worker is currently connected.

Timing knobs live in :class:`repro.runtime.config.RuntimeConfig`; the
old hard-coded ``wait(..., timeout=5.0)`` is now
``RuntimeConfig.poll_timeout`` / ``REPRO_POLL_TIMEOUT``.

The loop *raises* instead of silently returning a partial result:
:class:`WorkerTimeoutError` when deadline expiry leaves the run unable
to proceed, :class:`IncompleteRunError` when every pipe is gone but
iterations are still outstanding.
"""

from __future__ import annotations

import collections
import dataclasses
import time
from multiprocessing.connection import wait
from typing import Any, Iterable, Optional

from ..core import Scheduler, WorkerView
from ..obs import ObsEvent, get_logger
from ..obs import resolve as _resolve_collector
from .config import RuntimeConfig
from .messages import Assign, Heartbeat, Request, Terminate, WorkerStats

__all__ = [
    "MasterResult",
    "MasterHooks",
    "IncompleteRunError",
    "WorkerTimeoutError",
    "master_loop",
]

#: Event-source tag for the unified observability stream.
_SRC = "runtime.master"

logger = get_logger(__name__)


class IncompleteRunError(RuntimeError):
    """Every worker is gone but iterations are still outstanding."""


class WorkerTimeoutError(IncompleteRunError):
    """A worker went silent past ``RuntimeConfig.worker_deadline``.

    Raised only when the expiry leaves the run unable to complete
    (otherwise the worker is dropped, its interval requeued, and the
    run continues on the survivors).
    """


class MasterHooks(object):
    """Extension points the master consults every loop iteration.

    The base implementation is inert; :class:`repro.chaos.run_chaos`
    subclasses it to inject faults and re-admit restarted workers.
    """

    def on_tick(self) -> None:
        """Called once per loop iteration, before polling."""

    def admissions(self) -> Iterable[tuple[int, Any, Optional[tuple]]]:
        """New ``(worker_id, connection, meta)`` entries to serve.

        ``meta`` is ``(virtual_power, run_queue)`` or None.
        """
        return ()

    def expects_more(self) -> bool:
        """True while more admissions may still arrive; keeps the loop
        alive when no worker is currently connected."""
        return False


@dataclasses.dataclass
class MasterResult(object):
    """Everything the master gathered from one run."""

    results: list[tuple[int, Any]]
    stats: dict[int, WorkerStats]
    chunks: list[tuple[int, int, int]]  # (worker_id, start, stop)
    requeued: int = 0  # chunks reassigned after a worker death
    timeouts: int = 0  # workers dropped for missing their deadline

    def assigned_iterations(self) -> int:
        return sum(stop - start for _, start, stop in self.chunks)


def master_loop(
    scheduler: Scheduler,
    connections: dict[int, Any],
    worker_meta: Optional[dict[int, tuple[float, int]]] = None,
    config: Optional[RuntimeConfig] = None,
    hooks: Optional[MasterHooks] = None,
    collector=None,
) -> MasterResult:
    """Serve requests until the loop completes and workers terminate.

    ``connections`` maps worker id -> master-side pipe end.
    ``worker_meta`` maps worker id -> ``(virtual_power, run_queue)`` for
    the :class:`WorkerView` (defaults to ``(1.0, 1)``).

    ``collector`` receives the master-side half of the unified
    observability stream (source ``runtime.master``): event times are
    seconds since the loop started (comparable to simulator virtual
    time), wall-clock stamps ride in the ``wall`` field.
    """
    config = config or RuntimeConfig.from_env()
    hooks = hooks or MasterHooks()
    obs = _resolve_collector(collector)
    t0 = time.monotonic()

    def emit(kind: str, worker: int = -1, **fields) -> None:
        # Early-return on a falsy (Null) collector: call sites guard
        # too, but the helper must never pay for ObsEvent construction
        # or clock reads on the disabled path.
        if not obs:
            return
        obs.emit(ObsEvent(
            kind, _SRC, time.monotonic() - t0, worker,
            wall=time.time(), **fields,
        ))
    worker_meta = dict(worker_meta or {})
    live = dict(connections)
    outstanding: dict[int, tuple[int, int]] = {}
    #: adaptive (feedback-dependent) scheduler wiring: per-chunk
    #: durations reported on result delivery, stage decisions drained
    #: into ``adapt`` events after every scheduler consultation.
    adaptive = bool(getattr(scheduler, "feedback_dependent", False))
    assigned_at: dict[int, float] = {}

    def emit_decisions(wid: int) -> None:
        for d in scheduler.drain_decisions():
            emit("adapt", wid, start=d.base, stop=d.base + d.size,
                 stage=d.stage, value=d.reward, detail=d.summary())
    #: FIFO of intervals lost to worker deaths -- first lost, first
    #: reassigned (loop order), mirroring the simulator's deque.
    requeue: collections.deque[tuple[int, int]] = collections.deque()
    #: workers idle-waiting because a failing peer may return work.
    parked: list[int] = []
    results: list[tuple[int, Any]] = []
    stats: dict[int, WorkerStats] = {}
    chunks: list[tuple[int, int, int]] = []
    last_seen: dict[int, float] = {
        wid: time.monotonic() for wid in live
    }
    requeued = 0
    timeouts = 0

    def send_assignment(wid: int, assignment: tuple[int, int],
                        detail: str = "") -> None:
        conn = live.get(wid)
        if conn is None:
            requeue.append(assignment)
            return
        try:
            outstanding[wid] = assignment
            chunks.append((wid, assignment[0], assignment[1]))
            if adaptive:
                assigned_at[wid] = time.monotonic()
            conn.send(Assign(*assignment))
            if obs:
                emit("assign", wid, start=assignment[0],
                     stop=assignment[1], detail=detail)
        except (BrokenPipeError, OSError):
            drop_worker(wid)

    def send_terminate(wid: int) -> None:
        conn = live.pop(wid, None)
        last_seen.pop(wid, None)
        if conn is None:
            return
        try:
            conn.send(Terminate())
            if obs:
                emit("terminate", wid)
        except (BrokenPipeError, OSError):
            pass

    def handle_request(wid: int, req: Request) -> None:
        nonlocal requeued
        if obs:
            emit("request", wid, acp=req.acp)
        if req.result is not None:
            delivered = outstanding.pop(wid, None)
            results.append(req.result)
            if obs and delivered is not None:
                emit("result", wid, start=delivered[0],
                     stop=delivered[1])
            if adaptive and delivered is not None:
                sent = assigned_at.pop(wid, None)
                scheduler.observe_completion(
                    wid, delivered[0], delivered[1],
                    0.0 if sent is None else time.monotonic() - sent,
                )
        else:
            stale = outstanding.pop(wid, None)
            if stale is not None:
                # A first request (no piggy-backed result) from an id
                # with an outstanding chunk means a restarted
                # incarnation: the old one died holding `stale`.
                for i in range(len(chunks) - 1, -1, -1):
                    if chunks[i] == (wid, stale[0], stale[1]):
                        del chunks[i]
                        break
                requeue.append(stale)
        if req.stats is not None:
            stats[wid] = req.stats
        if requeue:
            requeued += 1
            send_assignment(wid, requeue.popleft(), detail="requeue")
            return
        vp, rq = worker_meta.get(wid, (1.0, 1))
        view = WorkerView(
            worker_id=wid, virtual_power=vp, run_queue=rq, acp=req.acp
        )
        chunk = scheduler.next_chunk(view)
        if adaptive and obs:
            emit_decisions(wid)
        if chunk is not None:
            send_assignment(wid, (chunk.start, chunk.stop))
        elif outstanding or hooks.expects_more():
            # Work may reappear if a peer dies (or a chaos restart
            # brings one back): park this worker instead of terminating
            # it -- the simulator parks in the same situation.
            if obs:
                emit("park", wid)
            parked.append(wid)
        else:
            send_terminate(wid)
            # The request that emptied `outstanding` releases every
            # parked peer immediately (no poll-timeout lag).
            drain_parked()

    def drop_worker(wid: int, detail: str = "death") -> None:
        was_live = wid in live
        live.pop(wid, None)
        last_seen.pop(wid, None)
        if wid in parked:
            parked.remove(wid)
        assigned_at.pop(wid, None)
        lost = outstanding.pop(wid, None)
        if was_live or lost is not None:
            logger.warning(
                "worker %d dropped (%s)%s", wid, detail,
                f"; requeueing [{lost[0]}, {lost[1]})" if lost else "",
            )
            if obs:
                emit("fault", wid, detail=detail)
        if lost is not None:
            # Remove the lost chunk from the log; it will re-enter when
            # reassigned, keeping `chunks` an exact execution record.
            for i in range(len(chunks) - 1, -1, -1):
                if chunks[i] == (wid, lost[0], lost[1]):
                    del chunks[i]
                    break
            requeue.append(lost)
        drain_parked()

    def drain_parked() -> None:
        nonlocal requeued
        while requeue and parked:
            wid = parked.pop(0)
            if wid not in live:
                continue
            requeued += 1
            send_assignment(wid, requeue.popleft(), detail="requeue")
        if not requeue and not outstanding and scheduler.finished \
                and not hooks.expects_more():
            for wid in list(parked):
                send_terminate(wid)
            parked.clear()

    def enforce_deadlines() -> None:
        nonlocal timeouts
        if config.worker_deadline is None:
            return
        now = time.monotonic()
        overdue = [
            wid for wid, seen in list(last_seen.items())
            if now - seen > config.worker_deadline
        ]
        for wid in overdue:
            conn = live.get(wid)
            timeouts += 1
            drop_worker(wid, detail="deadline")
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - platform noise
                    pass
        if overdue and not live and not hooks.expects_more():
            raise WorkerTimeoutError(
                f"worker(s) {sorted(overdue)} sent no message for more "
                f"than worker_deadline={config.worker_deadline}s and no "
                f"worker remains; raise RuntimeConfig.worker_deadline "
                f"(REPRO_WORKER_DEADLINE) or check the heartbeat "
                f"interval ({config.heartbeat_interval})"
            )

    while live or hooks.expects_more():
        hooks.on_tick()
        for wid, conn, meta in hooks.admissions():
            if wid in live or wid in outstanding:
                # A restarted incarnation re-uses the id: whatever the
                # old incarnation still held died with it -- requeue it
                # before the replacement pipe masks the EOF.
                drop_worker(wid)
            live[wid] = conn
            last_seen[wid] = time.monotonic()
            if meta is not None:
                worker_meta[wid] = meta
            logger.info("worker %d admitted", wid)
            if obs:
                emit("restart", wid, detail="admission")
        drain_parked()
        if not live:
            time.sleep(config.restart_backoff)
            continue
        ready = wait(list(live.values()), timeout=config.poll_timeout)
        if not ready:
            # No traffic for a full poll: workers may just be computing
            # long chunks -- that is what heartbeats and the liveness
            # deadline disambiguate.
            enforce_deadlines()
            continue
        conn_to_wid = {id(c): w for w, c in live.items()}
        for conn in ready:
            wid = conn_to_wid.get(id(conn))
            if wid is None:
                continue
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                drop_worker(wid)
                continue
            last_seen[wid] = time.monotonic()
            if isinstance(msg, Heartbeat):
                if obs:
                    emit("heartbeat", wid)
                continue
            if isinstance(msg, Request):
                handle_request(wid, msg)

    if requeue or not scheduler.finished:
        missing = sum(stop - start for start, stop in requeue)
        raise IncompleteRunError(
            f"every worker is gone but the loop is not covered: "
            f"{missing} requeued iterations"
            + ("" if scheduler.finished else
               " and the scheduler still holds unassigned work")
        )
    return MasterResult(
        results=results,
        stats=stats,
        chunks=chunks,
        requeued=requeued,
        timeouts=timeouts,
    )
