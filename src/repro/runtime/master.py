"""Master loop for the multiprocessing runtime.

The master multiplexes worker pipes with
:func:`multiprocessing.connection.wait` (the select-style idiom), feeds
each request through the scheduler, and collects piggy-backed results.

Fault tolerance beyond the paper: if a worker dies mid-chunk (its pipe
reports EOF), the master *requeues* the outstanding interval and hands
it to the next requester before consulting the scheduler, so a run
completes despite worker loss -- exercised by the failure-injection
tests.
"""

from __future__ import annotations

import dataclasses
from multiprocessing.connection import wait
from typing import Any, Optional

from ..core import Scheduler, WorkerView
from .messages import Assign, Request, Terminate, WorkerStats

__all__ = ["MasterResult", "master_loop"]


@dataclasses.dataclass
class MasterResult(object):
    """Everything the master gathered from one run."""

    results: list[tuple[int, Any]]
    stats: dict[int, WorkerStats]
    chunks: list[tuple[int, int, int]]  # (worker_id, start, stop)
    requeued: int = 0  # chunks reassigned after a worker death

    def assigned_iterations(self) -> int:
        return sum(stop - start for _, start, stop in self.chunks)


def master_loop(
    scheduler: Scheduler,
    connections: dict[int, Any],
    worker_meta: Optional[dict[int, tuple[float, int]]] = None,
) -> MasterResult:
    """Serve requests until the loop completes and workers terminate.

    ``connections`` maps worker id -> master-side pipe end.
    ``worker_meta`` maps worker id -> ``(virtual_power, run_queue)`` for
    the :class:`WorkerView` (defaults to ``(1.0, 1)``).
    """
    worker_meta = worker_meta or {}
    live = dict(connections)
    outstanding: dict[int, tuple[int, int]] = {}
    requeue: list[tuple[int, int]] = []
    results: list[tuple[int, Any]] = []
    stats: dict[int, WorkerStats] = {}
    chunks: list[tuple[int, int, int]] = []
    requeued = 0

    def handle_request(wid: int, req: Request) -> None:
        nonlocal requeued
        if req.result is not None:
            results.append(req.result)
        if req.stats is not None:
            stats[wid] = req.stats
        outstanding.pop(wid, None)
        vp, rq = worker_meta.get(wid, (1.0, 1))
        view = WorkerView(
            worker_id=wid, virtual_power=vp, run_queue=rq, acp=req.acp
        )
        if requeue:
            start, stop = requeue.pop()
            requeued += 1
            assignment = (start, stop)
        else:
            chunk = scheduler.next_chunk(view)
            assignment = (chunk.start, chunk.stop) if chunk else None
        conn = live.get(wid)
        if conn is None:
            if assignment is not None:
                requeue.append(assignment)
            return
        try:
            if assignment is None:
                conn.send(Terminate())
                live.pop(wid, None)
            else:
                outstanding[wid] = assignment
                chunks.append((wid, assignment[0], assignment[1]))
                conn.send(Assign(*assignment))
        except (BrokenPipeError, OSError):
            drop_worker(wid)

    def drop_worker(wid: int) -> None:
        nonlocal requeued
        live.pop(wid, None)
        lost = outstanding.pop(wid, None)
        if lost is not None:
            # Remove the lost chunk from the log; it will re-enter when
            # reassigned, keeping `chunks` an exact execution record.
            for i in range(len(chunks) - 1, -1, -1):
                if chunks[i] == (wid, lost[0], lost[1]):
                    del chunks[i]
                    break
            requeue.append(lost)

    while live:
        ready = wait(list(live.values()), timeout=5.0)
        if not ready:
            # No traffic: if every live worker is idle-waiting this
            # would be a protocol bug; keep polling (workers may just be
            # computing long chunks).
            continue
        conn_to_wid = {id(c): w for w, c in live.items()}
        for conn in ready:
            wid = conn_to_wid.get(id(conn))
            if wid is None:
                continue
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                drop_worker(wid)
                continue
            if isinstance(msg, Request):
                handle_request(wid, msg)

    return MasterResult(
        results=results, stats=stats, chunks=chunks, requeued=requeued
    )
