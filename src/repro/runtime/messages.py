"""Wire messages for the multiprocessing master--worker runtime.

The real-process runtime mirrors the paper's MPI protocol: a worker's
:class:`Request` piggy-backs the result of its previous chunk ("the
slaves will attach to each request, except for the first one, the
result of the computation due to the previous request"); the master
answers with an :class:`Assign` interval or :class:`Terminate`.

Messages are plain picklable dataclasses sent over
:class:`multiprocessing.Pipe` connections.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

__all__ = ["Request", "Assign", "Terminate", "Heartbeat", "WorkerStats"]


@dataclasses.dataclass
class WorkerStats(object):
    """Per-worker wall-clock accounting shipped with every request.

    ``wait_seconds`` measures request-to-assignment latency (pipe +
    master queueing + service) -- the runtime analogue of the
    simulator's ``t_wait``; ``compute_seconds`` is chunk execution
    (including slowdown-emulation burns), the analogue of ``t_comp``.
    Serialization costs ride inside ``wait_seconds`` (a real pipe has
    no separable "link occupancy" to meter).
    """

    compute_seconds: float = 0.0
    wait_seconds: float = 0.0
    chunks: int = 0
    iterations: int = 0


@dataclasses.dataclass
class Request(object):
    """Worker -> master: "I am idle; here is my previous result".

    ``acp`` is attached only in distributed mode (the worker's current
    available computing power); ``result`` is ``(start, payload)`` for
    the previously assigned chunk, or ``None`` on the first request.
    """

    worker_id: int
    acp: Optional[int] = None
    result: Optional[tuple[int, Any]] = None
    stats: Optional[WorkerStats] = None


@dataclasses.dataclass
class Assign(object):
    """Master -> worker: compute iterations ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(f"empty assignment [{self.start}, {self.stop})")


@dataclasses.dataclass
class Terminate(object):
    """Master -> worker: no more work; send final stats and exit."""


@dataclasses.dataclass
class Heartbeat(object):
    """Worker -> master: "still alive" (sent from a side thread).

    Carries no payload beyond the sender's id; the master only refreshes
    the worker's liveness clock (see ``RuntimeConfig.worker_deadline``).
    Heartbeats let a worker survive its deadline through an arbitrarily
    long chunk without the master mistaking computation for death.
    """

    worker_id: int
