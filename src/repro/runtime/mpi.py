"""Optional MPI backend: the paper's actual substrate, via mpi4py.

The paper's implementation "relies on the distributed programming
framework offered by the mpich.1.2.0 implementation of MPI".  When
mpi4py is installed (it is an optional dependency; the offline test
environment does not ship it), this module runs the same master--slave
protocol as :mod:`repro.runtime.executor` across MPI ranks:

* rank 0 is the master: it serves requests with any
  :class:`~repro.core.Scheduler` and collects piggy-backed results;
* ranks 1..size-1 are slaves: request -> compute -> piggy-back, with
  optional ACP reports for the distributed schemes.

Launch with ``mpiexec -n <p+1> python your_script.py`` where the script
calls :func:`run_mpi`.  The module imports lazily so that everything
else in :mod:`repro.runtime` works without MPI; :func:`have_mpi`
reports availability (used by the test suite's skip markers).

Messages use mpi4py's lowercase (pickle) API -- chunk payloads are
NumPy arrays but small enough per message that the pickle path's
convenience beats buffer-protocol micro-optimization here; swap to
``Send/Recv`` with explicit dtypes if profiles ever show otherwise
(per the optimize-after-measuring rule).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..core import Scheduler, WorkerView, make
from ..core.acp import IMPROVED_ACP, AcpModel
from ..workloads import Workload

__all__ = ["have_mpi", "run_mpi", "mpi_master", "mpi_worker"]

#: Message tags for the request/assign protocol.
TAG_REQUEST = 11
TAG_ASSIGN = 12
TAG_TERMINATE = 13


def have_mpi() -> bool:
    """True when mpi4py is importable (optional dependency)."""
    try:
        import mpi4py  # noqa: F401
    except ImportError:
        return False
    return True


def _get_comm():
    from mpi4py import MPI

    return MPI.COMM_WORLD, MPI


def mpi_master(
    scheduler: Scheduler,
    comm: Any,
    mpi: Any,
) -> list[tuple[int, Any]]:
    """Serve slave requests until the loop completes; gather results.

    Returns ``(start, payload)`` pairs sorted by ``start`` (i.e. serial
    order).  Mirrors :func:`repro.runtime.master.master_loop` minus the
    worker-death handling (MPI aborts the world on rank failure).
    """
    n_workers = comm.Get_size() - 1
    if n_workers < 1:
        raise RuntimeError("run under mpiexec with at least 2 ranks")
    results: list[tuple[int, Any]] = []
    live = n_workers
    status = mpi.Status()
    while live:
        msg = comm.recv(source=mpi.ANY_SOURCE, tag=TAG_REQUEST,
                        status=status)
        source = status.Get_source()
        if msg.get("result") is not None:
            results.append(tuple(msg["result"]))
        view = WorkerView(
            worker_id=source - 1,
            virtual_power=msg.get("virtual_power", 1.0),
            run_queue=msg.get("run_queue", 1),
            acp=msg.get("acp"),
        )
        chunk = scheduler.next_chunk(view)
        if chunk is None:
            comm.send(None, dest=source, tag=TAG_TERMINATE)
            live -= 1
        else:
            comm.send((chunk.start, chunk.stop), dest=source,
                      tag=TAG_ASSIGN)
    results.sort(key=lambda pair: pair[0])
    return results


def mpi_worker(
    workload: Workload,
    comm: Any,
    mpi: Any,
    virtual_power: float = 1.0,
    run_queue: int = 1,
    distributed: bool = False,
    acp_model: AcpModel = IMPROVED_ACP,
) -> None:
    """Slave loop: request, compute, piggy-back (ranks >= 1)."""
    acp = (
        acp_model.acp(virtual_power, run_queue) if distributed else None
    )
    pending: Optional[tuple[int, Any]] = None
    status = mpi.Status()
    while True:
        comm.send(
            {
                "result": pending,
                "acp": acp,
                "virtual_power": virtual_power,
                "run_queue": run_queue,
            },
            dest=0,
            tag=TAG_REQUEST,
        )
        pending = None
        msg = comm.recv(source=0, tag=mpi.ANY_TAG, status=status)
        if status.Get_tag() == TAG_TERMINATE:
            return
        start, stop = msg
        pending = (start, workload.execute(start, stop))


def run_mpi(
    scheme: str | Scheduler,
    workload: Workload,
    acp_model: AcpModel = IMPROVED_ACP,
    virtual_power: float = 1.0,
    run_queue: int = 1,
    **scheme_kwargs,
) -> Optional[np.ndarray]:
    """Run ``workload`` under ``scheme`` across MPI ranks.

    Call from every rank of an ``mpiexec`` launch; returns the
    reassembled results on rank 0 and ``None`` on slaves.  The worker
    count is ``comm.size - 1``.
    """
    if not have_mpi():
        raise RuntimeError(
            "mpi4py is not installed; use repro.runtime.run_parallel "
            "for the multiprocessing backend"
        )
    comm, mpi = _get_comm()
    rank = comm.Get_rank()
    n_workers = comm.Get_size() - 1
    if rank == 0:
        scheduler = (
            make(scheme, workload.size, n_workers, **scheme_kwargs)
            if isinstance(scheme, str)
            else scheme
        )
        pairs = mpi_master(scheduler, comm, mpi)
        if not pairs:
            return np.zeros(0)
        return np.concatenate(
            [np.atleast_1d(np.asarray(p)) for _s, p in pairs]
        )
    scheduler_probe = (
        make(scheme, 1, 1, **scheme_kwargs)
        if isinstance(scheme, str)
        else scheme
    )
    mpi_worker(
        workload,
        comm,
        mpi,
        virtual_power=virtual_power,
        run_queue=run_queue,
        distributed=scheduler_probe.distributed,
        acp_model=acp_model,
    )
    return None
