"""Serial baseline helpers (speedup denominators).

Kept as a module of its own so benchmarks and examples have one obvious
place to get a timed serial execution and a repeat-based stable timing.
"""

from __future__ import annotations

import time
from typing import Callable

from ..workloads import Workload

__all__ = ["time_serial", "best_of"]


def time_serial(workload: Workload, repeats: int = 1) -> float:
    """Median wall-clock seconds for a full serial execution."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        workload.execute_serial()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls of ``fn``."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
