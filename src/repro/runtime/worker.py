"""Worker process main loop for the multiprocessing runtime.

Each worker owns one end of a pipe to the master and loops:

    request (piggy-backing the previous result) -> receive assignment ->
    execute the chunk -> repeat; on Terminate, ship final stats and exit.

Heterogeneity emulation: the paper's slow PEs are ~2.65x slower than its
fast ones.  On a single host all cores run at the same speed, so a
worker with ``slowdown = s`` executes its chunk once (for the result)
and then re-executes it ``s - 1`` more times (discarding the output),
making its wall-clock cost ``s``x the real cost without perturbing
results.  Fractional slowdowns re-execute a prefix of the chunk.

Load emulation: ``run_queue > 1`` makes the worker report a reduced ACP
(distributed mode) -- the actual CPU contention for nondedicated runtime
experiments comes from :func:`repro.workloads.matrix.matrix_add_load`
processes started by the executor.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Optional, Sequence

from ..core.acp import IMPROVED_ACP, AcpModel
from ..obs import NULL, JsonlCollector, ObsEvent
from ..workloads import Workload
from .messages import Assign, Heartbeat, Request, Terminate, WorkerStats

__all__ = ["WorkerSpec", "worker_main"]

#: Event-source tag for the unified observability stream.
_SRC = "runtime.worker"


@dataclasses.dataclass(frozen=True)
class WorkerSpec(object):
    """Static description of one runtime worker.

    ``virtual_power`` feeds the ACP report; ``slowdown`` >= 1 emulates a
    proportionally slower PE; ``run_queue`` is the worker's (static)
    externally-imposed load for ACP purposes.
    """

    virtual_power: float = 1.0
    slowdown: float = 1.0
    run_queue: int = 1

    def __post_init__(self) -> None:
        if self.virtual_power <= 0:
            raise ValueError("virtual_power must be > 0")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        if self.run_queue < 1:
            raise ValueError("run_queue must be >= 1")


def _execute_with_slowdown(
    workload: Workload, start: int, stop: int, slowdown: float
):
    """Execute a chunk, then burn ``slowdown - 1`` extra executions.

    The burn goes through :meth:`Workload.burn`, which bypasses any
    memoization so the extra executions really cost CPU.
    """
    result = workload.execute(start, stop)
    extra = slowdown - 1.0
    while extra > 0:
        if extra >= 1.0:
            workload.burn(start, stop)
            extra -= 1.0
        else:
            span = stop - start
            part = max(1, int(span * extra))
            workload.burn(start, start + part)
            break
    return result


def worker_main(
    conn,
    workload: Workload,
    worker_id: int,
    spec: Optional[WorkerSpec] = None,
    distributed: bool = False,
    acp_model: AcpModel = IMPROVED_ACP,
    heartbeat_interval: Optional[float] = None,
    delays: Optional[Sequence[tuple[float, float]]] = None,
    obs_path: Optional[str] = None,
) -> None:
    """Run the request/compute loop until Terminate (process target).

    ``heartbeat_interval`` starts a daemon thread that sends a
    :class:`Heartbeat` every that-many seconds, so the master's
    liveness deadline survives long chunks (see
    :class:`repro.runtime.config.RuntimeConfig`).

    ``obs_path`` names a per-worker JSONL shard receiving this
    process's half of the unified observability stream (source
    ``runtime.worker``); the executor merges shards into the caller's
    collector after the join.  The shard writer is thread-safe (the
    heartbeat thread also emits) and appends with ``O_APPEND``, so a
    killed worker leaves at most one torn trailing line.

    ``delays`` is a list of ``(at, extra)`` pairs (seconds since worker
    start): before the first request sent at/after ``at``, the worker
    sleeps ``extra`` seconds -- how chaos message delay/loss faults
    reach the real runtime (a lost datagram and its retransmission look
    identical to the protocol: one late request).
    """
    spec = spec or WorkerSpec()
    stats = WorkerStats()
    acp = (
        acp_model.acp(spec.virtual_power, spec.run_queue)
        if distributed
        else None
    )
    pending: Optional[tuple[int, object]] = None
    obs = JsonlCollector(obs_path, flush_every=1) if obs_path else NULL
    born = time.perf_counter()

    def obs_emit(kind: str, at: Optional[float] = None,
                 **fields) -> None:
        # Disabled-path guard: skip event construction and clock reads
        # entirely when no collector is attached (the per-chunk hot
        # loop calls this).
        if not obs:
            return
        t = (time.perf_counter() if at is None else at) - born
        obs.emit(ObsEvent(
            kind, _SRC, t, worker_id, wall=time.time(), **fields,
        ))

    # Heartbeats come from a side thread while the main loop computes;
    # the lock keeps the pipe's send side single-writer.
    send_lock = threading.Lock()
    stop_heartbeat = threading.Event()
    heartbeat_thread = None
    if heartbeat_interval is not None and heartbeat_interval > 0:
        def _beat() -> None:
            while not stop_heartbeat.wait(heartbeat_interval):
                with send_lock:
                    if stop_heartbeat.is_set():
                        return
                    try:
                        conn.send(Heartbeat(worker_id=worker_id))
                    except (OSError, ValueError, BrokenPipeError):
                        return
                if obs:
                    obs_emit("heartbeat")

        heartbeat_thread = threading.Thread(target=_beat, daemon=True)
        heartbeat_thread.start()
    pending_delays = sorted(delays) if delays else []
    try:
        while True:
            while pending_delays \
                    and time.perf_counter() - born >= pending_delays[0][0]:
                _at, extra = pending_delays.pop(0)
                time.sleep(extra)
            sent_at = time.perf_counter()
            with send_lock:
                conn.send(
                    Request(worker_id=worker_id, acp=acp, result=pending,
                            stats=stats)
                )
            pending = None
            msg = conn.recv()
            stats.wait_seconds += time.perf_counter() - sent_at
            if isinstance(msg, Terminate):
                if obs:
                    obs_emit("terminate")
                break
            assert isinstance(msg, Assign), f"unexpected message {msg!r}"
            t0 = time.perf_counter()
            payload = _execute_with_slowdown(
                workload, msg.start, msg.stop, spec.slowdown
            )
            if obs:
                # Span anchored at the compute *start*, so the Chrome
                # trace renders [t, t+value) as the busy interval.
                obs_emit(
                    "compute", at=t0, start=msg.start, stop=msg.stop,
                    value=time.perf_counter() - t0,
                )
            stats.compute_seconds += time.perf_counter() - t0
            stats.chunks += 1
            stats.iterations += msg.stop - msg.start
            pending = (msg.start, payload)
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        # Master vanished (or interactive interrupt): exit quietly; the
        # master side handles reassignment of any outstanding chunk.
        pass
    finally:
        stop_heartbeat.set()
        if heartbeat_thread is not None:
            heartbeat_thread.join(timeout=1.0)
        obs.close()
        conn.close()
