"""repro.service -- scheduling-as-a-service: a long-running multi-tenant
frontend over every execution substrate.

Everything else in this repository is one-shot: build a
:class:`~repro.batch.SimJob`, run it, exit.  This package turns that
into a *service* in the sense of the distributed chunk-calculation
line of work (Eleliemy & Ciorba, arXiv:2101.07050; arXiv:1901.02773):
self-scheduling as a shared, long-lived coordination point rather than
a per-run process tree.

* :mod:`repro.service.protocol` -- length-prefixed JSON frames (the
  socket transport that replaces raw pipes), sync and asyncio codecs.
* :mod:`repro.service.jobs` -- the wire job model: a JSON spec names a
  scheme, workload, cluster and engine; :func:`job_from_spec` builds
  the exact :class:`~repro.batch.SimJob` a one-shot run would use, so
  a service-executed job is *byte-diffable* against its one-shot
  equivalent (same canonical stream digest, see :mod:`repro.obs`).
* :mod:`repro.service.pool` -- the shared worker pool: real OS
  processes with the runtime's production concerns re-used (heartbeat
  liveness, deadline-based death detection, incarnation guards so a
  SIGKILLed worker's job is re-executed exactly once).
* :mod:`repro.service.server` -- the asyncio daemon: admission control
  (bounded queue -> backpressure rejects, never unbounded growth),
  per-tenant quotas and round-robin fair dispatch, warm
  :mod:`repro.cache` cost-profile sharing across tenants, graceful
  drain on SIGTERM, per-tenant :mod:`repro.obs` traces and a
  ``/metrics``-style snapshot op.
* :mod:`repro.service.client` -- the blocking client library the CLI
  and the tests drive.
* :mod:`repro.service.cli` -- the ``repro-service`` entry point
  (``serve`` / ``submit`` / ``status`` / ``metrics`` / ``drain``).

The chaos harness doubles as the integration test:
:func:`repro.chaos.inject_service_faults` maps a seeded
:class:`~repro.chaos.FaultPlan` onto live pool workers, and
:func:`repro.verify.audit_service_log` proof-checks the service's job
ledger (exactly-once delivery, tenant isolation, incarnation
freshness) afterwards.
"""

from .client import ServiceClient, ServiceError
from .jobs import JobSpecError, cluster_from_spec, job_from_spec, workload_from_spec
from .pool import WorkerPool
from .protocol import (
    MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from .server import ServiceConfig, ServiceServer, serve_until_complete

__all__ = [
    "MAX_FRAME",
    "FrameDecoder",
    "JobSpecError",
    "ProtocolError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "WorkerPool",
    "cluster_from_spec",
    "encode_frame",
    "job_from_spec",
    "read_frame",
    "recv_frame",
    "send_frame",
    "serve_until_complete",
    "workload_from_spec",
    "write_frame",
]
