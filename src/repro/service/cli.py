"""``repro-service`` -- command-line frontend for the daemon.

Subcommands::

    repro-service serve  --socket /tmp/repro.sock --workers 4
    repro-service submit --socket /tmp/repro.sock --tenant alice \\
                         --scheme TSS --workload uniform --size 500 \\
                         --wait
    repro-service submit --socket /tmp/repro.sock --spec job.json
    repro-service status  --socket /tmp/repro.sock
    repro-service metrics --socket /tmp/repro.sock [--watch]
    repro-service watch   --socket /tmp/repro.sock [--all] [--job ID]
    repro-service drain   --socket /tmp/repro.sock
    repro-top             --socket /tmp/repro.sock

``serve`` runs until drained (SIGTERM or the ``drain`` subcommand);
everything else is a thin wrapper over
:class:`~repro.service.client.ServiceClient` printing JSON to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

__all__ = ["main", "build_parser", "top_main", "TopState"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Loop self-scheduling as a multi-tenant service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_transport(p: argparse.ArgumentParser) -> None:
        p.add_argument("--socket", default="/tmp/repro-service.sock",
                       help="Unix socket path (default %(default)s)")
        p.add_argument("--host", default=None,
                       help="TCP host (overrides --socket)")
        p.add_argument("--port", type=int, default=0,
                       help="TCP port (with --host)")

    serve = sub.add_parser("serve", help="run the daemon until drained")
    add_transport(serve)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--tenant-capacity", type=int, default=16)
    serve.add_argument("--max-requeues", type=int, default=3)
    serve.add_argument("--cache-dir", default=None,
                       help="repro.cache directory shared by tenants")

    submit = sub.add_parser(
        "submit", help="submit a job (flags or --spec JSON file)"
    )
    add_transport(submit)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--spec", default=None,
                        help="path to a JSON job spec ('-' for stdin)")
    submit.add_argument("--scheme", default=None,
                        help="scheme name (e.g. TSS, adaptive:TSS+FSS@8)")
    submit.add_argument("--engine", default="master",
                        choices=["master", "tree", "decentral"])
    submit.add_argument("--workload", default="uniform",
                        help="workload kind (default %(default)s)")
    submit.add_argument("--size", type=int, default=500)
    submit.add_argument("--unit", type=float, default=1e-4)
    submit.add_argument("--cluster-workers", type=int, default=4)
    submit.add_argument("--tag", default="")
    submit.add_argument("--wait", action="store_true",
                        help="block for the result and print it")
    submit.add_argument("--timeout", type=float, default=None)

    metrics = sub.add_parser(
        "metrics",
        help="print the /metrics-style snapshot (or poll it)",
    )
    add_transport(metrics)
    metrics.add_argument("--tenant", default="default")
    metrics.add_argument("--watch", action="store_true",
                         help="poll and render rolling gauges")
    metrics.add_argument("--interval", type=float, default=1.0,
                         help="poll period in seconds "
                              "(default %(default)s)")
    metrics.add_argument("--count", type=int, default=0,
                         help="stop after N polls (0 = forever)")

    watch = sub.add_parser(
        "watch",
        help="subscribe to the live chunk-level event stream",
    )
    add_transport(watch)
    watch.add_argument("--tenant", default="default")
    watch.add_argument("--all", action="store_true",
                       help="watch every tenant (tenant '*')")
    watch.add_argument("--job", default=None,
                       help="stop after this job's terminal event")
    watch.add_argument("--raw", action="store_true",
                       help="print frames as JSON lines instead of "
                            "the rendered summary")
    watch.add_argument("--timeout", type=float, default=None,
                       help="per-frame read timeout in seconds")

    for name, help_text in (
        ("status", "print the daemon's status document"),
        ("drain", "close admission and let the daemon finish"),
        ("trace", "print this tenant's job-level obs events"),
        ("log", "print the pool's job ledger"),
    ):
        p = sub.add_parser(name, help=help_text)
        add_transport(p)
        p.add_argument("--tenant", default="default")
    return parser


def _client(args: argparse.Namespace):
    from .client import ServiceClient

    if args.host is not None:
        return ServiceClient.connect(
            args.host, tenant=args.tenant, port=args.port
        )
    return ServiceClient.connect(args.socket, tenant=args.tenant)


def _spec_from_args(args: argparse.Namespace) -> dict[str, Any]:
    if args.spec is not None:
        if args.spec == "-":
            return json.load(sys.stdin)
        with open(args.spec, "r", encoding="utf-8") as handle:
            return json.load(handle)
    if args.scheme is None:
        raise SystemExit(
            "submit needs --spec or at least --scheme"
        )
    return {
        "scheme": args.scheme,
        "engine": args.engine,
        "workload": {
            "kind": args.workload,
            "size": args.size,
            "unit": args.unit,
        },
        "cluster": {"workers": args.cluster_workers},
        "tag": args.tag,
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server import ServiceConfig, serve_until_complete

    config = ServiceConfig(
        socket_path=None if args.host is not None else args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        tenant_capacity=args.tenant_capacity,
        max_requeues=args.max_requeues,
        cache_dir=args.cache_dir,
    )
    serve_until_complete(config)
    return 0


def _dump(doc: Any) -> None:
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


class TopState(object):
    """Fold pushed stream frames into a renderable dashboard model.

    Pure state -- feed it frames with :meth:`absorb`, ask for a text
    screen with :meth:`render`.  Used by ``repro-service watch`` (one
    summary line per frame) and ``repro-top`` (full redraw); kept free
    of IO so tests can drive it with synthetic frames.
    """

    RECENT = 4

    def __init__(self) -> None:
        self.frames = 0
        self.events = 0
        self.drops = 0
        # (tenant, worker) -> [chunks, iterations, busy, last_size]
        self.workers: dict[tuple, list] = {}
        self.jobs_done: list[str] = []
        self.running: set = set()

    def absorb(self, frame: dict) -> None:
        """Account one ``{"watch": "events"}`` frame."""
        self.frames += 1
        self.drops = int(frame.get("drops", self.drops))
        for ev in frame.get("events", ()):
            self.events += 1
            kind = ev.get("kind")
            tenant = str(frame.get("tenant", "?"))
            if kind == "compute":
                key = (tenant, int(ev.get("worker", -1)))
                row = self.workers.setdefault(key, [0, 0, 0.0, 0])
                start = int(ev.get("start") or 0)
                stop = int(ev.get("stop") or 0)
                row[0] += 1
                row[1] += max(0, stop - start)
                row[2] += float(ev.get("value") or 0.0)
                row[3] = max(0, stop - start)
            elif kind in ("job-result", "job-reject"):
                job = _detail_field(ev, "job")
                if job:
                    self.running.discard(job)
                    self.jobs_done.append(
                        f"{job} {kind[4:]}"
                        + (f" t={ev['value']:.4g}s"
                           if ev.get("value") else "")
                    )
                    del self.jobs_done[:-self.RECENT]
            elif kind == "job-submit":
                job = _detail_field(ev, "job")
                if job:
                    self.running.add(job)

    def summary(self) -> str:
        """One status line (the per-frame ``watch`` output)."""
        return (
            f"frames={self.frames} events={self.events} "
            f"drops={self.drops} running={len(self.running)} "
            f"workers={len(self.workers)}"
        )

    def render(self, gauges: Optional[dict] = None) -> str:
        """Multi-line dashboard (the ``repro-top`` screen)."""
        lines = ["repro-top  " + self.summary()]
        if gauges:
            lines.append(
                " ".join(
                    f"{name}={value:.4g}"
                    for name, value in sorted(gauges.items())
                )
            )
        if self.workers:
            lines.append(
                f"{'tenant':<12} {'wk':>3} {'chunks':>7} "
                f"{'iters':>8} {'last-size':>9} {'busy-s':>9}"
            )
            for (tenant, worker), row in sorted(self.workers.items()):
                lines.append(
                    f"{tenant:<12} {worker:>3} {row[0]:>7} "
                    f"{row[1]:>8} {row[3]:>9} {row[2]:>9.4f}"
                )
        for done in self.jobs_done:
            lines.append(f"  done: {done}")
        return "\n".join(lines)


def _detail_field(ev: dict, key: str) -> str:
    """``job=...``-style token from an event's detail string."""
    for token in str(ev.get("detail", "")).split():
        if token.startswith(key + "="):
            return token[len(key) + 1:]
    return ""


def _rolling_gauges(snapshot: dict) -> dict:
    """The ``rolling_*`` / depth gauges out of a metrics snapshot."""
    picked = {}
    for name, doc in snapshot.items():
        if name.startswith("rolling_") or name in (
            "jobs_queued", "jobs_inflight", "stream_subscribers",
        ):
            picked[name.replace("rolling_", "")] = float(
                doc.get("value", 0.0)
            )
    return picked


def _cmd_metrics_watch(client, args: argparse.Namespace) -> int:
    import time as _time

    polls = 0
    try:
        while True:
            gauges = _rolling_gauges(client.metrics())
            line = " ".join(
                f"{name}={value:.4g}"
                for name, value in sorted(gauges.items())
            )
            print(line, flush=True)
            polls += 1
            if args.count and polls >= args.count:
                return 0
            _time.sleep(max(args.interval, 0.01))
    except KeyboardInterrupt:
        return 0


def _cmd_watch(client, args: argparse.Namespace) -> int:
    tenant = "*" if getattr(args, "all", False) else args.tenant
    state = TopState()
    try:
        for frame in client.watch(
            tenant=tenant, job_id=args.job, timeout=args.timeout
        ):
            if args.raw:
                json.dump(frame, sys.stdout, sort_keys=True)
                sys.stdout.write("\n")
                sys.stdout.flush()
                continue
            if frame.get("watch") == "end":
                break
            state.absorb(frame)
            print(state.summary(), flush=True)
    except KeyboardInterrupt:
        pass
    if not args.raw:
        print(state.render(), flush=True)
    return 0


def top_main(argv: Optional[list[str]] = None) -> int:
    """``repro-top`` -- live cross-tenant dashboard over ``subscribe``.

    Subscribes to every tenant's stream and redraws a per-worker
    progress table on each pushed frame; rolling gauges are polled on
    a second connection at most every ``--interval`` seconds so the
    stream connection stays a pure event reader.
    """
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="live per-tenant/per-worker scheduling dashboard",
    )
    parser.add_argument("--socket", default="/tmp/repro-service.sock")
    parser.add_argument("--host", default=None)
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--tenant", default="*",
                        help="tenant to watch (default: all)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="metrics poll period (seconds)")
    parser.add_argument("--frames", type=int, default=0,
                        help="exit after N frames (0 = run forever)")
    args = parser.parse_args(argv)

    import time as _time

    from .client import ServiceClient, ServiceError

    def connect(tenant: str) -> "ServiceClient":
        if args.host is not None:
            return ServiceClient.connect(
                args.host, tenant=tenant, port=args.port
            )
        return ServiceClient.connect(args.socket, tenant=tenant)

    state = TopState()
    clear = "\x1b[H\x1b[2J" if sys.stdout.isatty() else ""
    try:
        with connect("top") as stream, connect("top-poll") as poll:
            gauges = _rolling_gauges(poll.metrics())
            last_poll = _time.monotonic()
            for frame in stream.watch(tenant=args.tenant):
                if frame.get("watch") == "end":
                    break
                state.absorb(frame)
                now = _time.monotonic()
                if now - last_poll >= args.interval:
                    gauges = _rolling_gauges(poll.metrics())
                    last_poll = now
                print(clear + state.render(gauges), flush=True)
                if args.frames and state.frames >= args.frames:
                    break
    except KeyboardInterrupt:
        return 0
    except ServiceError as exc:
        print(f"repro-top: {exc}", file=sys.stderr)
        return 2
    except (ConnectionRefusedError, FileNotFoundError) as exc:
        print(f"repro-top: cannot reach daemon: {exc}",
              file=sys.stderr)
        return 3
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)

    from .client import ServiceError

    try:
        with _client(args) as client:
            if args.command == "submit":
                job_id = client.submit(_spec_from_args(args))
                if args.wait:
                    _dump(client.wait(job_id, timeout=args.timeout))
                else:
                    _dump({"job_id": job_id})
            elif args.command == "status":
                _dump(client.status())
            elif args.command == "metrics":
                if args.watch:
                    return _cmd_metrics_watch(client, args)
                _dump(client.metrics())
            elif args.command == "watch":
                return _cmd_watch(client, args)
            elif args.command == "drain":
                client.drain()
                _dump({"draining": True})
            elif args.command == "trace":
                _dump(client.trace())
            elif args.command == "log":
                _dump(client.log())
    except ServiceError as exc:
        print(f"repro-service: {exc}", file=sys.stderr)
        return 2
    except (ConnectionRefusedError, FileNotFoundError) as exc:
        print(f"repro-service: cannot reach daemon: {exc}",
              file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
