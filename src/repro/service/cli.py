"""``repro-service`` -- command-line frontend for the daemon.

Subcommands::

    repro-service serve  --socket /tmp/repro.sock --workers 4
    repro-service submit --socket /tmp/repro.sock --tenant alice \\
                         --scheme TSS --workload uniform --size 500 \\
                         --wait
    repro-service submit --socket /tmp/repro.sock --spec job.json
    repro-service status  --socket /tmp/repro.sock
    repro-service metrics --socket /tmp/repro.sock
    repro-service drain   --socket /tmp/repro.sock

``serve`` runs until drained (SIGTERM or the ``drain`` subcommand);
everything else is a thin wrapper over
:class:`~repro.service.client.ServiceClient` printing JSON to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Loop self-scheduling as a multi-tenant service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_transport(p: argparse.ArgumentParser) -> None:
        p.add_argument("--socket", default="/tmp/repro-service.sock",
                       help="Unix socket path (default %(default)s)")
        p.add_argument("--host", default=None,
                       help="TCP host (overrides --socket)")
        p.add_argument("--port", type=int, default=0,
                       help="TCP port (with --host)")

    serve = sub.add_parser("serve", help="run the daemon until drained")
    add_transport(serve)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--tenant-capacity", type=int, default=16)
    serve.add_argument("--max-requeues", type=int, default=3)
    serve.add_argument("--cache-dir", default=None,
                       help="repro.cache directory shared by tenants")

    submit = sub.add_parser(
        "submit", help="submit a job (flags or --spec JSON file)"
    )
    add_transport(submit)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--spec", default=None,
                        help="path to a JSON job spec ('-' for stdin)")
    submit.add_argument("--scheme", default=None,
                        help="scheme name (e.g. TSS, adaptive:TSS+FSS@8)")
    submit.add_argument("--engine", default="master",
                        choices=["master", "tree", "decentral"])
    submit.add_argument("--workload", default="uniform",
                        help="workload kind (default %(default)s)")
    submit.add_argument("--size", type=int, default=500)
    submit.add_argument("--unit", type=float, default=1e-4)
    submit.add_argument("--cluster-workers", type=int, default=4)
    submit.add_argument("--tag", default="")
    submit.add_argument("--wait", action="store_true",
                        help="block for the result and print it")
    submit.add_argument("--timeout", type=float, default=None)

    for name, help_text in (
        ("status", "print the daemon's status document"),
        ("metrics", "print the /metrics-style snapshot"),
        ("drain", "close admission and let the daemon finish"),
        ("trace", "print this tenant's job-level obs events"),
        ("log", "print the pool's job ledger"),
    ):
        p = sub.add_parser(name, help=help_text)
        add_transport(p)
        p.add_argument("--tenant", default="default")
    return parser


def _client(args: argparse.Namespace):
    from .client import ServiceClient

    if args.host is not None:
        return ServiceClient.connect(
            args.host, tenant=args.tenant, port=args.port
        )
    return ServiceClient.connect(args.socket, tenant=args.tenant)


def _spec_from_args(args: argparse.Namespace) -> dict[str, Any]:
    if args.spec is not None:
        if args.spec == "-":
            return json.load(sys.stdin)
        with open(args.spec, "r", encoding="utf-8") as handle:
            return json.load(handle)
    if args.scheme is None:
        raise SystemExit(
            "submit needs --spec or at least --scheme"
        )
    return {
        "scheme": args.scheme,
        "engine": args.engine,
        "workload": {
            "kind": args.workload,
            "size": args.size,
            "unit": args.unit,
        },
        "cluster": {"workers": args.cluster_workers},
        "tag": args.tag,
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server import ServiceConfig, serve_until_complete

    config = ServiceConfig(
        socket_path=None if args.host is not None else args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        tenant_capacity=args.tenant_capacity,
        max_requeues=args.max_requeues,
        cache_dir=args.cache_dir,
    )
    serve_until_complete(config)
    return 0


def _dump(doc: Any) -> None:
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)

    from .client import ServiceError

    try:
        with _client(args) as client:
            if args.command == "submit":
                job_id = client.submit(_spec_from_args(args))
                if args.wait:
                    _dump(client.wait(job_id, timeout=args.timeout))
                else:
                    _dump({"job_id": job_id})
            elif args.command == "status":
                _dump(client.status())
            elif args.command == "metrics":
                _dump(client.metrics())
            elif args.command == "drain":
                client.drain()
                _dump({"draining": True})
            elif args.command == "trace":
                _dump(client.trace())
            elif args.command == "log":
                _dump(client.log())
    except ServiceError as exc:
        print(f"repro-service: {exc}", file=sys.stderr)
        return 2
    except (ConnectionRefusedError, FileNotFoundError) as exc:
        print(f"repro-service: cannot reach daemon: {exc}",
              file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
