"""Blocking client library for the ``repro-service`` daemon.

One :class:`ServiceClient` is one tenant on one connection.  The
protocol is strictly request/response per connection, so a client is
trivially usable from scripts and tests; concurrency across tenants
(the thing the daemon is *for*) comes from opening one client per
tenant -- each gets its own socket, its own FIFO queue in the pool,
and its own obs stream.

Typical use::

    with ServiceClient.connect("/tmp/repro.sock", tenant="alice") as c:
        job_id = c.submit({"scheme": "TSS",
                           "workload": {"kind": "uniform",
                                        "size": 200, "unit": 1e-4}})
        result = c.wait(job_id)
        print(result["digest"], result["result"]["makespan"])
"""

from __future__ import annotations

import dataclasses
import socket
import time
from typing import Any, Optional

from ..runtime.config import env_float
from .protocol import ProtocolError, recv_frame, send_frame

__all__ = ["ClientConfig", "ServiceClient", "ServiceError"]


@dataclasses.dataclass(frozen=True)
class ClientConfig(object):
    """Connect-retry tuning, overridable per process via environment.

    The retry loop in :meth:`ServiceClient.connect` waits
    ``retry_initial`` seconds after the first refused/missing socket
    and doubles the wait per attempt up to ``retry_max`` -- a capped
    exponential backoff, so a client racing a slow daemon start stops
    burning a connect syscall every 50ms while still reacting within
    ``retry_initial`` when the socket appears quickly.

    ``REPRO_CLIENT_RETRY_INITIAL``
        First wait in seconds (default 0.02).
    ``REPRO_CLIENT_RETRY_MAX``
        Wait ceiling in seconds (default 0.5).
    """

    retry_initial: float = 0.02
    retry_max: float = 0.5

    def __post_init__(self) -> None:
        if not (self.retry_initial > 0):
            raise ValueError(
                f"retry_initial must be > 0, got {self.retry_initial}"
            )
        if self.retry_max < self.retry_initial:
            raise ValueError(
                f"retry_max ({self.retry_max}) must be >= "
                f"retry_initial ({self.retry_initial})"
            )

    @classmethod
    def from_env(cls, **overrides) -> "ClientConfig":
        """Defaults, overlaid with ``REPRO_CLIENT_*``, then kwargs."""
        values: dict = {}
        initial = env_float("REPRO_CLIENT_RETRY_INITIAL")
        if initial is not None:
            if initial <= 0:
                raise ValueError(
                    f"environment variable REPRO_CLIENT_RETRY_INITIAL "
                    f"must be > 0, got {initial}"
                )
            values["retry_initial"] = initial
        ceiling = env_float("REPRO_CLIENT_RETRY_MAX")
        if ceiling is not None:
            if ceiling <= 0:
                raise ValueError(
                    f"environment variable REPRO_CLIENT_RETRY_MAX "
                    f"must be > 0, got {ceiling}"
                )
            values["retry_max"] = ceiling
        values.update(overrides)
        return cls(**values)


class ServiceError(RuntimeError):
    """The daemon answered a request with an error reply.

    ``reason`` carries the daemon's machine-readable error code
    (``queue-full``, ``tenant-quota``, ``draining``, ``bad-spec``,
    ``unknown-job``, ``timeout``, ...).
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(
            f"{reason}: {message}" if message else reason
        )
        self.reason = reason


class ServiceClient(object):
    """One tenant's blocking connection to a running daemon."""

    def __init__(self, sock: socket.socket, tenant: str = "default") -> None:
        self._sock = sock
        self.tenant = tenant
        self._seq = 0
        self._subscribed = False
        hello = self._request({"op": "hello", "tenant": tenant})
        self.server_info = {
            k: v for k, v in hello.items() if k not in ("ok", "seq")
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def connect(
        cls,
        address: str,
        tenant: str = "default",
        port: Optional[int] = None,
        timeout: float = 30.0,
        retry_for: float = 0.0,
        config: Optional[ClientConfig] = None,
    ) -> "ServiceClient":
        """Connect to a Unix socket path (or host+port when ``port``
        is given).  ``retry_for`` > 0 keeps retrying a refused /
        missing socket for that many seconds -- handy right after
        spawning a daemon -- waiting with the capped exponential
        backoff configured by ``config`` (default:
        :meth:`ClientConfig.from_env`)."""
        config = config or ClientConfig.from_env()
        deadline = time.monotonic() + retry_for
        delay = config.retry_initial
        while True:
            try:
                if port is not None:
                    sock = socket.create_connection(
                        (address, port), timeout=timeout
                    )
                else:
                    sock = socket.socket(socket.AF_UNIX,
                                         socket.SOCK_STREAM)
                    sock.settimeout(timeout)
                    sock.connect(address)
                return cls(sock, tenant=tenant)
            except (ConnectionRefusedError, FileNotFoundError):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                # Never sleep past the deadline: the final attempt
                # happens as close to ``retry_for`` as the backoff
                # ladder allows.
                time.sleep(min(delay, remaining))
                delay = min(delay * 2.0, config.retry_max)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------

    def _request(self, doc: dict[str, Any]) -> dict[str, Any]:
        self._seq += 1
        doc = dict(doc, seq=self._seq)
        send_frame(self._sock, doc)
        reply = recv_frame(self._sock)
        if reply is None:
            raise ProtocolError(
                "daemon closed the connection mid-request"
            )
        return reply

    def _checked(self, doc: dict[str, Any]) -> dict[str, Any]:
        reply = self._request(doc)
        if not reply.get("ok"):
            raise ServiceError(
                str(reply.get("error", "unknown")),
                str(reply.get("message", "")),
            )
        return reply

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._checked({"op": "ping"}).get("pong"))

    def submit(self, job: dict[str, Any]) -> str:
        """Submit a wire job spec; returns the job id.

        Raises :class:`ServiceError` with the daemon's backpressure
        reason (``queue-full`` / ``tenant-quota`` / ``draining`` /
        ``bad-spec``) when the job is not admitted.
        """
        return str(
            self._checked({"op": "submit", "job": job})["job_id"]
        )

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """Block until a job reaches a terminal state; returns its
        payload (``result``, ``digest``, ``state``, ``requeues``,
        optionally ``results`` / ``trace``)."""
        doc: dict[str, Any] = {"op": "wait", "job_id": job_id}
        if timeout is not None:
            doc["timeout"] = timeout
        return self._checked(doc)

    def run(
        self, job: dict[str, Any], timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """submit + wait in one call."""
        return self.wait(self.submit(job), timeout=timeout)

    def status(self) -> dict[str, Any]:
        return self._checked({"op": "status"})["status"]

    def metrics(self) -> dict[str, Any]:
        """The daemon's ``/metrics``-style registry snapshot."""
        return self._checked({"op": "metrics"})["metrics"]

    def trace(self, tenant: Optional[str] = None) -> list[dict]:
        """This tenant's job-level obs events (``tenant='*'`` for the
        merged cross-tenant stream)."""
        doc: dict[str, Any] = {"op": "trace"}
        if tenant is not None:
            doc["tenant"] = tenant
        return list(self._checked(doc)["events"])

    def log(self) -> list[dict]:
        """The pool's append-only job ledger (for audits)."""
        return list(self._checked({"op": "log"})["log"])

    def drain(self) -> None:
        """Ask the daemon to drain (admission closes immediately)."""
        self._checked({"op": "drain"})

    def inject_chaos(
        self, plan_json: dict, time_scale: float = 1.0
    ) -> int:
        """Ship a serialized FaultPlan; returns faults scheduled."""
        return int(
            self._checked(
                {"op": "chaos", "plan": plan_json,
                 "time_scale": time_scale}
            )["scheduled"]
        )

    def kill_worker(self, slot: int) -> bool:
        """SIGKILL one pool slot (chaos hook); True if a live worker
        was hit."""
        return bool(
            self._checked(
                {"op": "kill-worker", "worker": slot}
            )["killed"]
        )

    def subscribe(self, tenant: Optional[str] = None) -> dict[str, Any]:
        """Turn this connection into a live event stream.

        After this call the daemon pushes ``{"watch": "events", "n":
        ..., "drops": ..., "tenant": ..., "events": [...]}`` frames as
        jobs run; read them with :meth:`next_frame` or iterate
        :meth:`watch` instead of issuing further requests on this
        connection.  ``tenant='*'`` subscribes to every tenant's
        stream; the default is this client's own tenant.
        """
        if self._subscribed:
            raise ServiceError(
                "already-subscribed",
                "this connection is already a stream",
            )
        doc: dict[str, Any] = {"op": "subscribe"}
        doc["tenant"] = tenant if tenant is not None else self.tenant
        reply = self._checked(doc)
        self._subscribed = True
        return reply

    def next_frame(
        self, timeout: Optional[float] = None
    ) -> Optional[dict[str, Any]]:
        """One pushed stream frame (after :meth:`subscribe`).

        Returns ``None`` on a clean end of stream (daemon closed the
        connection).  ``timeout`` overrides the socket timeout for
        this read; ``socket.timeout`` propagates on expiry.
        """
        if timeout is not None:
            self._sock.settimeout(timeout)
        return recv_frame(self._sock)

    def watch(
        self,
        tenant: Optional[str] = None,
        job_id: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Generator over pushed stream frames (subscribes first).

        Yields each ``{"watch": ...}`` frame as a dict.  The stream
        ends (StopIteration) on the daemon's terminal ``{"watch":
        "end"}`` frame, on a clean connection close, or -- when
        ``job_id`` is given -- right after the frame carrying that
        job's terminal ``job-result`` / ``job-reject`` event, which is
        how ``repro-service watch --job`` knows it is done.
        """
        if not self._subscribed:
            self.subscribe(tenant=tenant)
        needle = f"job={job_id}" if job_id is not None else None
        while True:
            frame = self.next_frame(timeout=timeout)
            if frame is None:
                return
            yield frame
            if frame.get("watch") == "end":
                return
            if needle is None:
                continue
            for ev in frame.get("events", ()):
                if ev.get("kind") in ("job-result", "job-reject") \
                        and needle in ev.get("detail", "").split():
                    return
