"""Blocking client library for the ``repro-service`` daemon.

One :class:`ServiceClient` is one tenant on one connection.  The
protocol is strictly request/response per connection, so a client is
trivially usable from scripts and tests; concurrency across tenants
(the thing the daemon is *for*) comes from opening one client per
tenant -- each gets its own socket, its own FIFO queue in the pool,
and its own obs stream.

Typical use::

    with ServiceClient.connect("/tmp/repro.sock", tenant="alice") as c:
        job_id = c.submit({"scheme": "TSS",
                           "workload": {"kind": "uniform",
                                        "size": 200, "unit": 1e-4}})
        result = c.wait(job_id)
        print(result["digest"], result["result"]["makespan"])
"""

from __future__ import annotations

import socket
import time
from typing import Any, Optional

from .protocol import ProtocolError, recv_frame, send_frame

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The daemon answered a request with an error reply.

    ``reason`` carries the daemon's machine-readable error code
    (``queue-full``, ``tenant-quota``, ``draining``, ``bad-spec``,
    ``unknown-job``, ``timeout``, ...).
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(
            f"{reason}: {message}" if message else reason
        )
        self.reason = reason


class ServiceClient(object):
    """One tenant's blocking connection to a running daemon."""

    def __init__(self, sock: socket.socket, tenant: str = "default") -> None:
        self._sock = sock
        self.tenant = tenant
        self._seq = 0
        hello = self._request({"op": "hello", "tenant": tenant})
        self.server_info = {
            k: v for k, v in hello.items() if k not in ("ok", "seq")
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def connect(
        cls,
        address: str,
        tenant: str = "default",
        port: Optional[int] = None,
        timeout: float = 30.0,
        retry_for: float = 0.0,
    ) -> "ServiceClient":
        """Connect to a Unix socket path (or host+port when ``port``
        is given).  ``retry_for`` > 0 keeps retrying a refused /
        missing socket for that many seconds -- handy right after
        spawning a daemon."""
        deadline = time.monotonic() + retry_for
        while True:
            try:
                if port is not None:
                    sock = socket.create_connection(
                        (address, port), timeout=timeout
                    )
                else:
                    sock = socket.socket(socket.AF_UNIX,
                                         socket.SOCK_STREAM)
                    sock.settimeout(timeout)
                    sock.connect(address)
                return cls(sock, tenant=tenant)
            except (ConnectionRefusedError, FileNotFoundError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------

    def _request(self, doc: dict[str, Any]) -> dict[str, Any]:
        self._seq += 1
        doc = dict(doc, seq=self._seq)
        send_frame(self._sock, doc)
        reply = recv_frame(self._sock)
        if reply is None:
            raise ProtocolError(
                "daemon closed the connection mid-request"
            )
        return reply

    def _checked(self, doc: dict[str, Any]) -> dict[str, Any]:
        reply = self._request(doc)
        if not reply.get("ok"):
            raise ServiceError(
                str(reply.get("error", "unknown")),
                str(reply.get("message", "")),
            )
        return reply

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._checked({"op": "ping"}).get("pong"))

    def submit(self, job: dict[str, Any]) -> str:
        """Submit a wire job spec; returns the job id.

        Raises :class:`ServiceError` with the daemon's backpressure
        reason (``queue-full`` / ``tenant-quota`` / ``draining`` /
        ``bad-spec``) when the job is not admitted.
        """
        return str(
            self._checked({"op": "submit", "job": job})["job_id"]
        )

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """Block until a job reaches a terminal state; returns its
        payload (``result``, ``digest``, ``state``, ``requeues``,
        optionally ``results`` / ``trace``)."""
        doc: dict[str, Any] = {"op": "wait", "job_id": job_id}
        if timeout is not None:
            doc["timeout"] = timeout
        return self._checked(doc)

    def run(
        self, job: dict[str, Any], timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """submit + wait in one call."""
        return self.wait(self.submit(job), timeout=timeout)

    def status(self) -> dict[str, Any]:
        return self._checked({"op": "status"})["status"]

    def metrics(self) -> dict[str, Any]:
        """The daemon's ``/metrics``-style registry snapshot."""
        return self._checked({"op": "metrics"})["metrics"]

    def trace(self, tenant: Optional[str] = None) -> list[dict]:
        """This tenant's job-level obs events (``tenant='*'`` for the
        merged cross-tenant stream)."""
        doc: dict[str, Any] = {"op": "trace"}
        if tenant is not None:
            doc["tenant"] = tenant
        return list(self._checked(doc)["events"])

    def log(self) -> list[dict]:
        """The pool's append-only job ledger (for audits)."""
        return list(self._checked({"op": "log"})["log"])

    def drain(self) -> None:
        """Ask the daemon to drain (admission closes immediately)."""
        self._checked({"op": "drain"})

    def inject_chaos(
        self, plan_json: dict, time_scale: float = 1.0
    ) -> int:
        """Ship a serialized FaultPlan; returns faults scheduled."""
        return int(
            self._checked(
                {"op": "chaos", "plan": plan_json,
                 "time_scale": time_scale}
            )["scheduled"]
        )

    def kill_worker(self, slot: int) -> bool:
        """SIGKILL one pool slot (chaos hook); True if a live worker
        was hit."""
        return bool(
            self._checked(
                {"op": "kill-worker", "worker": slot}
            )["killed"]
        )
