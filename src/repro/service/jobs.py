"""The wire job model: JSON specs -> the exact one-shot ``SimJob``.

A service client describes a loop job as pure JSON (it crosses a
socket), and the daemon rebuilds from it the *same*
:class:`~repro.batch.SimJob` a one-shot caller would construct by
hand.  That identity is the service's core correctness contract: a
job executed through the daemon and the identical job run as
``job_from_spec(spec).run()`` in a single process produce bit-equal
results and byte-equal canonical stream digests (see
:func:`repro.obs.stream_digest`), so the whole verification machinery
built for one-shot runs transfers to service runs unchanged.

Spec shape (only ``scheme`` and ``workload`` are required)::

    {
      "scheme":   "TSS",                  # any registry name, incl.
                                          # "adaptive:TSS+FSS@8"
      "engine":   "master",               # master | tree | decentral
      "workload": {"kind": "uniform", "size": 500, "unit": 1e-4},
      "cluster":  {"nodes": [{"name": "n0", "speed": 100.0}, ...],
                   "master_service": 2e-4, ...},
      "params":   {"alpha": 2.0, ...},    # extra simulate kwargs
      "chaos":    {...FaultPlan.to_json()...},   # optional fault plan
      "chaos_scale": 0.5,                 # optional FaultPlan.scaled
      "tag":      "free-form label",
      "results":  false,                  # ship loop results back?
      "trace":    false                   # ship the obs trace back?
    }

``cluster`` defaults to ``workers`` (default 4) identical 100-ops/s
nodes.  Workload kinds map onto :mod:`repro.workloads`: ``uniform``,
``linear``, ``conditional``, ``random``, ``gaussian-peak``, ``trace``,
``spin`` and ``mandelbrot`` (the paper's loop; expensive -- its cost
profile is resolved once in the daemon and shared across every tenant
through :mod:`repro.cache`).
"""

from __future__ import annotations

from typing import Any, Optional

from ..batch import SimJob
from ..simulation import ClusterSpec, NodeSpec, SimulationError
from ..workloads import Workload

__all__ = [
    "JobSpecError",
    "workload_from_spec",
    "cluster_from_spec",
    "job_from_spec",
]


class JobSpecError(ValueError):
    """A wire job spec is malformed (unknown kind, bad field, ...)."""


def _spec_number(value: Any, what: str) -> float:
    """Coerce a JSON field to float, turning junk into a bad-spec.

    Raw ``float(...)`` on untrusted wire input would escape the
    admission guard and kill the connection handler instead of
    producing a ``bad-spec`` rejection.
    """
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise JobSpecError(
            f"{what} must be a number, got {value!r}"
        ) from exc


def _build_uniform(spec: dict) -> Workload:
    from ..workloads import UniformWorkload

    return UniformWorkload(
        size=int(spec["size"]), unit=float(spec.get("unit", 1.0))
    )


def _build_linear(spec: dict) -> Workload:
    from ..workloads import LinearWorkload

    return LinearWorkload(
        size=int(spec["size"]),
        increasing=bool(spec.get("increasing", True)),
        base=float(spec.get("base", 1.0)),
        slope=float(spec.get("slope", 1.0)),
    )


def _build_conditional(spec: dict) -> Workload:
    from ..workloads import ConditionalWorkload

    return ConditionalWorkload(
        size=int(spec["size"]),
        cost_true=float(spec.get("cost_true", 10.0)),
        cost_false=float(spec.get("cost_false", 1.0)),
    )


def _build_random(spec: dict) -> Workload:
    from ..workloads import RandomWorkload

    return RandomWorkload(
        size=int(spec["size"]),
        seed=int(spec.get("seed", 0)),
        mean=float(spec.get("mean", 1.0)),
        sigma=float(spec.get("sigma", 1.0)),
    )


def _build_gaussian(spec: dict) -> Workload:
    from ..workloads import GaussianPeakWorkload

    return GaussianPeakWorkload(
        size=int(spec["size"]),
        amplitude=float(spec.get("amplitude", 100.0)),
        floor=float(spec.get("floor", 1.0)),
        center=(
            float(spec["center"]) if spec.get("center") is not None
            else None
        ),
        width=(
            float(spec["width"]) if spec.get("width") is not None
            else None
        ),
    )


def _build_trace(spec: dict) -> Workload:
    from ..workloads.synthetic import TraceWorkload

    costs = spec.get("costs")
    if not isinstance(costs, (list, tuple)) or not costs:
        raise JobSpecError(
            "trace workloads need a non-empty 'costs' array"
        )
    return TraceWorkload(costs)


def _build_spin(spec: dict) -> Workload:
    from ..workloads.synthetic import SpinWorkload

    return SpinWorkload(
        size=int(spec["size"]),
        spins=int(spec.get("spins", 20)),
        veclen=int(spec.get("veclen", 2048)),
    )


def _build_mandelbrot(spec: dict) -> Workload:
    from ..workloads import MandelbrotWorkload

    kwargs: dict[str, Any] = {
        "width": int(spec.get("width", 400)),
        "height": int(spec.get("height", 200)),
    }
    if spec.get("max_iter") is not None:
        kwargs["max_iter"] = int(spec["max_iter"])
    wl = MandelbrotWorkload(**kwargs)
    sf = spec.get("sf")
    if sf is not None:
        from ..workloads import ReorderedWorkload

        return ReorderedWorkload(wl, int(sf))
    return wl


_WORKLOAD_BUILDERS = {
    "uniform": _build_uniform,
    "linear": _build_linear,
    "conditional": _build_conditional,
    "random": _build_random,
    "gaussian-peak": _build_gaussian,
    "trace": _build_trace,
    "spin": _build_spin,
    "mandelbrot": _build_mandelbrot,
}


def workload_from_spec(spec: dict) -> Workload:
    """Build the workload a JSON spec names (see module doc)."""
    if not isinstance(spec, dict):
        raise JobSpecError(
            f"workload spec must be an object, got {type(spec).__name__}"
        )
    kind = spec.get("kind")
    builder = _WORKLOAD_BUILDERS.get(kind)
    if builder is None:
        raise JobSpecError(
            f"unknown workload kind {kind!r}; known kinds: "
            f"{', '.join(sorted(_WORKLOAD_BUILDERS))}"
        )
    if kind not in ("trace", "mandelbrot") and "size" not in spec:
        raise JobSpecError(f"{kind} workloads need a 'size'")
    try:
        return builder(spec)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, JobSpecError):
            raise
        raise JobSpecError(f"bad {kind} workload spec: {exc}") from exc


def cluster_from_spec(
    spec: Optional[dict], default_workers: int = 4
) -> ClusterSpec:
    """Build a :class:`ClusterSpec` from JSON (or the default cluster).

    ``None`` (or ``{"workers": p}``) yields ``p`` identical
    100-ops/s nodes -- the homogeneous testbed most service jobs want.
    An explicit ``nodes`` array carries the full heterogeneous form.
    """
    spec = spec or {}
    if not isinstance(spec, dict):
        raise JobSpecError(
            f"cluster spec must be an object, got {type(spec).__name__}"
        )
    cluster_kwargs: dict[str, Any] = {}
    for field in ("master_service", "request_bytes", "reply_bytes",
                  "result_bytes_per_item", "master_bandwidth"):
        if spec.get(field) is not None:
            cluster_kwargs[field] = _spec_number(
                spec[field], f"cluster {field}"
            )
    raw_nodes = spec.get("nodes")
    if raw_nodes is None:
        try:
            workers = int(spec.get("workers", default_workers))
        except (TypeError, ValueError) as exc:
            raise JobSpecError(
                f"workers must be an integer, got "
                f"{spec.get('workers')!r}"
            ) from exc
        if workers < 1:
            raise JobSpecError(f"workers must be >= 1, got {workers}")
        raw_nodes = [{"name": f"n{i}", "speed": 100.0}
                     for i in range(workers)]
    if not isinstance(raw_nodes, (list, tuple)):
        raise JobSpecError(
            f"cluster nodes must be an array, got "
            f"{type(raw_nodes).__name__}"
        )
    nodes = []
    for i, doc in enumerate(raw_nodes):
        if not isinstance(doc, dict) or "speed" not in doc:
            raise JobSpecError(
                f"node {i} must be an object with at least a 'speed'"
            )
        node_kwargs: dict[str, Any] = {
            "name": str(doc.get("name", f"n{i}")),
            "speed": _spec_number(doc["speed"], f"node {i} speed"),
        }
        for field in ("latency", "bandwidth", "virtual_power",
                      "fails_at"):
            if doc.get(field) is not None:
                node_kwargs[field] = _spec_number(
                    doc[field], f"node {i} {field}"
                )
        if doc.get("segment") is not None:
            node_kwargs["segment"] = str(doc["segment"])
        try:
            nodes.append(NodeSpec(**node_kwargs))
        except SimulationError as exc:
            # NodeSpec's own range validation (speed > 0, ...).
            raise JobSpecError(f"bad node {i}: {exc}") from exc
    try:
        return ClusterSpec(nodes=nodes, **cluster_kwargs)
    except (TypeError, ValueError) as exc:
        # TypeError: unknown kwarg from the spec; ValueError: the
        # constructor's own validation.  Anything else is a real bug.
        raise JobSpecError(f"bad cluster spec: {exc}") from exc


def job_from_spec(spec: dict) -> SimJob:
    """Build the one-shot :class:`SimJob` a wire spec describes.

    Raises :class:`JobSpecError` on anything malformed -- including an
    unknown scheme name, checked against the registry here so the
    daemon rejects at admission instead of failing deep inside a pool
    worker.
    """
    if not isinstance(spec, dict):
        raise JobSpecError(
            f"job spec must be an object, got {type(spec).__name__}"
        )
    scheme = spec.get("scheme")
    if not isinstance(scheme, str) or not scheme:
        raise JobSpecError("job spec needs a 'scheme' string")
    from ..core import registry
    from ..core.base import SchemeError

    try:
        registry.parse(scheme)
    except SchemeError as exc:
        raise JobSpecError(str(exc)) from exc
    engine = spec.get("engine", "master")
    workload = workload_from_spec(spec.get("workload"))
    cluster = cluster_from_spec(spec.get("cluster"))
    params = dict(spec.get("params") or {})
    if spec.get("chaos") is not None:
        from ..chaos import FaultPlan

        try:
            plan = FaultPlan.from_json(spec["chaos"])
        except (KeyError, TypeError, ValueError) as exc:
            # The shapes malformed JSON actually produces: missing
            # keys, wrong field types, bad enum values.
            raise JobSpecError(f"bad chaos plan: {exc!r}") from exc
        scale = spec.get("chaos_scale")
        if scale is not None:
            plan = plan.scaled(_spec_number(scale, "chaos_scale"))
        params["chaos"] = plan
    if spec.get("results"):
        params["collect_results"] = True
    try:
        return SimJob(
            scheme=scheme,
            workload=workload,
            cluster=cluster,
            engine=str(engine),
            params=params,
            tag=str(spec.get("tag", "")),
            collect_events=True,
        )
    except ValueError as exc:
        raise JobSpecError(str(exc)) from exc
