"""The service's shared worker pool: real processes, production rules.

A :class:`WorkerPool` owns ``size`` long-lived OS worker processes
shared by *every* tenant, and re-uses the hardening the one-shot
runtime grew in earlier work (:mod:`repro.runtime`):

* **heartbeats** -- each worker runs a daemon beat thread, so the pool
  can tell "busy on a long chunk" from "dead" (the same contract as
  :class:`repro.runtime.config.RuntimeConfig`'s
  ``heartbeat_interval`` / ``worker_deadline`` pair, and configured by
  the same object);
* **death detection** -- the pump waits on worker pipes *and* process
  sentinels, so a SIGKILL is noticed immediately and a silent hang at
  the liveness deadline;
* **incarnation guards** -- each (re)spawn of a worker slot gets a new
  incarnation number; a job's result is only accepted from the
  incarnation the job is currently assigned to, and a dead worker's
  pipe is closed before its job is requeued, so re-execution is
  *exactly-once* (the audit in :func:`repro.verify.audit_service_log`
  proves it from the pool's ledger);
* **fair dispatch** -- pending jobs live in per-tenant FIFO queues
  served round-robin, so one chatty tenant cannot starve the rest;
* **bounded requeues** -- a job that keeps killing workers fails with
  ``too-many-requeues`` instead of crash-looping the pool.

The pool is transport-agnostic: the asyncio daemon drives it through
:meth:`submit` and a completion callback, and the unit tests drive it
directly with plain threads.  Every state transition lands in
:attr:`WorkerPool.log`, the service ledger.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import signal
import threading
import time
from collections import deque
from multiprocessing.connection import wait as mp_wait
from typing import Any, Callable, Optional

from ..batch import SimJob
from ..obs import BufferedCollector, stream_digest
from ..obs.logutil import get_logger
from ..runtime.config import RuntimeConfig

__all__ = ["JobRecord", "WorkerPool", "service_worker_main"]

_log = get_logger("service.pool")

#: Jobs are abandoned after this many death-triggered re-executions.
DEFAULT_MAX_REQUEUES = 3


class _StreamCollector(object):
    """Truthy collector that forwards events over the worker pipe.

    Retains the full event list (so the result payload and digest are
    byte-identical to an unstreamed run) while batching compact dict
    forms to the pump as ``("ev", job_id, batch)`` messages.  Send
    failures are swallowed: streaming is best-effort and must never
    fail the job itself.
    """

    BATCH = 64

    def __init__(self, send, job_id: str) -> None:
        self._send = send
        self._job_id = job_id
        self._pending: list[dict] = []
        self.events: list = []

    def __bool__(self) -> bool:
        return True

    def emit(self, event) -> None:
        self.events.append(event)
        self._pending.append(event.to_dict())
        if len(self._pending) >= self.BATCH:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        try:
            self._send(("ev", self._job_id, batch))
        except (OSError, ValueError, BrokenPipeError):
            pass  # daemon went away; the job still finishes

    def close(self) -> None:
        self.flush()


def _execute_payload(
    job, want_results: bool, want_trace: bool, collector=None
) -> dict:
    """Run one job in the current process; JSON-safe result payload.

    The digest is computed *here*, from the same
    :func:`~repro.obs.stream_digest` a one-shot caller would apply to
    ``job.run().obs_events`` -- that equality is the service's
    bit-exactness contract.  ``collector`` (a
    :class:`_StreamCollector`) taps the identical events live without
    perturbing that digest.
    """
    try:
        if collector is not None:
            result = job.run(collector=collector)
        else:
            result = job.run()
    except BaseException as exc:  # noqa: BLE001 - ferried to the client
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
        }
    events = getattr(result, "obs_events", None) or []
    doc: dict[str, Any] = {
        "ok": True,
        "digest": stream_digest(events),
        "events_emitted": len(events),
    }
    if hasattr(result, "to_dict"):
        doc["result"] = result.to_dict(
            include_results=bool(
                want_results and getattr(result, "results", None)
                is not None
            )
        )
    else:  # runtime RunResult: summarize the dataclass by hand
        doc["result"] = {
            "scheme": result.scheme,
            "elapsed": result.elapsed,
            "chunks": len(result.chunks),
            "requeued": result.requeued,
        }
        if want_results and result.results is not None:
            doc["result"]["results"] = [
                float(x) for x in result.results.ravel()
            ]
    if want_trace:
        doc["trace"] = [ev.to_dict() for ev in events]
    return doc


def service_worker_main(
    conn,
    worker_id: int,
    heartbeat_interval: Optional[float],
) -> None:
    """Pool worker process target: loop jobs until ``stop`` or EOF.

    A daemon beat thread shares the pipe under a lock, so liveness
    survives arbitrarily long jobs (the same trick as
    :func:`repro.runtime.worker.worker_main`).
    """
    send_lock = threading.Lock()
    stop_beat = threading.Event()

    def _send(msg) -> None:
        with send_lock:
            conn.send(msg)

    if heartbeat_interval:
        def _beat() -> None:
            while not stop_beat.wait(heartbeat_interval):
                try:
                    _send(("hb", worker_id))
                except (OSError, ValueError, BrokenPipeError):
                    return

        threading.Thread(target=_beat, daemon=True).start()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # daemon went away: die quietly
            if msg[0] == "stop":
                return
            _op, job_id, job, want_results, want_trace, want_stream = msg
            collector = (
                _StreamCollector(_send, job_id) if want_stream else None
            )
            payload = _execute_payload(
                job, want_results, want_trace, collector=collector
            )
            if collector is not None:
                # Pipe order is delivery order: every chunk event is
                # on the wire before the terminal result.
                collector.flush()
            try:
                _send(("done", job_id, payload))
            except (OSError, ValueError, BrokenPipeError):
                return
    finally:
        stop_beat.set()


@dataclasses.dataclass
class JobRecord(object):
    """One admitted job's full lifecycle inside the service."""

    job_id: str
    tenant: str
    job: SimJob
    want_results: bool = False
    want_trace: bool = False
    want_stream: bool = False
    state: str = "queued"  # queued | running | done | failed
    worker: int = -1
    incarnation: int = -1
    requeues: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    payload: Optional[dict] = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")


class _Handle(object):
    """One worker slot: the live process behind it may be reincarnated."""

    __slots__ = ("slot", "proc", "conn", "incarnation", "last_seen",
                 "record")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.proc = None
        self.conn = None
        self.incarnation = -1
        self.last_seen = 0.0
        self.record: Optional[JobRecord] = None


class WorkerPool(object):
    """Shared multi-tenant execution pool (see module doc).

    ``on_complete(record)`` fires from the pump thread whenever a job
    reaches a terminal state; the daemon bridges it onto its event
    loop, the tests satisfy it with a plain callback.
    ``on_idle()`` fires whenever the pool transitions to fully idle
    (nothing queued, nothing running) -- the drain hook.
    """

    def __init__(
        self,
        size: int,
        config: Optional[RuntimeConfig] = None,
        on_complete: Optional[Callable[[JobRecord], None]] = None,
        on_idle: Optional[Callable[[], None]] = None,
        on_events: Optional[
            Callable[[JobRecord, list], None]
        ] = None,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        mp_context: str = "fork",
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = int(size)
        self.config = config or RuntimeConfig(
            poll_timeout=0.25,
            worker_deadline=30.0,
            heartbeat_interval=0.5,
            join_timeout=5.0,
        )
        self.on_complete = on_complete or (lambda record: None)
        self.on_idle = on_idle or (lambda: None)
        self.on_events = on_events or (lambda record, batch: None)
        self.max_requeues = int(max_requeues)
        self._ctx = mp.get_context(mp_context)
        self._handles: list[_Handle] = [
            _Handle(slot) for slot in range(self.size)
        ]
        self._queues: dict[str, deque[JobRecord]] = {}
        self._rr: deque[str] = deque()
        self._records: dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._wake_r, self._wake_w = os.pipe()
        self._pump: Optional[threading.Thread] = None
        self._running = False
        self._t0 = time.monotonic()
        #: The service ledger: every submit/assign/result/death/requeue,
        #: consumed by :func:`repro.verify.audit_service_log`.
        self.log: list[dict] = []
        #: Per-tenant job-level ObsEvents (source ``service``).
        self.obs = BufferedCollector()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._running:
            return self
        self._running = True
        self._t0 = time.monotonic()
        for handle in self._handles:
            self._spawn(handle)
        self._pump = threading.Thread(
            target=self._pump_loop, name="service-pool-pump", daemon=True
        )
        self._pump.start()
        return self

    def stop(self) -> None:
        """Tear the pool down (jobs still queued are left unfinished)."""
        if not self._running:
            return
        self._running = False
        self._wake()
        if self._pump is not None:
            self._pump.join(timeout=self.config.join_timeout)
        for handle in self._handles:
            conn, proc = handle.conn, handle.proc
            if conn is not None:
                try:
                    conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
                conn.close()
                handle.conn = None
            if proc is not None and proc.is_alive():
                proc.join(timeout=self.config.join_timeout)
                if proc.is_alive():  # pragma: no cover - hang guard
                    proc.terminate()
                    proc.join(timeout=1.0)
        os.close(self._wake_r)
        os.close(self._wake_w)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission and state ----------------------------------------------

    def submit(self, record: JobRecord) -> None:
        """Enqueue an admitted job (admission control is the server's)."""
        record.submitted_at = self.now()
        with self._lock:
            queue = self._queues.get(record.tenant)
            if queue is None:
                queue = self._queues[record.tenant] = deque()
                self._rr.append(record.tenant)
            queue.append(record)
            self._records[record.job_id] = record
            self._append_log_locked(
                "submit", record, worker=None, incarnation=None
            )
        self._wake()

    def record(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def now(self) -> float:
        """Seconds since the pool started (the service clock)."""
        return time.monotonic() - self._t0

    def stats(self) -> dict:
        with self._lock:
            queued = {t: len(q) for t, q in self._queues.items() if q}
            inflight = sum(
                1 for h in self._handles if h.record is not None
            )
            return {
                "queued": sum(queued.values()),
                "queued_by_tenant": queued,
                "inflight": inflight,
                "workers": self.size,
                "workers_live": sum(
                    1
                    for h in self._handles
                    if h.proc is not None and h.proc.is_alive()
                ),
            }

    def queued_for(self, tenant: str) -> int:
        with self._lock:
            queue = self._queues.get(tenant)
            return len(queue) if queue else 0

    def pending_total(self) -> int:
        """Jobs admitted but not terminal (queued + running)."""
        with self._lock:
            return sum(len(q) for q in self._queues.values()) + sum(
                1 for h in self._handles if h.record is not None
            )

    def idle(self) -> bool:
        return self.pending_total() == 0

    # -- chaos hooks ---------------------------------------------------------

    def kill_worker(self, slot: int) -> bool:
        """SIGKILL one worker slot's current incarnation (chaos hook).

        Returns False when the slot has no live process right now.  The
        pump notices the death through the process sentinel, requeues
        the victim's job, and respawns the slot.
        """
        if not 0 <= slot < self.size:
            raise ValueError(
                f"worker slot must be in [0, {self.size}), got {slot}"
            )
        handle = self._handles[slot]
        proc = handle.proc
        if proc is None or not proc.is_alive() or proc.pid is None:
            return False
        os.kill(proc.pid, signal.SIGKILL)
        return True

    def worker_pids(self) -> list[Optional[int]]:
        return [
            h.proc.pid if h.proc is not None else None
            for h in self._handles
        ]

    def busy_slots(self) -> dict[int, str]:
        """``{slot: job_id}`` for slots currently executing a job."""
        with self._lock:
            return {
                h.slot: h.record.job_id
                for h in self._handles
                if h.record is not None
            }

    # -- internals -----------------------------------------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - closed during stop
            pass

    def _append_log_locked(
        self,
        ev: str,
        record: JobRecord,
        worker: Optional[int],
        incarnation: Optional[int],
        **extra,
    ) -> None:
        entry = {
            "ev": ev,
            "job": record.job_id,
            "tenant": record.tenant,
            "at": self.now(),
        }
        if worker is not None:
            entry["worker"] = worker
        if incarnation is not None:
            entry["incarnation"] = incarnation
        entry.update(extra)
        self.log.append(entry)

    def _spawn(self, handle: _Handle) -> None:
        parent, child = self._ctx.Pipe()
        handle.incarnation += 1
        proc = self._ctx.Process(
            target=service_worker_main,
            args=(child, handle.slot),
            kwargs={
                "heartbeat_interval": self.config.heartbeat_interval,
            },
            # Non-daemonic: a pool worker may itself spawn processes
            # (engine="runtime" jobs run the real multiprocessing
            # runtime inside the slot).
            daemon=False,
            name=f"repro-service-w{handle.slot}.{handle.incarnation}",
        )
        proc.start()
        child.close()
        handle.proc = proc
        handle.conn = parent
        handle.last_seen = time.monotonic()
        _log.info(
            "spawned worker slot=%d incarnation=%d pid=%s",
            handle.slot, handle.incarnation, proc.pid,
        )

    def _pump_loop(self) -> None:
        while self._running:
            waitables: list = [self._wake_r]
            by_conn = {}
            by_sentinel = {}
            for handle in self._handles:
                if handle.conn is not None:
                    waitables.append(handle.conn)
                    by_conn[handle.conn] = handle
                if handle.proc is not None:
                    waitables.append(handle.proc.sentinel)
                    by_sentinel[handle.proc.sentinel] = handle
            ready = mp_wait(waitables, timeout=self.config.poll_timeout)
            if not self._running:
                return
            dead: list[_Handle] = []
            for obj in ready:
                if obj == self._wake_r:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:  # pragma: no cover
                        pass
                    continue
                handle = by_conn.get(obj)
                if handle is not None:
                    if not self._drain_conn(handle):
                        dead.append(handle)
                    continue
                handle = by_sentinel.get(obj)
                if handle is not None and not handle.proc.is_alive():
                    dead.append(handle)
            now = time.monotonic()
            deadline = self.config.worker_deadline
            for handle in self._handles:
                if handle in dead or handle.proc is None:
                    continue
                if not handle.proc.is_alive():
                    dead.append(handle)
                elif deadline is not None \
                        and now - handle.last_seen > deadline:
                    # Silent past the liveness deadline: treat as dead.
                    # SIGKILL first so a wedged-but-alive incarnation
                    # can never deliver a stale result later.
                    if handle.proc.pid is not None:
                        try:
                            os.kill(handle.proc.pid, signal.SIGKILL)
                        except ProcessLookupError:  # pragma: no cover
                            pass
                    dead.append(handle)
            for handle in {id(h): h for h in dead}.values():
                self._revive(handle)
            self._dispatch()
            if self.idle():
                self.on_idle()

    def _drain_conn(self, handle: _Handle) -> bool:
        """Pull every pending message; False when the pipe is dead."""
        while True:
            try:
                if not handle.conn.poll(0):
                    return True
                msg = handle.conn.recv()
            except (EOFError, OSError):
                return False
            handle.last_seen = time.monotonic()
            if msg[0] == "hb":
                continue
            if msg[0] == "ev":
                self._handle_events(handle, msg[1], msg[2])
                continue
            if msg[0] == "done":
                self._handle_done(handle, msg[1], msg[2])

    def _handle_events(
        self, handle: _Handle, job_id: str, batch: list
    ) -> None:
        """Chunk-level events streamed mid-run by a worker.

        The same freshness rule as results applies: only the delivery
        the ledger currently expects from this slot counts (a dead
        incarnation's pipe is closed in :meth:`_revive` before its job
        is requeued, so stale batches cannot arrive at all; this guard
        covers the pipe-buffer race on the same connection).
        """
        record = handle.record
        if record is None or record.job_id != job_id:
            return
        self.on_events(record, batch)

    def _handle_done(
        self, handle: _Handle, job_id: str, payload: dict
    ) -> None:
        with self._lock:
            record = handle.record
            if record is None or record.job_id != job_id \
                    or record.incarnation != handle.incarnation:
                # Incarnation guard: a delivery the ledger no longer
                # expects (job already requeued elsewhere) is dropped,
                # never double-counted.
                stale = self._records.get(job_id)
                if stale is not None:
                    self._append_log_locked(
                        "stale-result", stale,
                        worker=handle.slot,
                        incarnation=handle.incarnation,
                    )
                _log.warning(
                    "dropped stale result for job %s from slot %d",
                    job_id, handle.slot,
                )
                return
            handle.record = None
            record.finished_at = self.now()
            record.payload = payload
            record.state = "done" if payload.get("ok") else "failed"
            self._append_log_locked(
                "result" if payload.get("ok") else "error",
                record,
                worker=handle.slot,
                incarnation=handle.incarnation,
            )
        self.on_complete(record)

    def _revive(self, handle: _Handle) -> None:
        """A worker incarnation died: requeue its job, respawn the slot."""
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None
        if handle.proc is not None:
            handle.proc.join(timeout=1.0)
        victim: Optional[JobRecord] = None
        with self._lock:
            record = handle.record
            handle.record = None
            if record is not None:
                self._append_log_locked(
                    "worker-death", record,
                    worker=handle.slot, incarnation=handle.incarnation,
                )
                record.requeues += 1
                if record.requeues > self.max_requeues:
                    record.state = "failed"
                    record.finished_at = self.now()
                    record.payload = {
                        "ok": False,
                        "error": (
                            f"too-many-requeues: job killed "
                            f"{record.requeues} worker incarnations"
                        ),
                    }
                    self._append_log_locked(
                        "error", record,
                        worker=handle.slot, incarnation=handle.incarnation,
                    )
                    victim = record
                else:
                    record.state = "queued"
                    record.worker = -1
                    record.incarnation = -1
                    self._append_log_locked(
                        "requeue", record,
                        worker=handle.slot, incarnation=handle.incarnation,
                    )
                    # Head of its tenant's queue: a faulted job keeps
                    # its place in line (FIFO requeue, like the
                    # runtime master's interval requeue).
                    self._queues.setdefault(
                        record.tenant, deque()
                    ).appendleft(record)
                    if record.tenant not in self._rr:
                        self._rr.append(record.tenant)
        _log.warning(
            "worker slot=%d incarnation=%d died%s",
            handle.slot, handle.incarnation,
            "" if victim is None and handle.record is None
            else " (job requeued or failed)",
        )
        if victim is not None:
            self.on_complete(victim)
        if self._running:
            self._spawn(handle)

    def _dispatch(self) -> None:
        """Hand queued jobs to idle workers, round-robin over tenants."""
        while True:
            idle = next(
                (
                    h for h in self._handles
                    if h.record is None and h.conn is not None
                    and h.proc is not None and h.proc.is_alive()
                ),
                None,
            )
            if idle is None:
                return
            with self._lock:
                record = self._next_record_locked()
                if record is None:
                    return
                record.state = "running"
                record.worker = idle.slot
                record.incarnation = idle.incarnation
                record.started_at = self.now()
                idle.record = record
                self._append_log_locked(
                    "assign", record,
                    worker=idle.slot, incarnation=idle.incarnation,
                )
            try:
                idle.conn.send((
                    "job",
                    record.job_id,
                    record.job,
                    record.want_results,
                    record.want_trace,
                    record.want_stream,
                ))
            except (OSError, ValueError, BrokenPipeError):
                # The slot died between the liveness check and the
                # send; the next pump iteration revives it and
                # requeues the record.
                idle.last_seen = 0.0

    def _next_record_locked(self) -> Optional[JobRecord]:
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(tenant)
            if queue:
                return queue.popleft()
        return None
