"""Length-prefixed JSON frames: the service's socket transport.

Every message between a client and the daemon is one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON
(an object at the top level).  Compared to the raw pickled pipes the
in-process runtimes use, frames are:

* **language-neutral** -- any client that can speak JSON over a socket
  can submit jobs;
* **safe** -- no pickle across trust boundaries, and a hard
  :data:`MAX_FRAME` cap so a malformed length prefix cannot make the
  daemon allocate gigabytes;
* **stream-friendly** -- the :class:`FrameDecoder` is incremental, so
  a reader can feed it whatever chunk sizes the socket yields.

Four entry points cover both IO styles: :func:`send_frame` /
:func:`recv_frame` for blocking sockets (the client library),
:func:`write_frame` / :func:`read_frame` for asyncio streams (the
daemon).  All four speak the identical wire format.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Optional

__all__ = [
    "MAX_FRAME",
    "OPS",
    "ProtocolError",
    "encode_frame",
    "FrameDecoder",
    "send_frame",
    "recv_frame",
    "write_frame",
    "read_frame",
]

#: Hard upper bound on one frame's JSON payload (bytes).  Large enough
#: for a result carrying a full obs trace, small enough that a bogus
#: length prefix cannot balloon the daemon's memory.
MAX_FRAME = 32 * 1024 * 1024

#: The closed set of wire operations the daemon dispatches.  This is
#: the authoritative list both sides are checked against: the server's
#: ``unknown-op`` reply names it, and ``repro-lint`` rule REP305
#: verifies every ``"op"`` literal in the codebase (client requests
#: and server dispatch arms alike) is a member, so a typo'd op fails
#: static analysis instead of a live round-trip.
OPS = frozenset({
    "hello", "ping", "submit", "wait", "status", "metrics",
    "trace", "log", "drain", "chaos", "kill-worker",
    # Live telemetry: ``subscribe`` turns the connection into an event
    # stream (the daemon pushes chunk-level ObsEvent frames while jobs
    # run); ``watch`` is its client-facing alias used by the CLI.
    "subscribe", "watch",
})

_LEN = struct.Struct(">I")


class ProtocolError(ValueError):
    """A frame violated the wire format (length, encoding, or shape)."""


def encode_frame(doc: dict[str, Any]) -> bytes:
    """Serialize one message: 4-byte length prefix + compact JSON."""
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frames carry JSON objects, got {type(doc).__name__}"
        )
    payload = json.dumps(
        doc, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME "
            f"({MAX_FRAME})"
        )
    return _LEN.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict[str, Any]:
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    return doc


class FrameDecoder(object):
    """Incremental decoder: feed byte chunks, collect whole frames.

    The decoder never copies more than one frame's worth of buffered
    bytes and raises :class:`ProtocolError` as soon as a length prefix
    exceeds :data:`MAX_FRAME`, before any payload is buffered.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data``; return every frame completed by it."""
        self._buf.extend(data)
        frames: list[dict[str, Any]] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"announced frame length {length} exceeds MAX_FRAME "
                    f"({MAX_FRAME})"
                )
            end = _LEN.size + length
            if len(self._buf) < end:
                return frames
            payload = bytes(self._buf[_LEN.size:end])
            del self._buf[:end]
            frames.append(_decode_payload(payload))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buf)


# -- blocking-socket side (client library) --------------------------------


def send_frame(sock: socket.socket, doc: dict[str, Any]) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(doc))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = bytearray()
    while len(chunks) < n:
        part = sock.recv(n - len(chunks))
        if not part:
            if chunks:
                raise ProtocolError(
                    f"connection closed mid-frame ({len(chunks)}/{n} "
                    f"bytes)"
                )
            return None
        chunks.extend(part)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict[str, Any]]:
    """Read one frame from a blocking socket.

    Returns ``None`` on a clean EOF (peer closed between frames);
    raises :class:`ProtocolError` on a torn frame or oversized length.
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"announced frame length {length} exceeds MAX_FRAME "
            f"({MAX_FRAME})"
        )
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    return _decode_payload(payload)


# -- asyncio side (daemon) ------------------------------------------------


async def write_frame(
    writer: asyncio.StreamWriter, doc: dict[str, Any]
) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(doc))
    await writer.drain()


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[dict[str, Any]]:
    """Read one frame from an asyncio stream (``None`` on clean EOF)."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        ) from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"announced frame length {length} exceeds MAX_FRAME "
            f"({MAX_FRAME})"
        )
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} "
            f"bytes)"
        ) from exc
    return _decode_payload(payload)
