"""The asyncio scheduling daemon: many tenants, one shared pool.

:class:`ServiceServer` listens on a Unix-domain socket (or TCP), speaks
the :mod:`repro.service.protocol` frame format, and multiplexes every
tenant's loop jobs over one shared :class:`~repro.service.pool.
WorkerPool`.  The production concerns, in the order a job meets them:

* **admission control** -- an admitted-but-unfinished job count is
  bounded by ``queue_capacity`` globally and ``tenant_capacity`` per
  tenant.  Past either bound a submit is *rejected* with a reasoned
  backpressure reply (``queue-full`` / ``tenant-quota``) -- the queue
  never grows without bound, so memory stays bounded no matter how
  hard a client hammers the socket;
* **warm cache sharing** -- each admitted job's workload cost profile
  is resolved once in the daemon (through the process-wide
  :mod:`repro.cache`, off the event loop), so the first tenant pays
  for a profile and every later tenant -- and every pool worker --
  gets it for free;
* **fair dispatch** -- per-tenant FIFO queues served round-robin
  (see :mod:`repro.service.pool`);
* **exactly-once execution** -- heartbeat/deadline death detection
  plus incarnation guards, audited from the ledger by
  :func:`repro.verify.audit_service_log`;
* **graceful drain** -- SIGTERM (or the ``drain`` op) stops admission
  (rejects carry ``draining``), lets everything already admitted
  finish, answers the waiting clients, then shuts the listener down;
* **observability** -- every job lifecycle lands in per-tenant
  job-level :class:`~repro.obs.ObsEvent` streams (kinds
  ``job-submit`` / ``job-assign`` / ``job-result`` / ``job-reject``,
  source ``service``) and in a :class:`~repro.obs.MetricsRegistry`
  served by the ``metrics`` op -- the ``/metrics`` snapshot.

* **live telemetry** -- a ``subscribe`` (alias ``watch``) op turns a
  connection into a push stream: chunk-level ObsEvents forwarded from
  the pool workers mid-run, job-level lifecycle events, per-subscriber
  bounded queues with explicit drop accounting (a slow watcher can
  never block the pool or another tenant), and rolling time-series
  gauges (:class:`repro.obs.timeseries.RollingMetrics`) in the
  ``metrics`` snapshot.

Protocol ops (every request may carry a ``seq`` echoed in the reply):
``hello``, ``submit``, ``wait``, ``status``, ``metrics``, ``trace``,
``log``, ``drain``, ``chaos``, ``kill-worker``, ``ping``,
``subscribe`` / ``watch``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import signal as _signal
from typing import Any, Optional

from .. import cache as _cache
from ..obs import (
    BufferedCollector,
    MetricsRegistry,
    ObsEvent,
    RollingMetrics,
)
from ..obs.logutil import get_logger
from ..runtime.config import RuntimeConfig
from .jobs import JobSpecError, job_from_spec
from .pool import JobRecord, WorkerPool
from .protocol import OPS, ProtocolError, read_frame, write_frame

__all__ = ["ServiceConfig", "ServiceServer", "serve_until_complete"]

_log = get_logger("service.server")

#: Event source tag for job-level lifecycle events.
_SRC = "service"

#: Bounded per-subscriber queue: a watcher that cannot keep up loses
#: event batches (counted in its ``drops``) instead of backpressuring
#: the pool pump or the other tenants.
SUBSCRIBER_QUEUE = 256

#: Width (seconds of service clock) of the rolling telemetry window.
ROLLING_WINDOW = 60.0


class _Subscription(object):
    """One live watcher: a tenant filter and a bounded frame queue."""

    __slots__ = ("tenant", "queue", "drops", "n")

    def __init__(self, tenant: Optional[str]) -> None:
        self.tenant = tenant  # None means every tenant
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=SUBSCRIBER_QUEUE
        )
        self.drops = 0   # cumulative events lost to the bound
        self.n = 0       # monotone stream-frame counter

    def wants(self, tenant: str) -> bool:
        return self.tenant is None or self.tenant == tenant


@dataclasses.dataclass(frozen=True)
class ServiceConfig(object):
    """Daemon knobs: transport, pool shape, and admission bounds.

    Exactly one transport is used: ``socket_path`` (Unix socket, the
    default) unless ``host`` is set (TCP).  ``runtime`` reuses the
    runtime's validated timing knobs for the pool's heartbeat /
    deadline machinery; service defaults are snappier than the
    one-shot runtime's because a daemon restart is cheap and a wedged
    slot stalls every tenant.
    """

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    workers: int = 2
    queue_capacity: int = 64
    tenant_capacity: int = 16
    max_requeues: int = 3
    cache_dir: Optional[str] = None
    runtime: RuntimeConfig = dataclasses.field(
        default_factory=lambda: RuntimeConfig(
            poll_timeout=0.1,
            worker_deadline=30.0,
            heartbeat_interval=0.5,
            join_timeout=5.0,
        )
    )

    def __post_init__(self) -> None:
        if self.socket_path is None and self.host is None:
            raise ValueError(
                "ServiceConfig needs a socket_path (Unix) or host (TCP)"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.tenant_capacity < 1:
            raise ValueError(
                f"tenant_capacity must be >= 1, got "
                f"{self.tenant_capacity}"
            )


class ServiceServer(object):
    """One running daemon (see module doc).  Drive via :meth:`serve`,
    or :meth:`start` / :meth:`shutdown` from an existing event loop."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.pool = WorkerPool(
            size=config.workers,
            config=config.runtime,
            on_complete=self._on_complete_threadsafe,
            on_idle=self._on_idle_threadsafe,
            on_events=self._on_events_threadsafe,
            max_requeues=config.max_requeues,
        )
        self.metrics = MetricsRegistry()
        #: Rolling time-series windows keyed on the service clock.
        self.rolling = RollingMetrics(width=ROLLING_WINDOW)
        #: Per-tenant job-level event streams (plus ``pool.obs`` holds
        #: nothing server-side; the merged view is :meth:`events_for`).
        self.tenant_obs: dict[str, BufferedCollector] = {}
        #: Merged-view cache: per-tenant append indices + the sorted
        #: merge so repeated polls are incremental, not O(total).
        self._merged: list[ObsEvent] = []
        self._merged_idx: dict[str, int] = {}
        self._subscribers: list[_Subscription] = []
        self._stream_tasks: set[asyncio.Task] = set()
        self._records: dict[str, JobRecord] = {}
        self._futures: dict[str, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._resolving = 0
        self._tenant_pending: dict[str, int] = {}
        self.draining = False
        self._drained = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._chaos_tasks: list[asyncio.Task] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the pool."""
        self._loop = asyncio.get_running_loop()
        if self.config.cache_dir is not None:
            _cache.configure(directory=self.config.cache_dir)
        self.pool.start()
        if self.config.host is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host,
                self.config.port,
            )
        else:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path
            )
        _log.info(
            "repro-service listening on %s (%d workers, capacity %d)",
            self.address, self.config.workers,
            self.config.queue_capacity,
        )

    @property
    def address(self) -> str:
        if self.config.host is not None:
            socks = self._server.sockets if self._server else []
            if socks:
                host, port = socks[0].getsockname()[:2]
                return f"{host}:{port}"
            return f"{self.config.host}:{self.config.port}"
        return str(self.config.socket_path)

    @property
    def port(self) -> Optional[int]:
        """Bound TCP port (None on Unix sockets); useful with port=0."""
        if self.config.host is None or not self._server:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def serve(self, install_signals: bool = True) -> None:
        """Run until drained (SIGTERM or the ``drain`` op)."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (_signal.SIGTERM, _signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.initiate_drain)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or exotic loop
        await self._drained.wait()
        await self.shutdown()

    def initiate_drain(self) -> None:
        """Stop admitting; finish everything admitted; then exit."""
        if self.draining:
            return
        self.draining = True
        _log.info("drain initiated: admission closed")
        self._check_drained()

    async def shutdown(self) -> None:
        """Close the listener and stop the pool (hard stop)."""
        self._end_subscriptions()
        if self._stream_tasks:
            # Let the writer tasks flush their terminal frames; a
            # wedged peer cannot hold shutdown beyond the timeout.
            await asyncio.wait(set(self._stream_tasks), timeout=1.0)
        for task in self._chaos_tasks:
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.stop()

    # -- pool -> loop bridges ----------------------------------------------

    def _on_complete_threadsafe(self, record: JobRecord) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._on_complete, record)

    def _on_idle_threadsafe(self) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._check_drained)

    def _on_complete(self, record: JobRecord) -> None:
        self._tenant_pending[record.tenant] = max(
            0, self._tenant_pending.get(record.tenant, 1) - 1
        )
        ok = record.state == "done"
        self.metrics.counter(
            "jobs_completed_total" if ok else "jobs_failed_total"
        ).inc()
        self.metrics.counter(f"tenant:{record.tenant}:completed").inc()
        if record.requeues:
            self.metrics.counter("jobs_requeued_total").inc(
                record.requeues
            )
        if record.started_at is not None:
            self.metrics.histogram("queue_wait_seconds").observe(
                record.started_at - record.submitted_at
            )
        if record.started_at is not None \
                and record.finished_at is not None:
            self.metrics.histogram("run_seconds").observe(
                record.finished_at - record.started_at
            )
        self._emit(
            record.tenant,
            ObsEvent(
                kind="job-result" if ok else "job-reject",
                source=_SRC,
                t=record.finished_at or self.pool.now(),
                worker=record.worker,
                value=(
                    record.finished_at - record.started_at
                    if record.started_at is not None
                    and record.finished_at is not None
                    else None
                ),
                detail=f"tenant={record.tenant} job={record.job_id}"
                + ("" if ok else " failed"),
            ),
        )
        future = self._futures.pop(record.job_id, None)
        if future is not None and not future.done():
            future.set_result(record)
        self._check_drained()

    def _check_drained(self) -> None:
        if self.draining and self._resolving == 0 and self.pool.idle():
            self._drained.set()

    def _on_events_threadsafe(
        self, record: JobRecord, batch: list
    ) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._on_events, record, batch)

    def _on_events(self, record: JobRecord, batch: list) -> None:
        """Chunk-level events a worker streamed mid-run (loop thread).

        They join the tenant's server-side trace (so the trace op and
        the subscription stream describe the same events), feed the
        rolling windows at *receive* time (per-job sim clocks all
        start at 0 and would collide), and fan out to subscribers.
        """
        at = self.pool.now()
        events = [ObsEvent.from_dict(doc) for doc in batch]
        for ev in events:
            self._record_event(record.tenant, ev)
            self.rolling.observe(ev, at=at)
        self.metrics.counter("stream_events_total").inc(len(events))
        self._publish(record.tenant, batch, job_id=record.job_id)

    def _record_event(self, tenant: str, event: ObsEvent) -> None:
        bucket = self.tenant_obs.get(tenant)
        if bucket is None:
            bucket = self.tenant_obs[tenant] = BufferedCollector()
        bucket.emit(event)

    def _emit(self, tenant: str, event: ObsEvent) -> None:
        """Record a job-level event and push it to live watchers."""
        self._record_event(tenant, event)
        self.rolling.observe(event, at=self.pool.now())
        self._publish(tenant, [event.to_dict()])

    def _publish(
        self, tenant: str, batch: list, job_id: Optional[str] = None
    ) -> None:
        """Fan one event batch out to every matching subscriber.

        ``put_nowait`` against the bounded queue: a full (slow)
        subscriber loses the batch and its ``drops`` counter grows --
        the pool and the other watchers never wait.
        """
        if not self._subscribers:
            return
        item: dict[str, Any] = {"tenant": tenant, "events": batch}
        if job_id is not None:
            item["job"] = job_id
        for sub in self._subscribers:
            if not sub.wants(tenant):
                continue
            try:
                sub.queue.put_nowait(item)
            except asyncio.QueueFull:
                sub.drops += len(batch)
                self.metrics.counter("stream_drops_total").inc(
                    len(batch)
                )

    def events_for(self, tenant: Optional[str] = None) -> list[ObsEvent]:
        """One tenant's event stream, or every tenant's merged.

        The merged view is maintained incrementally: per-tenant append
        indices track what has already been folded in, so a poll after
        k new events costs O(k log k) amortized (timsort over a
        mostly-sorted list), not O(total).  The returned list is
        shared with the cache on the merged path -- treat it as
        read-only.
        """
        if tenant is not None:
            bucket = self.tenant_obs.get(tenant)
            return list(bucket.events) if bucket is not None else []
        fresh = 0
        for name in sorted(self.tenant_obs):
            events = self.tenant_obs[name].events
            idx = self._merged_idx.get(name, 0)
            if idx < len(events):
                self._merged.extend(events[idx:])
                fresh += len(events) - idx
                self._merged_idx[name] = len(events)
        if fresh:
            self._merged.sort(key=lambda ev: ev.t)
        return self._merged

    def events_since(
        self, tenant: str, cursor: int = 0
    ) -> tuple[list[ObsEvent], int]:
        """Incremental per-tenant poll: events after ``cursor``.

        Returns ``(new_events, next_cursor)``; pass the cursor back to
        get only what arrived since.  O(new) per call.
        """
        bucket = self.tenant_obs.get(tenant)
        if bucket is None:
            return [], cursor
        events = bucket.events
        if cursor >= len(events):
            return [], len(events)
        return list(events[cursor:]), len(events)

    # -- admission ----------------------------------------------------------

    def _admission_error(self, tenant: str) -> Optional[str]:
        if self.draining:
            return "draining"
        pending = self.pool.pending_total() + self._resolving
        if pending >= self.config.queue_capacity:
            return "queue-full"
        if self._tenant_pending.get(tenant, 0) \
                >= self.config.tenant_capacity:
            return "tenant-quota"
        return None

    def _reject(self, tenant: str, reason: str, seq) -> dict:
        self.metrics.counter("jobs_rejected_total").inc()
        self.metrics.counter(f"jobs_rejected_{reason}").inc()
        self._emit(
            tenant,
            ObsEvent(
                kind="job-reject",
                source=_SRC,
                t=self.pool.now(),
                detail=f"tenant={tenant} {reason}",
            ),
        )
        return _reply(seq, ok=False, error=reason)

    async def _submit(self, tenant: str, doc: dict, seq) -> dict:
        reason = self._admission_error(tenant)
        if reason is not None:
            return self._reject(tenant, reason, seq)
        spec = doc.get("job")
        try:
            job = job_from_spec(spec)
        except JobSpecError as exc:
            self.metrics.counter("jobs_rejected_total").inc()
            self.metrics.counter("jobs_rejected_bad-spec").inc()
            return _reply(seq, ok=False, error="bad-spec",
                          message=str(exc))
        job_id = f"{tenant}-{next(self._ids):06d}"
        record = JobRecord(
            job_id=job_id,
            tenant=tenant,
            job=job,
            want_results=bool(spec.get("results")),
            want_trace=bool(spec.get("trace")),
            # Stream chunk events when the spec asks for it or when a
            # live subscriber is already watching this tenant.  (The
            # flag does not enter the job's identity/cache key, and the
            # streamed events are the same objects the digest is
            # computed from -- the bit-exactness contract holds.)
            want_stream=bool(spec.get("stream"))
            or self._has_subscriber(tenant),
        )
        self._records[job_id] = record
        self._futures[job_id] = asyncio.get_running_loop() \
            .create_future()
        self._tenant_pending[tenant] = (
            self._tenant_pending.get(tenant, 0) + 1
        )
        self._resolving += 1
        self.metrics.counter("jobs_submitted_total").inc()
        self.metrics.counter(f"tenant:{tenant}:submitted").inc()
        self._emit(
            tenant,
            ObsEvent(
                kind="job-submit",
                source=_SRC,
                t=self.pool.now(),
                detail=f"tenant={tenant} job={job_id} "
                       f"scheme={job.scheme}",
            ),
        )
        # Resolve the workload's cost profile off the loop, through
        # the shared process-wide cache: the first tenant computes a
        # profile, everyone after that hits memory or disk, and pool
        # workers receive it precomputed inside the pickled workload.
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, record.job.workload.costs)
        finally:
            self._resolving -= 1
        self._emit(
            tenant,
            ObsEvent(
                kind="job-assign",
                source=_SRC,
                t=self.pool.now(),
                detail=f"tenant={tenant} job={job_id}",
            ),
        )
        self.pool.submit(record)
        return _reply(seq, ok=True, job_id=job_id)

    # -- query ops -----------------------------------------------------------

    def _status(self) -> dict:
        stats = self.pool.stats()
        states: dict[str, int] = {}
        for record in self._records.values():
            states[record.state] = states.get(record.state, 0) + 1
        active = _cache.get_cache()
        return {
            "draining": self.draining,
            "pool": stats,
            "jobs": states,
            "resolving": self._resolving,
            "capacity": {
                "queue": self.config.queue_capacity,
                "tenant": self.config.tenant_capacity,
            },
            "cache": {"hits": active.hits, "misses": active.misses},
        }

    def _metrics_snapshot(self) -> dict:
        stats = self.pool.stats()
        self.metrics.gauge("jobs_queued").set(stats["queued"])
        self.metrics.gauge("jobs_inflight").set(stats["inflight"])
        self.metrics.gauge("workers_live").set(stats["workers_live"])
        self.metrics.gauge("tenants").set(len(self.tenant_obs))
        active = _cache.get_cache()
        self.metrics.gauge("cache_hits").set(active.hits)
        self.metrics.gauge("cache_misses").set(active.misses)
        deaths = sum(
            1 for entry in self.pool.log if entry["ev"] == "worker-death"
        )
        self.metrics.counter("worker_deaths_total").value = float(deaths)
        self.metrics.gauge("stream_subscribers").set(
            len(self._subscribers)
        )
        rolling = self.rolling.snapshot(now=self.pool.now())
        for name in (
            "chunk_rate", "iteration_rate", "result_rate",
            "fault_rate", "job_rate", "utilization", "imbalance",
            "busy_sigma",
        ):
            self.metrics.gauge(f"rolling_{name}").set(rolling[name])
        return self.metrics.snapshot()

    # -- chaos ----------------------------------------------------------------

    def inject_chaos(self, plan, time_scale: float = 1.0) -> int:
        """Map a FaultPlan's worker deaths onto live pool slots.

        Delegates to :func:`repro.chaos.inject_service_faults`;
        returns the number of scheduled fault tasks.
        """
        from ..chaos import inject_service_faults

        tasks = inject_service_faults(
            self, plan, time_scale=time_scale
        )
        self._chaos_tasks.extend(tasks)
        return len(tasks)

    # -- connection handling ---------------------------------------------------

    def _has_subscriber(self, tenant: str) -> bool:
        return any(sub.wants(tenant) for sub in self._subscribers)

    async def _stream_to(
        self,
        sub: _Subscription,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
    ) -> None:
        """Push queued event batches to one subscriber until told to
        stop (a ``None`` sentinel) or the peer goes away.

        Every frame carries the subscription's monotone ``n`` and its
        *cumulative* ``drops``, so a reader can both order frames and
        see exactly how much it missed at any point; the sentinel
        produces a final ``{"watch": "end"}`` frame with the closing
        totals.
        """
        try:
            while True:
                item = await sub.queue.get()
                sub.n += 1
                if item is None:
                    frame: dict[str, Any] = {"watch": "end"}
                else:
                    frame = {"watch": "events", **item}
                frame["n"] = sub.n
                frame["drops"] = sub.drops
                async with wlock:
                    await write_frame(writer, frame)
                if item is None:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass

    def _end_subscriptions(self) -> None:
        """Queue the terminal frame for every live subscriber."""
        for sub in self._subscribers:
            try:
                sub.queue.put_nowait(None)
            except asyncio.QueueFull:
                # Full queue: the watcher is hopelessly behind; the
                # connection teardown will cancel its writer task.
                pass

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        tenant = "default"
        # Replies and pushed stream frames share the writer; the lock
        # keeps their drains from interleaving.
        wlock = asyncio.Lock()
        subscription: Optional[_Subscription] = None
        stream_task: Optional[asyncio.Task] = None
        try:
            while True:
                try:
                    doc = await read_frame(reader)
                except ProtocolError as exc:
                    async with wlock:
                        await write_frame(
                            writer,
                            _reply(None, ok=False, error="protocol",
                                   message=str(exc)),
                        )
                    break
                if doc is None:
                    break
                seq = doc.get("seq")
                op = doc.get("op")
                if op == "hello":
                    raw = doc.get("tenant", "default")
                    tenant = str(raw) if raw else "default"
                    reply = _reply(
                        seq, ok=True, server="repro-service",
                        tenant=tenant, workers=self.config.workers,
                    )
                elif op == "submit":
                    reply = await self._submit(tenant, doc, seq)
                elif op == "wait":
                    reply = await self._wait(tenant, doc, seq)
                elif op == "status":
                    reply = _reply(seq, ok=True, status=self._status())
                elif op == "metrics":
                    reply = _reply(
                        seq, ok=True, metrics=self._metrics_snapshot()
                    )
                elif op == "trace":
                    which = doc.get("tenant", tenant)
                    events = self.events_for(
                        None if which == "*" else str(which)
                    )
                    reply = _reply(
                        seq, ok=True,
                        events=[ev.to_dict() for ev in events],
                    )
                elif op == "log":
                    reply = _reply(
                        seq, ok=True, log=list(self.pool.log)
                    )
                elif op == "drain":
                    self.initiate_drain()
                    reply = _reply(seq, ok=True, draining=True)
                elif op == "chaos":
                    reply = self._chaos_op(doc, seq)
                elif op == "kill-worker":
                    try:
                        hit = self.pool.kill_worker(
                            int(doc.get("worker", -1))
                        )
                        reply = _reply(seq, ok=True, killed=hit)
                    except ValueError as exc:
                        reply = _reply(seq, ok=False, error="bad-worker",
                                       message=str(exc))
                elif op == "ping":
                    reply = _reply(seq, ok=True, pong=True)
                elif op in ("subscribe", "watch"):
                    if subscription is not None:
                        reply = _reply(
                            seq, ok=False, error="already-subscribed",
                        )
                    else:
                        raw = doc.get("tenant", tenant)
                        which = None if raw == "*" else str(raw)
                        subscription = _Subscription(which)
                        self._subscribers.append(subscription)
                        self.metrics.counter(
                            "subscriptions_total"
                        ).inc()
                        stream_task = asyncio.get_running_loop() \
                            .create_task(self._stream_to(
                                subscription, writer, wlock,
                            ))
                        self._stream_tasks.add(stream_task)
                        stream_task.add_done_callback(
                            self._stream_tasks.discard
                        )
                        reply = _reply(
                            seq, ok=True, subscribed=True,
                            tenant=raw,
                            queue_capacity=SUBSCRIBER_QUEUE,
                        )
                else:
                    reply = _reply(
                        seq, ok=False, error="unknown-op",
                        message=f"unknown op {op!r}; valid ops: "
                                f"{', '.join(sorted(OPS))}",
                    )
                async with wlock:
                    await write_frame(writer, reply)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            if subscription is not None:
                try:
                    self._subscribers.remove(subscription)
                except ValueError:  # pragma: no cover
                    pass
            if stream_task is not None:
                stream_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # CancelledError lands here when the loop is torn
                # down mid-close (drain); the task is done either way.
                pass

    def _chaos_op(self, doc: dict, seq) -> dict:
        from ..chaos import ChaosError, FaultPlan

        try:
            plan = FaultPlan.from_json(doc.get("plan") or {})
        except (ChaosError, TypeError, KeyError, ValueError) as exc:
            return _reply(seq, ok=False, error="bad-plan",
                          message=str(exc))
        count = self.inject_chaos(
            plan, time_scale=float(doc.get("time_scale", 1.0))
        )
        return _reply(seq, ok=True, scheduled=count)

    async def _wait(self, tenant: str, doc: dict, seq) -> dict:
        job_id = doc.get("job_id")
        record = self._records.get(job_id)
        if record is None or record.tenant != tenant:
            # Tenant isolation: another tenant's job ids are
            # indistinguishable from nonexistent ones.
            return _reply(seq, ok=False, error="unknown-job")
        future = self._futures.get(job_id)
        if future is not None and not record.terminal:
            timeout = doc.get("timeout")
            try:
                await asyncio.wait_for(
                    asyncio.shield(future),
                    timeout=float(timeout) if timeout else None,
                )
            except asyncio.TimeoutError:
                return _reply(
                    seq, ok=False, error="timeout",
                    state=record.state,
                )
        payload = dict(record.payload or {})
        payload.update(
            _reply(
                seq,
                ok=bool(payload.get("ok")),
                job_id=job_id,
                state=record.state,
                requeues=record.requeues,
            )
        )
        return payload


def _reply(seq, **fields) -> dict[str, Any]:
    doc = dict(fields)
    if seq is not None:
        doc["seq"] = seq
    return doc


async def _serve(config: ServiceConfig,
                 install_signals: bool) -> ServiceServer:
    server = ServiceServer(config)
    await server.serve(install_signals=install_signals)
    return server


def serve_until_complete(
    config: ServiceConfig, install_signals: bool = True
) -> ServiceServer:
    """Blocking entry point: run a daemon until it drains."""
    return asyncio.run(_serve(config, install_signals))
