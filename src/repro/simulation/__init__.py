"""Deterministic discrete-event simulation of a heterogeneous
master--slave cluster: the stand-in for the paper's 9-workstation Sun
testbed (see DESIGN.md for the substitution argument)."""

from .cluster import ClusterSpec, NodeSpec
from .engine import (
    MasterSlaveSimulation,
    StarvationError,
    make_for_cluster,
    simulate,
)
from .events import Event, EventQueue, SimulationError
from .loadgen import (
    ConstantLoad,
    LoadTrace,
    OverlayLoad,
    PeriodicLoad,
    RandomLoad,
    StepLoad,
    integrate_compute,
)
from .metrics import ChunkRecord, SimResult, WorkerMetrics, imbalance
from .trace import chunks_to_csv, chunks_to_json, gantt_chart
from .affinity_engine import AffinitySimulation, simulate_affinity
from .tree_engine import TreeSimulation, simulate_tree

__all__ = [
    "ClusterSpec",
    "NodeSpec",
    "Event",
    "EventQueue",
    "SimulationError",
    "StarvationError",
    "LoadTrace",
    "ConstantLoad",
    "StepLoad",
    "OverlayLoad",
    "PeriodicLoad",
    "RandomLoad",
    "integrate_compute",
    "WorkerMetrics",
    "ChunkRecord",
    "SimResult",
    "imbalance",
    "chunks_to_csv",
    "chunks_to_json",
    "gantt_chart",
    "MasterSlaveSimulation",
    "simulate",
    "make_for_cluster",
    "TreeSimulation",
    "simulate_tree",
    "AffinitySimulation",
    "simulate_affinity",
]
