"""Affinity Scheduling (Markatos & LeBlanc 1994) -- paper reference [12].

The paper's introduction cites affinity scheduling as part of the loop
scheduling literature it builds on; it is implemented here as an extra
decentralized baseline alongside TreeS.  The algorithm:

* every PE starts with a *local queue* of ``I/p`` contiguous
  iterations (weighted by virtual power in the heterogeneous variant);
* a PE repeatedly takes ``ceil(local/k)`` iterations from the front of
  its own queue (``k = p`` in the original), computing them before
  taking the next slice -- large early takes, shrinking later ones,
  like a per-PE GSS;
* when its queue is empty it finds the **most loaded** PE and steals
  ``ceil(victim/p)`` iterations from the *back* of that queue.

Differences from TreeS: steal victims are chosen by load (global view),
not by a fixed partner list, and the self-serve slice shrinks
geometrically instead of being the whole block.  Results are flushed
to the master at fixed epochs exactly as in the TreeS engine.
"""

from __future__ import annotations

import math

from ..workloads import Workload
from .cluster import ClusterSpec
from .loadgen import integrate_compute
from .metrics import ChunkRecord, SimResult
from .tree_engine import TreeSimulation, _TreeWorker

__all__ = ["AffinitySimulation", "simulate_affinity"]


class AffinitySimulation(TreeSimulation):
    """Affinity scheduling on the TreeS engine chassis.

    Reuses the worker/flush/accounting machinery of
    :class:`~repro.simulation.tree_engine.TreeSimulation`; overrides
    the *take* rule (geometric self-serve slices) and the *steal* rule
    (most-loaded victim, ``1/p`` of its remainder).
    """

    def __init__(
        self,
        workload: Workload,
        cluster: ClusterSpec,
        weighted: bool = False,
        flush_interval: float = 2.0,
        min_steal: int = 2,
        collect_results: bool = False,
    ) -> None:
        # Affinity's own slice rule replaces the fixed grain.
        super().__init__(
            workload,
            cluster,
            weighted=weighted,
            flush_interval=flush_interval,
            grain=1,
            min_steal=min_steal,
            collect_results=collect_results,
        )

    # -- take rule ---------------------------------------------------------

    def _compute_next(self, w: _TreeWorker) -> None:
        t = self.queue.now
        if w.pending_items and t >= w.next_flush:
            self._flush(w, final=False)
            return
        remaining = w.remaining()
        if remaining == 0:
            self._steal_from_most_loaded(w)
            return
        take = max(1, math.ceil(remaining / self.cluster.size))
        block = w.pop_block(take)
        assert block is not None
        start, stop = block
        cost = self.workload.chunk_cost(start, stop)
        finish = integrate_compute(t, cost, w.node.speed, w.node.load)
        w.metrics.t_comp += finish - t
        w.metrics.iterations += stop - start
        w.metrics.chunks += 1
        w.pending_items += stop - start
        self._chunks.append(
            ChunkRecord(
                worker=w.index,
                start=start,
                stop=stop,
                assigned_at=t,
                completed_at=finish,
            )
        )
        if self.collect_results:
            self._results.append(
                (start, self.workload.execute(start, stop))
            )
        self.queue.schedule_at(
            finish, lambda ev, s=w: self._compute_next(s),
            kind="compute",
        )

    # -- steal rule ----------------------------------------------------------

    def _steal_from_most_loaded(self, w: _TreeWorker) -> None:
        victims = [
            v for v in self.workers
            if v.index != w.index and v.remaining() >= self.min_steal
        ]
        if not victims:
            # Nothing stealable anywhere: finish at the next epoch.
            t = self.queue.now
            if w.pending_items and t < w.next_flush:
                w.metrics.t_wait += w.next_flush - t
                self.queue.schedule_at(
                    w.next_flush,
                    lambda ev, s=w: self._flush(s, final=True),
                    kind="final-flush",
                )
            else:
                self._flush(w, final=True)
            return
        victim = max(victims, key=lambda v: v.remaining())
        rtt = (
            w.node.transfer_time(self.cluster.request_bytes)
            + victim.node.transfer_time(self.cluster.reply_bytes)
        )
        w.metrics.t_wait += rtt

        def arrive(ev, thief=w, victim=victim):
            remaining = victim.remaining()
            if remaining < self.min_steal:
                # Raced with the victim; try again.
                self._steal_from_most_loaded(thief)
                return
            want = max(1, math.ceil(remaining / self.cluster.size))
            stolen = victim.steal_half(self.min_steal)
            # steal_half takes back ~half; trim to the affinity share
            # (1/p) by returning the surplus front part to the victim.
            if stolen is None:
                self._steal_from_most_loaded(thief)
                return
            lo, hi = stolen
            if hi - lo > want:
                victim.ranges.append([lo, hi - want])
                lo = hi - want
            self._steals += 1
            thief.ranges.append([lo, hi])
            self._compute_next(thief)

        self.queue.schedule(rtt, arrive, kind="steal")

    def run(self) -> SimResult:
        result = super().run()
        result.scheme = "AS" + ("-w" if self.weighted else "")
        return result


def simulate_affinity(
    workload: Workload,
    cluster: ClusterSpec,
    weighted: bool = False,
    flush_interval: float = 2.0,
    min_steal: int = 2,
    collect_results: bool = False,
) -> SimResult:
    """Simulate one affinity-scheduling run (see
    :class:`AffinitySimulation`)."""
    return AffinitySimulation(
        workload,
        cluster,
        weighted=weighted,
        flush_interval=flush_interval,
        min_steal=min_steal,
        collect_results=collect_results,
    ).run()
