"""Cluster description: nodes, links, master -- the simulated testbed.

The paper's testbed was 9 Sun workstations: a master (UltraSPARC 10,
440 MHz), three fast slaves (UltraSPARC 10, 440 MHz, 100 Mb/s links)
and five slow slaves (UltraSPARC 1, 166 MHz, 10 Mb/s links).  A
:class:`ClusterSpec` captures exactly the properties self-scheduling
behaviour depends on:

* per-node compute **speed** (basic operations per second of virtual
  time) and **virtual power** ``V_i`` (speed relative to the slowest
  node -- derived automatically unless overridden);
* per-node **link** latency and bandwidth (master <-> slave);
* per-node **load trace** (run-queue length over time, nondedicated
  mode);
* master **service time** per request (the scheduling/reply overhead
  that makes the master a contended resource).

:func:`repro.experiments.config.paper_cluster` instantiates the paper's
machine mix; this module is generic.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from .events import SimulationError
from .loadgen import ConstantLoad, LoadTrace

__all__ = ["NodeSpec", "ClusterSpec"]


@dataclasses.dataclass
class NodeSpec(object):
    """One slave PE and its link to the master.

    ``fails_at`` injects a fail-stop fault: the PE dies at that virtual
    time, any chunk whose results have not yet reached the master is
    lost, and the engine reassigns it to the survivors (failure beyond
    the paper -- the testable counterpart of the runtime's worker-death
    requeue).
    """

    name: str
    speed: float  # basic ops / second (dedicated)
    latency: float = 1e-3  # seconds, one-way message latency
    bandwidth: float = 1.25e6  # bytes / second (10 Mb/s default)
    load: LoadTrace = dataclasses.field(default_factory=ConstantLoad)
    virtual_power: Optional[float] = None  # filled by ClusterSpec if None
    fails_at: Optional[float] = None  # fail-stop time (None = reliable)
    #: Shared-medium LAN segment id.  Nodes sharing a segment contend
    #: for it: their transfers serialize, like hosts on a year-2001
    #: 10 Mb/s hub (vs the default ``None`` = switched, dedicated
    #: link).  Master-engine transfers honour this.
    segment: Optional[str] = None

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise SimulationError(f"{self.name}: speed must be > 0")
        if self.latency < 0:
            raise SimulationError(f"{self.name}: latency must be >= 0")
        if self.bandwidth <= 0:
            raise SimulationError(f"{self.name}: bandwidth must be > 0")
        if self.virtual_power is not None and self.virtual_power <= 0:
            raise SimulationError(
                f"{self.name}: virtual_power must be > 0"
            )
        if self.fails_at is not None and self.fails_at < 0:
            raise SimulationError(
                f"{self.name}: fails_at must be >= 0"
            )

    def transfer_time(self, nbytes: float) -> float:
        """One-way time to move ``nbytes`` over this node's link."""
        if nbytes < 0:
            raise SimulationError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth


@dataclasses.dataclass
class ClusterSpec(object):
    """The full simulated system: slaves + master message costs.

    ``request_bytes``/``reply_bytes`` size the control messages;
    ``result_bytes_per_item`` sizes the piggy-backed results (the paper
    piggy-backs each chunk's results onto the next request).
    ``master_service`` is the master's per-request occupancy -- requests
    arriving while it is busy queue FIFO, which reproduces the
    master-contention effects the paper discusses.
    """

    nodes: list[NodeSpec]
    master_service: float = 2e-4  # seconds per serviced request
    request_bytes: float = 64.0
    reply_bytes: float = 32.0
    result_bytes_per_item: float = 8.0
    #: Master NIC inbound bandwidth (bytes/s).  All payloads arriving at
    #: the master serialize through this single resource -- the paper's
    #: "contend for master access" effect (Sec. 5): result collection is
    #: a bottleneck no matter which slave link carried the data.
    master_bandwidth: float = 1.25e7

    def __post_init__(self) -> None:
        if not self.nodes:
            raise SimulationError("cluster needs at least one slave node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate node names: {names}")
        if self.master_service < 0:
            raise SimulationError("master_service must be >= 0")
        if self.master_bandwidth <= 0:
            raise SimulationError("master_bandwidth must be > 0")
        if self.request_bytes < 0 or self.reply_bytes < 0 \
                or self.result_bytes_per_item < 0:
            raise SimulationError("message sizes must be >= 0")
        slowest = min(n.speed for n in self.nodes)
        for node in self.nodes:
            if node.virtual_power is None:
                node.virtual_power = node.speed / slowest

    @property
    def size(self) -> int:
        """Number of slave PEs ``p``."""
        return len(self.nodes)

    def virtual_powers(self) -> list[float]:
        """``V_i`` per node (1.0 for the slowest)."""
        powers = []
        for node in self.nodes:
            # __post_init__ fills every None before the spec escapes
            # the constructor; assert narrows for the type checker and
            # turns a regression into a loud failure.
            assert node.virtual_power is not None
            powers.append(float(node.virtual_power))
        return powers

    def subset(self, indices: Sequence[int]) -> "ClusterSpec":
        """A cluster containing only the selected slaves.

        Virtual powers are recomputed relative to the new slowest node
        (the paper's speedup configurations use different machine mixes
        per ``p``).
        """
        if not indices:
            raise SimulationError("subset must keep at least one node")
        picked = []
        for i in indices:
            node = self.nodes[i]
            picked.append(dataclasses.replace(node, virtual_power=None))
        return dataclasses.replace(self, nodes=picked)
