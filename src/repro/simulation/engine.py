"""Master--slave discrete-event simulator for centralized schemes.

This engine executes any :class:`repro.core.Scheduler` against a
:class:`~repro.simulation.cluster.ClusterSpec` and a
:class:`~repro.workloads.Workload`, reproducing the paper's protocol
(Sec. 2.2 and 5) in virtual time:

* idle slaves send requests to the master; every request except the
  first **piggy-backs the previous chunk's results** (the paper found
  end-of-run collection caused contention idling, so piggy-backing is
  the protocol of record);
* the master is a **single FIFO server**: requests queue while it is
  busy (this is the contention source behind the p=2 speedup dip);
* in distributed mode each slave samples its run queue at request time
  and attaches its ACP; the scheduler sees it via
  :class:`~repro.core.base.WorkerView` and applies the paper's
  re-derivation rule internally;
* computation advances at ``speed / Q(t)`` under the node's load trace
  (nondedicated mode).

Accounting matches Tables 2-3: per-PE ``T_com`` (link occupancy),
``T_wait`` (master queueing/service + terminal idling until the run
ends), ``T_comp`` (iteration execution), and ``T_p`` = the time the
last result lands on the master.  For the fast PEs of Table 2 the paper
rows sum to ``T_p`` -- that is terminal idling, and it is accounted
here the same way.

Start-up follows the paper's step 1(a): the master knows every
participating slave's initial ACP before the first assignment ("wait
for all workers with A_i > 0 to report").  Slaves whose ACP falls below
the model's availability threshold sit the computation out; if *no*
slave is available, :class:`StarvationError` is raised -- exactly the
classic-DTSS deadlock the paper's Sec. 5.2(I) improvement fixes.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Optional, Union

import numpy as np

from ..core import Scheduler, WorkerView, make
from ..core.acp import IMPROVED_ACP, AcpModel
from ..obs import ObsEvent
from ..obs import resolve as _resolve_collector
from ..workloads import Workload
from . import fastpath
from .cluster import ClusterSpec, NodeSpec
from .events import EventQueue, SimulationError
from .loadgen import OverlayLoad, integrate_compute
from .metrics import ChunkRecord, SimResult, WorkerMetrics

__all__ = [
    "StarvationError",
    "simulate",
    "make_for_cluster",
    "MasterSlaveSimulation",
]

SchedulerLike = Union[str, Scheduler, Callable[[int, int], Scheduler]]

#: Event-source tag for the unified observability stream.
_SRC = "sim.master"


class StarvationError(SimulationError):
    """No slave has ACP above the availability threshold (paper 5.2-I)."""


def make_for_cluster(
    scheme: str,
    total: int,
    cluster: ClusterSpec,
    acp_model: AcpModel = IMPROVED_ACP,
    **kwargs,
) -> Scheduler:
    """Build a scheduler for ``cluster``, wiring cluster-derived params.

    Weighted schemes (WF, weighted static) receive the cluster's
    virtual powers automatically; distributed schemes receive
    ``acp_model``.
    """
    name = scheme.strip().upper()
    if name in ("WF", "S-W", "SW"):
        kwargs.setdefault("weights", cluster.virtual_powers())
        if name != "WF":
            return make("S", total, cluster.size, **kwargs)
    sched = None
    if name in ("DTSS", "DFSS", "DFISS", "DTFSS"):
        kwargs.setdefault("acp_model", acp_model)
    sched = make(name if name != "S-W" else "S", total, cluster.size,
                 **kwargs)
    return sched


def _overlay_load_spikes(cluster: ClusterSpec, chaos) -> ClusterSpec:
    """A copy of ``cluster`` with the plan's LoadSpikes overlaid.

    The caller's spec is never mutated: affected nodes are replaced
    with copies whose trace is an :class:`OverlayLoad`.
    """
    windows: dict[int, list[tuple[float, float, int]]] = {}
    for ev in chaos.events:
        if ev.kind == "spike":
            windows.setdefault(ev.worker, []).append(
                (ev.at, ev.at + ev.duration, ev.extra_q)
            )
    if not windows:
        return cluster
    nodes = [
        dataclasses.replace(node, load=OverlayLoad(node.load, windows[i]))
        if i in windows else node
        for i, node in enumerate(cluster.nodes)
    ]
    return dataclasses.replace(cluster, nodes=nodes)


@dataclasses.dataclass
class _WorkerState(object):
    index: int
    node: NodeSpec
    metrics: WorkerMetrics
    pending_piggyback: float = 0.0  # bytes of results to attach
    #: start, stop, stage, acp-at-assignment
    pending_chunk: Optional[tuple[int, int, int, Optional[int]]] = None
    done: bool = False
    dead: bool = False
    #: interval whose results have not yet reached the master (lost if
    #: this worker dies); mirrors ``outstanding`` in the runtime master.
    unacked: Optional[tuple[int, int]] = None
    last_activity: float = 0.0
    #: incarnation counter: bumped at every death so events scheduled
    #: by a previous incarnation no-op after a chaos restart.
    epoch: int = 0


class MasterSlaveSimulation(object):
    """One simulated run; construct and call :meth:`run` once."""

    def __init__(
        self,
        scheduler: Scheduler,
        workload: Workload,
        cluster: ClusterSpec,
        acp_model: AcpModel = IMPROVED_ACP,
        collect_results: bool = False,
        chaos=None,
        collector=None,
        fast: object = "auto",
    ) -> None:
        #: unified event stream sink; falsy NullCollector when disabled,
        #: so emission sites cost one truth test on the hot path.
        self.obs = _resolve_collector(collector)
        # Cached truthiness: the hot loops test this plain bool
        # (~5x cheaper than NullCollector.__bool__ per gate);
        # the collector never changes after construction.
        self.observing = bool(self.obs)
        #: fast-path policy: ``"auto"`` (take it when eligible, the
        #: default), ``True`` (require it; raise when ineligible) or
        #: ``False`` (always run the generic DES).
        self.fast = fast
        #: set by :func:`simulate` when the scheduler was built here
        #: from a registry name -- the object never escapes, so the
        #: fast path may use pure steppers instead of mutating it.
        self._fresh_scheduler = False
        if scheduler.workers != cluster.size:
            raise SimulationError(
                f"scheduler built for {scheduler.workers} workers but "
                f"cluster has {cluster.size}"
            )
        if scheduler.total != workload.size:
            raise SimulationError(
                f"scheduler covers {scheduler.total} iterations but "
                f"workload has {workload.size}"
            )
        self.chaos = chaos
        if chaos is not None:
            if chaos.max_worker >= cluster.size:
                raise SimulationError(
                    f"fault plan targets worker {chaos.max_worker} but "
                    f"cluster has {cluster.size} nodes"
                )
            cluster = _overlay_load_spikes(cluster, chaos)
        self.scheduler = scheduler
        self.workload = workload
        self.cluster = cluster
        #: feedback-dependent (adaptive) schedulers get the workload's
        #: cost structure, per-chunk completion reports, and their
        #: stage decisions drained into ``adapt`` events.  Cached as a
        #: plain bool so the hot path pays one truth test.
        self._adaptive = bool(
            getattr(scheduler, "feedback_dependent", False)
        )
        if self._adaptive:
            scheduler.bind_workload(workload)
        self.acp_model = acp_model
        self.collect_results = collect_results
        self.queue = EventQueue()
        self.workers = [
            _WorkerState(
                index=i, node=node, metrics=WorkerMetrics(name=node.name)
            )
            for i, node in enumerate(cluster.nodes)
        ]
        self._master_free = 0.0
        self._master_link_free = 0.0
        self._last_result_arrival = 0.0
        self._chunks: list[ChunkRecord] = []
        self._results: list[tuple[int, np.ndarray]] = []
        self._participants: list[_WorkerState] = []
        #: intervals lost to worker deaths, awaiting reassignment in
        #: loop order (FIFO: first interval lost is first reassigned).
        self._requeue: collections.deque[tuple[int, int]] = (
            collections.deque()
        )
        #: participants with a scheduled death still ahead.
        self._pending_failers: set[int] = set()
        #: workers parked by the master because work may still reappear
        #: (a failing peer holds unacked results).
        self._parked: list[_WorkerState] = []
        #: shared-medium availability per LAN segment id.
        self._segment_free: dict[str, float] = {}
        #: per-worker list of scheduled death times still ahead
        #: (fails_at plus chaos deaths), consumed in time order.
        self._death_schedule: dict[int, list[float]] = {}
        #: chaos restarts not yet fired: while > 0 the all-dead check
        #: stays soft because a PE is still coming back.
        self._future_restarts = 0
        #: per-worker (at, kind, extra_seconds) message faults, sorted.
        self._message_faults: dict[int, list[tuple[float, str, float]]] = {}

    # -- helpers ---------------------------------------------------------------

    def _acp_now(self, state: _WorkerState, t: float) -> int:
        node = state.node
        return self.acp_model.acp(
            float(node.virtual_power or 1.0), node.load.q_at(t)
        )

    def _available(self, state: _WorkerState, t: float) -> bool:
        node = state.node
        return self.acp_model.available(
            float(node.virtual_power or 1.0), node.load.q_at(t)
        )

    def _acquire_segment(
        self, node: NodeSpec, t: float, duration: float
    ) -> float:
        """Earliest start of a ``duration`` transfer at/after ``t``.

        On a shared segment the medium is a single resource: the
        transfer waits for it and then occupies it.  Switched nodes
        (``segment=None``) start immediately.
        """
        if node.segment is None:
            return t
        free = self._segment_free.get(node.segment, 0.0)
        start = max(t, free)
        self._segment_free[node.segment] = start + duration
        return start

    def _alive_action(self, state: _WorkerState, fn, *args):
        """An event action that no-ops if ``state`` died in the meantime.

        The epoch capture makes the guard restart-safe: a chaos restart
        revives the worker, but events scheduled by the dead incarnation
        still must not fire (their protocol context is gone).
        """
        epoch = state.epoch

        def action(_event) -> None:
            if state.dead or state.epoch != epoch:
                return
            fn(state, *args)

        return action

    def _pop_message_fault(
        self, state: _WorkerState, t: float
    ) -> Optional[tuple[float, str, float]]:
        """Consume the worker's due delay/loss fault, if any."""
        faults = self._message_faults.get(state.index)
        if not faults or faults[0][0] > t:
            return None
        return faults.pop(0)

    # -- protocol events ---------------------------------------------------------

    def _send_request(self, state: _WorkerState) -> None:
        """Worker transmits a request (with piggy-backed results)."""
        if state.dead:
            return
        t = self.queue.now
        fault = self._pop_message_fault(state, t)
        if fault is not None:
            # Delay: the message sits on the wire ``extra`` longer.
            # Loss: the message vanishes and the retransmission goes out
            # after ``retry_after`` -- to the protocol the two are the
            # same pause, accounted as wait time.
            _at, kind, extra = fault
            state.metrics.t_wait += extra
            if self.observing:
                self.obs.emit(ObsEvent(
                    "fault", _SRC, t, state.index, value=extra,
                    detail=kind,
                ))
            self.queue.schedule_at(
                t + extra,
                self._alive_action(state, self._send_request),
                kind=f"chaos-{kind}",
            )
            return
        node = state.node
        nbytes = self.cluster.request_bytes + state.pending_piggyback
        carries_results = state.pending_piggyback > 0
        state.pending_piggyback = 0.0
        tx = node.transfer_time(nbytes)
        # Shared-medium contention: wait for the segment, then hold it.
        tx_start = self._acquire_segment(node, t, tx)
        state.metrics.t_wait += tx_start - t
        state.metrics.t_com += tx
        acp = (
            self._acp_now(state, t)
            if self.scheduler.distributed
            else None
        )
        if self.observing:
            self.obs.emit(ObsEvent(
                "request", _SRC, t, state.index, acp=acp,
            ))
        self.queue.schedule_at(
            tx_start + tx,
            self._alive_action(
                state, self._master_receive, acp, carries_results, nbytes
            ),
            kind="request-arrival",
        )

    def _master_receive(
        self,
        state: _WorkerState,
        acp: Optional[int],
        carries_results: bool,
        nbytes: float,
    ) -> None:
        if state.dead:
            # Fail-stop semantics: a dying worker's in-flight messages
            # are lost with it (its unacked interval was requeued by
            # the death handler).
            return
        port_arrival = self.queue.now
        # The master's single NIC: inbound payloads serialize (the
        # paper's "contend for master access" effect on result
        # collection).
        recv_start = max(port_arrival, self._master_link_free)
        arrival = recv_start + nbytes / self.cluster.master_bandwidth
        self._master_link_free = arrival
        if carries_results:
            self._last_result_arrival = max(
                self._last_result_arrival, arrival
            )
            if self.observing and state.unacked is not None:
                self.obs.emit(ObsEvent(
                    "result", _SRC, arrival, state.index,
                    start=state.unacked[0], stop=state.unacked[1],
                ))
            state.unacked = None  # results safely delivered
        service_start = max(arrival, self._master_free)
        service_end = service_start + self.cluster.master_service
        self._master_free = service_end
        # Master NIC queueing + master queueing + service is wait time
        # for the slave.
        state.metrics.t_wait += service_end - port_arrival
        assignment: Optional[tuple[int, int, int, Optional[int]]] = None
        if self._requeue:
            start, stop = self._requeue.popleft()
            assignment = (start, stop, 0, acp)
        else:
            view = WorkerView(
                worker_id=state.index,
                virtual_power=float(state.node.virtual_power or 1.0),
                run_queue=state.node.load.q_at(arrival),
                acp=acp,
            )
            chunk = self.scheduler.next_chunk(view)
            if self._adaptive and self.observing:
                for d in self.scheduler.drain_decisions():
                    self.obs.emit(ObsEvent(
                        "adapt", _SRC, service_end, state.index,
                        start=d.base, stop=d.base + d.size,
                        stage=d.stage, value=d.reward,
                        detail=d.summary(),
                    ))
            if chunk is not None:
                assignment = (chunk.start, chunk.stop, chunk.stage, acp)
        if assignment is None:
            if self._work_may_reappear():
                # A failing peer still holds undelivered results: park
                # this worker; its reply comes when (if) work reappears.
                if self.observing:
                    self.obs.emit(ObsEvent(
                        "park", _SRC, service_end, state.index,
                    ))
                self._parked.append(state)
                return
            reply_tx = state.node.transfer_time(
                self.cluster.reply_bytes
            )
            state.metrics.t_com += reply_tx
            self.queue.schedule_at(
                service_end + reply_tx,
                self._alive_action(state, self._worker_terminate),
                kind="terminate",
            )
            return
        reply_tx = state.node.transfer_time(self.cluster.reply_bytes)
        reply_start = self._acquire_segment(
            state.node, service_end, reply_tx
        )
        state.metrics.t_wait += reply_start - service_end
        state.metrics.t_com += reply_tx
        if self.observing:
            self.obs.emit(ObsEvent(
                "assign", _SRC, service_end, state.index,
                start=assignment[0], stop=assignment[1],
                stage=assignment[2], acp=assignment[3],
            ))
        state.pending_chunk = assignment
        self.queue.schedule_at(
            reply_start + reply_tx,
            self._alive_action(state, self._worker_compute),
            kind="assign",
        )

    def _worker_compute(self, state: _WorkerState) -> None:
        if state.dead:
            return
        t = self.queue.now
        assert state.pending_chunk is not None
        start, stop, stage, acp = state.pending_chunk
        state.pending_chunk = None
        state.unacked = (start, stop)
        cost = self.workload.chunk_cost(start, stop)
        finish = integrate_compute(t, cost, state.node.speed,
                                   state.node.load)
        if self.observing:
            self.obs.emit(ObsEvent(
                "compute", _SRC, t, state.index,
                start=start, stop=stop, stage=stage, acp=acp,
                value=finish - t,
            ))
        state.metrics.t_comp += finish - t
        state.metrics.chunks += 1
        state.metrics.iterations += stop - start
        if self._adaptive:
            self.scheduler.observe_completion(
                state.index, start, stop, finish - t
            )
        self._chunks.append(
            ChunkRecord(
                worker=state.index,
                start=start,
                stop=stop,
                assigned_at=t,
                completed_at=finish,
                stage=stage,
                acp=acp,
            )
        )
        if self.collect_results:
            self._results.append((start, self.workload.execute(start, stop)))
        state.pending_piggyback = (
            (stop - start) * self.cluster.result_bytes_per_item
        )
        self.queue.schedule_at(
            finish,
            self._alive_action(state, self._send_request),
            kind="request-send",
        )

    def _worker_terminate(self, state: _WorkerState) -> None:
        state.done = True
        state.metrics.finished_at = self.queue.now
        if self.observing:
            self.obs.emit(ObsEvent(
                "terminate", _SRC, self.queue.now, state.index,
            ))

    # -- failure injection --------------------------------------------------

    def _work_may_reappear(self) -> bool:
        """True while a still-failing worker holds undelivered work."""
        return any(
            s.index in self._pending_failers
            and (s.unacked is not None or s.pending_chunk is not None)
            for s in self._participants
        )

    def _worker_die(self, state: _WorkerState) -> None:
        """Fail-stop: lose undelivered work, requeue it, unpark peers."""
        t = self.queue.now
        schedule = self._death_schedule.get(state.index)
        if schedule:
            schedule.pop(0)
        if not schedule:
            self._pending_failers.discard(state.index)
        if state.dead or state.done:
            # Already dead (duplicate fails_at + plan death) or already
            # terminated normally: nothing is lost, but the failer
            # bookkeeping above may have just unblocked parked peers.
            self._drain_parked()
            return
        state.dead = True
        state.done = True
        state.epoch += 1
        state.metrics.finished_at = t
        if self.observing:
            self.obs.emit(ObsEvent(
                "fault", _SRC, t, state.index, detail="death",
            ))
        lost: list[tuple[int, int]] = []
        if state.pending_chunk is not None:
            start, stop, _stage, _acp = state.pending_chunk
            lost.append((start, stop))
            state.pending_chunk = None
        if state.unacked is not None:
            start, stop = state.unacked
            lost.append((start, stop))
            state.unacked = None
            # Remove the (now lost) execution record; it will re-enter
            # when a survivor recomputes the interval.
            for i in range(len(self._chunks) - 1, -1, -1):
                rec = self._chunks[i]
                if rec.worker == state.index and rec.start == start \
                        and rec.stop == stop:
                    if rec.completed_at > t:
                        # Died mid-chunk: un-book the never-executed
                        # tail of the pre-integrated compute time.
                        state.metrics.t_comp -= rec.completed_at - t
                    state.metrics.chunks -= 1
                    state.metrics.iterations -= stop - start
                    del self._chunks[i]
                    break
            if self.collect_results:
                for i in range(len(self._results) - 1, -1, -1):
                    if self._results[i][0] == start:
                        del self._results[i]
                        break
        self._requeue.extend(lost)
        alive = [s for s in self._participants if not s.dead]
        if not alive and self._future_restarts == 0 \
                and (self._requeue or not self.scheduler.finished):
            raise SimulationError(
                "every worker died with iterations outstanding; the "
                "loop cannot complete"
            )
        self._drain_parked()

    def _worker_restart(self, state: _WorkerState) -> None:
        """A chaos restart: the PE rejoins as a fresh, idle slave.

        Anything the dead incarnation held was requeued at death; the
        revived worker simply asks for work like any other idle slave
        (re-registering its ACP first in distributed mode, the paper's
        step 1(a) for a late joiner).
        """
        self._future_restarts -= 1
        if not state.dead:
            # The scheduled death never hurt this worker (it finished
            # first, or the plan was applied to a reliable node).
            return
        t = self.queue.now
        state.dead = False
        state.done = False
        state.pending_chunk = None
        state.unacked = None
        state.pending_piggyback = 0.0
        if self.observing:
            self.obs.emit(ObsEvent("restart", _SRC, t, state.index))
        if self.scheduler.distributed:
            acp = self._acp_now(state, t)
            self.scheduler.observe_acp(state.index, acp)
            if self.observing:
                self.obs.emit(ObsEvent(
                    "acp-update", _SRC, t, state.index, acp=acp,
                ))
        self._send_request(state)

    def _master_stall(self, duration: float) -> None:
        """The master serves nothing for ``duration`` from now."""
        if self.observing:
            self.obs.emit(ObsEvent(
                "fault", _SRC, self.queue.now, value=float(duration),
                detail="stall",
            ))
        self._master_free = max(
            self._master_free, self.queue.now + float(duration)
        )

    def _drain_parked(self) -> None:
        """Hand requeued work to parked workers; terminate the rest."""
        while self._requeue and self._parked:
            state = self._parked.pop(0)
            if state.dead:
                continue
            start, stop = self._requeue.popleft()
            reply_tx = state.node.transfer_time(self.cluster.reply_bytes)
            state.metrics.t_com += reply_tx
            if self.observing:
                self.obs.emit(ObsEvent(
                    "assign", _SRC, self.queue.now, state.index,
                    start=start, stop=stop, stage=0,
                    detail="requeue",
                ))
            state.pending_chunk = (start, stop, 0, None)
            self.queue.schedule(
                reply_tx,
                self._alive_action(state, self._worker_compute),
                kind="assign",
            )
        if not self._work_may_reappear() and not self._requeue \
                and self.scheduler.finished:
            for state in self._parked:
                if state.dead:
                    continue
                reply_tx = state.node.transfer_time(
                    self.cluster.reply_bytes
                )
                state.metrics.t_com += reply_tx
                self.queue.schedule(
                    reply_tx,
                    self._alive_action(state, self._worker_terminate),
                    kind="terminate",
                )
            self._parked.clear()

    def _schedule_faults(self) -> None:
        """Queue every death (fails_at + plan) and chaos event.

        Deaths from ``NodeSpec.fails_at`` and from the fault plan merge
        into one per-worker schedule so the failer bookkeeping (and the
        parking heuristic built on it) sees them uniformly.
        """
        participants = {s.index for s in self._participants}
        deaths: dict[int, list[float]] = {}
        for s in self._participants:
            if s.node.fails_at is not None:
                deaths.setdefault(s.index, []).append(
                    float(s.node.fails_at)
                )
        if self.chaos is not None:
            for ev in self.chaos.events:
                kind = ev.kind
                if kind == "death" and ev.worker in participants:
                    deaths.setdefault(ev.worker, []).append(float(ev.at))
                elif kind == "restart" and ev.worker in participants:
                    self._future_restarts += 1
                    self.queue.schedule_at(
                        float(ev.at),
                        lambda _e, s=self.workers[ev.worker]:
                            self._worker_restart(s),
                        kind="chaos-restart",
                    )
                elif kind == "stall":
                    self.queue.schedule_at(
                        float(ev.at),
                        lambda _e, d=float(ev.duration):
                            self._master_stall(d),
                        kind="chaos-stall",
                    )
                elif kind in ("delay", "loss") and ev.worker in participants:
                    self._message_faults.setdefault(ev.worker, [])
            for idx in self._message_faults:
                self._message_faults[idx] = self.chaos.message_faults(idx)
        for idx, times in deaths.items():
            times.sort()
            self._death_schedule[idx] = times
            self._pending_failers.add(idx)
            for at in times:
                self.queue.schedule_at(
                    at,
                    lambda _e, s=self.workers[idx]: self._worker_die(s),
                    kind="death",
                )

    # -- run -----------------------------------------------------------------------

    def run(self) -> SimResult:
        # Analytic fast path: fault-free deterministic runs skip the
        # DES entirely (bit-identical; see repro.simulation.fastpath).
        if self.fast is not False:
            reason = fastpath.master_fast_reason(self)
            if reason is None and fastpath.fast_enabled():
                return fastpath.run_fast_master(self)
            if self.fast is True:
                raise SimulationError(
                    f"fast=True but the run is not fast-path eligible: "
                    f"{reason or 'disabled via ' + fastpath.ENV_FAST}"
                )
        # Step 1(a): availability screen + initial ACP registration.
        if self.scheduler.distributed:
            self._participants = [
                s for s in self.workers if self._available(s, 0.0)
            ]
            if not self._participants:
                raise StarvationError(
                    "no worker has ACP above the availability threshold; "
                    "this is the classic-DTSS starvation the paper's "
                    "Sec. 5.2 scaled ACP model avoids"
                )
            for s in self._participants:
                acp = self._acp_now(s, 0.0)
                self.scheduler.observe_acp(s.index, acp)
                if self.observing:
                    self.obs.emit(ObsEvent(
                        "acp-update", _SRC, 0.0, s.index, acp=acp,
                    ))
        else:
            self._participants = list(self.workers)
        self._schedule_faults()
        for s in self._participants:
            self._send_request(s)
        self.queue.run()
        t_p = self._last_result_arrival
        # Terminal idling: slaves that finished early wait for the run
        # to end (paper rows for fast PEs sum to ~T_p).  Dead workers
        # do not idle -- their clock stopped at death.
        for s in self._participants:
            if s.dead:
                continue
            tracked = s.metrics.busy
            if tracked < t_p:
                s.metrics.t_wait += t_p - tracked
        result = SimResult(
            scheme=self.scheduler.name,
            workers=[s.metrics for s in self.workers],
            t_p=t_p,
            chunks=self._chunks,
            rederivations=getattr(self.scheduler, "rederivations", 0),
            events=self.queue.processed,
        )
        assigned = sum(c.size for c in self._chunks)
        if assigned != self.workload.size:
            raise SimulationError(
                f"scheduling leak: assigned {assigned} of "
                f"{self.workload.size} iterations"
            )
        if self.collect_results:
            self._results.sort(key=lambda pair: pair[0])
            result.results = (
                np.concatenate([r for _, r in self._results])
                if self._results
                else np.zeros(0)
            )
        return result


def simulate(
    scheme: SchedulerLike,
    workload: Workload,
    cluster: ClusterSpec,
    acp_model: AcpModel = IMPROVED_ACP,
    collect_results: bool = False,
    chaos=None,
    collector=None,
    fast: object = "auto",
    **scheme_kwargs,
) -> SimResult:
    """Simulate one run of ``scheme`` over ``workload`` on ``cluster``.

    ``scheme`` may be a registry name (``"TSS"``, ``"DFISS"``, ...), a
    ready :class:`~repro.core.Scheduler` (must match the workload and
    cluster sizes), or a factory ``f(total, workers) -> Scheduler``.

    ``chaos`` takes a :class:`repro.chaos.FaultPlan`: deaths, restarts,
    message delay/loss, master stalls, and load spikes are injected in
    virtual time, and the run must still cover every iteration exactly
    once (see ``docs/fault_model.md`` and :mod:`repro.verify`).

    ``fast`` selects the analytic fast path
    (:mod:`repro.simulation.fastpath`): ``"auto"`` (default) takes it
    when the run is fault-free and unobserved -- bit-identical to the
    DES; ``False`` forces the DES; ``True`` requires the fast path and
    raises :class:`SimulationError` when the run is ineligible.
    """
    if isinstance(scheme, str):
        scheduler = make_for_cluster(
            scheme, workload.size, cluster, acp_model, **scheme_kwargs
        )
    elif isinstance(scheme, Scheduler):
        scheduler = scheme
    else:
        scheduler = scheme(workload.size, cluster.size)
    sim = MasterSlaveSimulation(
        scheduler,
        workload,
        cluster,
        acp_model=acp_model,
        collect_results=collect_results,
        chaos=chaos,
        collector=collector,
        fast=fast,
    )
    # The scheduler object never escapes simulate(), so the fast path
    # may replace it with a pure stepper instead of mutating it.
    sim._fresh_scheduler = isinstance(scheme, str)
    return sim.run()
