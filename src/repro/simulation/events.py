"""Discrete-event core: a deterministic time-ordered event queue.

The cluster simulators (:mod:`repro.simulation.engine` and
:mod:`repro.simulation.tree_engine`) are classic event-driven
simulations: every state change (message arrival, computation finish,
flush timer) is an :class:`Event` popped in time order.  Determinism is
load-bearing -- experiments must be exactly reproducible -- so ties are
broken by a monotonically increasing sequence number, never by object
identity or insertion hazards.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on simulator invariant violations (e.g. time reversal)."""


@dataclasses.dataclass(frozen=True, order=False)
class Event(object):
    """A scheduled state change.

    ``action`` is invoked with the event when it fires.  ``payload`` is
    free-form context for the action.  Events compare by ``(time, seq)``
    via the queue, not by field comparison.
    """

    time: float
    seq: int
    action: Callable[["Event"], None]
    kind: str = ""
    payload: Any = None


class EventQueue(object):
    """Min-heap of events ordered by ``(time, seq)``; tracks the clock.

    The clock only moves forward: scheduling an event in the past is an
    error (it would silently reorder causality), and popping advances
    the clock to the event's timestamp.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self,
        delay: float,
        action: Callable[[Event], None],
        kind: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` from the current time."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})"
            )
        return self.schedule_at(self.now + delay, action, kind, payload)

    def schedule_at(
        self,
        time: float,
        action: Callable[[Event], None],
        kind: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        event = Event(
            time=float(time),
            seq=next(self._seq),
            action=action,
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> Optional[Event]:
        """Pop and return the next event, advancing the clock; None if
        the queue is empty."""
        if not self._heap:
            return None
        time, _seq, event = heapq.heappop(self._heap)
        if time < self.now:  # pragma: no cover - guarded at insert
            raise SimulationError("event queue produced a time reversal")
        self.now = time
        return event

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000
            ) -> int:
        """Drain the queue, firing each event's action.

        ``until`` bounds virtual time (events beyond it stay queued);
        ``max_events`` is a runaway guard.  Returns events processed.
        """
        fired = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            event = self.pop()
            assert event is not None
            event.action(event)
            fired += 1
            self.processed += 1
            if fired > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; likely a livelock"
                )
        return fired
