"""Analytic fast path: fault-free runs without the generic DES.

The discrete-event engines pay for generality: every protocol step is
an :class:`~repro.simulation.events.Event` dataclass wrapping a closure
through a guarded dispatch, every chunk decision walks the scheduler's
``next_chunk`` (frozen ``WorkerView`` + ``ChunkAssignment`` per
request), and every emission site tests a collector.  None of that
machinery changes the *numbers*: on a fault-free run with no observer
the protocol is a deterministic recurrence over a handful of floats
(link-free / master-free / counter-free times), and the chunk sequence
is the pure ladder :mod:`repro.core.kernel` materializes in one shot.

This module evaluates that recurrence directly, collapsing the DES's
three-to-four events per chunk into **one processed event per chunk**:

* Master engine: the only inter-worker interactions happen when a
  request *arrives* at the master (link + service serialization,
  scheduler call).  The compute and send legs of a worker's chain are
  pure functions of its own arrival, so the whole leg is evaluated
  inline and only the *next arrival* is kept pending -- one pending
  event per worker, found by an O(P) scan instead of a heap.
* Decentral engine: the shared state is the counter; a claim happens
  when a chunk becomes *durable*, so the loop keeps one pending
  durable event per worker and evaluates claim + compute inline.

Event order is still **exactly** the DES's ``(time, seq)`` order.  The
DES breaks time ties by ``seq``, and seq values are assigned in firing
order of the *scheduling* events -- so each pending arrival carries a
pedigree key ``(arrival time, send fire time, compute fire time,
predecessor rank)``.  Comparing pedigrees lexicographically reproduces
the DES tie-break chain: equal arrival times compare send seqs, which
were assigned in compute firing order, which were assigned in the
order the *previous* arrivals were processed -- a rank this loop
knows, because it processed them.  Initial requests use rank slots
below every later rank, in worker index order, exactly like the DES's
startup seq assignment.  Chunk records are emitted in processing
order and stably sorted by compute-fire time afterwards, which equals
the DES's compute-event order for the same reason.

Further per-chunk costs are shaved without touching the numbers:

* chunk decisions come from **pure steppers** compiled per scheduler
  class (a few integer operations each) when the scheduler was built
  internally from a registry name, falling back to driving the real
  scheduler for caller-supplied instances and the ACP-driven
  distributed family (still bit-identical, less speedup);
* the per-chunk compute integral is inlined for ``ConstantLoad``
  (``finish = t + cost / rate``), the overwhelmingly common case;
* additions of exact zeros (switched-segment waits) are skipped --
  IEEE-identical because ``x + 0.0 == x`` for the non-negative
  accumulators involved;
* :class:`~repro.simulation.metrics.ChunkRecord` construction is
  deferred via :class:`~repro.simulation.metrics.LazyChunkList` --
  sweeps that never read the per-chunk trace never pay for it.

Every floating-point expression is kept in the engine's exact shape
and evaluation order, so the fast path is **bit-identical** to the DES
-- enforced for every registry scheme by
``tests/simulation/test_fastpath.py``, and selected automatically by
:func:`~repro.simulation.engine.simulate` /
:func:`~repro.decentral.simulate_decentral` only when eligibility
holds (see :func:`master_fast_reason` / :func:`decentral_fast_reason`;
``docs/performance.md`` documents the rules).

Set ``REPRO_FAST=0`` (or pass ``fast=False``) to force the DES; pass
``fast=True`` to *require* the fast path (raises when ineligible).
The tree engine has no fast path: work stealing entangles every
decision with timing, so there is nothing to precompute.
"""

from __future__ import annotations

import math
import os
from operator import itemgetter
from typing import Callable, Optional

import numpy as np

from ..core.base import WorkerView
from ..core.chunk import ChunkScheduler, PureScheduler
from ..core.factoring import (
    FactoringScheduler,
    WeightedFactoringScheduler,
    _round_half_even,
)
from ..core.fixed_increase import FixedIncreaseScheduler
from ..core.guided import GuidedScheduler
from ..core.kernel import evaluate_ladder
from ..core.static_ import BlockCyclicScheduler, StaticScheduler
from ..core.tfss import TrapezoidFactoringScheduler
from ..core.trapezoid import TrapezoidScheduler
from .loadgen import ConstantLoad, integrate_compute
from .metrics import LazyChunkList, SimResult

__all__ = [
    "ENV_FAST",
    "fast_enabled",
    "master_fast_reason",
    "decentral_fast_reason",
    "run_fast_master",
    "run_fast_decentral",
]

#: Environment kill-switch: set to ``0``/``off``/``no``/``false`` to
#: force every simulation down the generic DES path (debugging aid).
ENV_FAST = "REPRO_FAST"

_INF = math.inf

#: Scheduler classes with a compiled pure stepper (exact mirrors of
#: their ``_chunk_size``).  Used only for internally built schedulers:
#: pure steppers never touch the instance, so a caller-held scheduler
#: would not see its cursor advance -- those get the driven fallback.
_PURE_CLASSES = (
    PureScheduler,
    ChunkScheduler,
    GuidedScheduler,
    TrapezoidScheduler,
    FactoringScheduler,
    FixedIncreaseScheduler,
    TrapezoidFactoringScheduler,
    WeightedFactoringScheduler,
    StaticScheduler,
    BlockCyclicScheduler,
)


def fast_enabled() -> bool:
    """False when the ``REPRO_FAST`` kill-switch is set."""
    return os.environ.get(ENV_FAST, "").strip().lower() not in (
        "0", "off", "no", "false"
    )


def _cluster_fast_reason(cluster, chaos, obs) -> Optional[str]:
    """Shared eligibility core; None = eligible, else the blocker."""
    if chaos is not None:
        return "a fault plan is attached"
    if obs:
        return "an observability collector is attached"
    for node in cluster.nodes:
        if node.fails_at is not None:
            return f"node {node.name} has fails_at set"
        if node.segment is not None:
            return f"node {node.name} is on a shared segment"
    return None


def master_fast_reason(sim) -> Optional[str]:
    """Why this master-engine run cannot take the fast path (None = can).

    The fast path replays the fault-free switched-network protocol
    exactly; anything that perturbs it -- chaos plans, ``fails_at``
    deaths, shared-segment contention (transfer ordering becomes
    entangled with send times), an attached collector (emission points
    sit inside the collapsed handlers), or a feedback-dependent
    scheduler (the adaptive meta-scheduler consumes per-chunk
    observations the collapsed recurrence never produces) -- falls back
    to the DES.
    """
    if getattr(sim.scheduler, "feedback_dependent", False):
        return (
            "the scheduler is feedback-dependent (adaptive "
            "meta-scheduling observes the run it is steering)"
        )
    return _cluster_fast_reason(sim.cluster, sim.chaos, sim.obs)


def decentral_fast_reason(sim) -> Optional[str]:
    """Why this decentral run cannot take the fast path (None = can)."""
    return _cluster_fast_reason(sim.cluster, sim.chaos, sim.obs)


def _pref_list(workload) -> list[float]:
    """The workload's cost prefix sums as a plain float list, cached.

    ``pref[stop] - pref[start]`` on python floats is bit-identical to
    the engine's ``float(np.float64 - np.float64)``; the list is
    cached on the workload keyed by the prefix array's identity so a
    sweep of many simulations over one workload converts it once.
    """
    workload.costs()
    pref = workload._prefix
    cached = getattr(workload, "_fast_pref", None)
    if cached is not None and cached[0] is pref:
        return cached[1]
    lst = pref.tolist()
    try:
        workload._fast_pref = (pref, lst)
    except AttributeError:  # slotted workload subclass: just recompute
        pass
    return lst


# -- pure steppers ---------------------------------------------------------


def _nominal_fn(scheduler) -> Callable[[int, int], tuple[int, int]]:
    """The scheduler's ``_chunk_size`` as a closure: (worker, remaining)
    -> (nominal size, stage).  Exact mirrors -- every branch below is a
    transliteration of the corresponding ``_chunk_size``."""
    kind = type(scheduler)
    if kind in (PureScheduler, ChunkScheduler):
        k = scheduler.k

        def nominal(wid: int, rem: int) -> tuple[int, int]:
            return k, 0

    elif kind is GuidedScheduler:
        min_chunk = scheduler.min_chunk
        workers = scheduler.workers

        def nominal(wid: int, rem: int) -> tuple[int, int]:
            return max(min_chunk, math.ceil(rem / workers)), 0

    elif kind is TrapezoidScheduler:
        last = scheduler.params.last
        dec = scheduler.params.decrement
        state = [scheduler._next_size]

        def nominal(wid: int, rem: int) -> tuple[int, int]:
            size = state[0]
            state[0] = max(last, size - dec)
            return size, 0

    elif kind in (
        FactoringScheduler,
        FixedIncreaseScheduler,
        TrapezoidFactoringScheduler,
    ):
        ladder = scheduler._ladder
        depth = len(ladder)
        workers = scheduler.workers
        counts = [0] * workers

        def nominal(wid: int, rem: int) -> tuple[int, int]:
            k = counts[wid]
            counts[wid] = k + 1
            if k < depth:
                return ladder[k], k + 1
            return max(1, math.ceil(rem / (2 * workers))), k + 1

    elif kind is WeightedFactoringScheduler:
        totals = scheduler._stage_totals
        depth = len(totals)
        weights = scheduler.weights
        wsum = scheduler._wsum
        workers = scheduler.workers
        counts = [0] * workers

        def nominal(wid: int, rem: int) -> tuple[int, int]:
            k = counts[wid]
            counts[wid] = k + 1
            idx = k if k < depth else depth - 1
            share = totals[idx] * weights[wid % workers] / wsum
            return max(1, _round_half_even(share)), idx + 1

    elif kind is StaticScheduler:
        blocks = scheduler._blocks
        workers = scheduler.workers
        served = [scheduler._served]

        def nominal(wid: int, rem: int) -> tuple[int, int]:
            s = served[0]
            if s >= workers:
                return rem, 0
            size = blocks[s]
            s += 1
            while size == 0 and s < workers:
                size = blocks[s]
                s += 1
            served[0] = s
            return (size if size > 0 else rem), 0

    elif kind is BlockCyclicScheduler:
        block = scheduler.block

        def nominal(wid: int, rem: int) -> tuple[int, int]:
            return block, 0

    else:  # pragma: no cover - guarded by _PURE_CLASSES membership
        raise TypeError(f"no pure stepper for {kind.__name__}")
    return nominal


def _compile_stepper(sim):
    """(worker, arrival, acp) -> (start, stop, stage) | None.

    Pure when the scheduler is an internally built known class;
    otherwise drives the real scheduler with an identically
    constructed :class:`WorkerView` (bit-identical either way: the
    pure steppers mirror ``next_chunk``'s clipping and stage rules).
    """
    scheduler = sim.scheduler
    pure = (
        getattr(sim, "_fresh_scheduler", False)
        and type(scheduler) in _PURE_CLASSES
    )
    if pure:
        total = scheduler.total
        nominal = _nominal_fn(scheduler)
        cursor = [0]

        def step(wid: int, arrival: float, acp) -> Optional[tuple]:
            at = cursor[0]
            if at >= total:
                return None
            rem = total - at
            size, stage = nominal(wid, rem)
            size = int(size)
            if size < 1:
                size = 1
            if size > rem:
                size = rem
            cursor[0] = at + size
            return (at, at + size, stage)

        return step

    nodes = sim.cluster.nodes

    def step(wid: int, arrival: float, acp) -> Optional[tuple]:
        node = nodes[wid]
        view = WorkerView(
            worker_id=wid,
            virtual_power=float(node.virtual_power or 1.0),
            run_queue=node.load.q_at(arrival),
            acp=acp,
        )
        chunk = scheduler.next_chunk(view)
        if chunk is None:
            return None
        return (chunk.start, chunk.stop, chunk.stage)

    return step


# -- master-engine fast path -----------------------------------------------


def run_fast_master(sim) -> SimResult:
    """Fault-free master--slave run, bit-identical to the DES.

    ``sim`` is a :class:`~repro.simulation.engine.MasterSlaveSimulation`
    that passed :func:`master_fast_reason`; its worker metrics are
    mutated in place exactly as the DES would.

    One pending *arrival* per worker, processed in exact DES order via
    the pedigree key (see module docstring); the compute and send legs
    of each chain are evaluated inline at arrival time -- their values
    only depend on the arrival, and the ``q_at`` realizations of
    stochastic load traces are query-order independent.
    """
    from .engine import SimulationError, StarvationError

    scheduler = sim.scheduler
    workload = sim.workload
    cluster = sim.cluster
    total = workload.size
    pref = _pref_list(workload)

    distributed = scheduler.distributed
    if distributed:
        participants = [
            s for s in sim.workers if sim._available(s, 0.0)
        ]
        if not participants:
            raise StarvationError(
                "no worker has ACP above the availability threshold; "
                "this is the classic-DTSS starvation the paper's "
                "Sec. 5.2 scaled ACP model avoids"
            )
        for s in participants:
            scheduler.observe_acp(s.index, sim._acp_now(s, 0.0))
    else:
        participants = list(sim.workers)

    # SS/CSS built here from a registry name: the nominal size is the
    # constant ``k``, so the assignment is two integer ops inlined in
    # the arrival branch (no stepper call at all).
    const_k = None
    cursor = 0
    if (
        getattr(sim, "_fresh_scheduler", False)
        and type(scheduler) in (PureScheduler, ChunkScheduler)
    ):
        const_k = scheduler.k
        step = None
    else:
        step = _compile_stepper(sim)
    acp_model = sim.acp_model
    collect = sim.collect_results

    n_nodes = len(cluster.nodes)
    metrics = [s.metrics for s in sim.workers]
    node_of = [s.node for s in sim.workers]
    latency = [node.latency for node in node_of]
    bandwidth = [node.bandwidth for node in node_of]
    reply_tx = [
        node.transfer_time(cluster.reply_bytes) for node in node_of
    ]
    vpower = [float(node.virtual_power or 1.0) for node in node_of]
    load_of = [node.load for node in node_of]
    speed_of = [node.speed for node in node_of]
    # ConstantLoad: the compute integral collapses to cost / rate.
    const_rate = [
        node.speed / node.load.q if type(node.load) is ConstantLoad
        else None
        for node in node_of
    ]
    # Per-worker metric accumulators as plain lists: same values, same
    # per-worker addition order as the dataclass fields, written back
    # once at the end (list stores are much cheaper than dataclass
    # attribute updates on the hot path).
    acc_com = [m.t_com for m in metrics]
    acc_wait = [m.t_wait for m in metrics]
    acc_comp = [m.t_comp for m in metrics]
    acc_chunks = [m.chunks for m in metrics]
    acc_iters = [m.iterations for m in metrics]

    request_bytes = cluster.request_bytes
    master_bw = cluster.master_bandwidth
    master_service = cluster.master_service
    res_bpi = cluster.result_bytes_per_item

    link_free = 0.0
    master_free = 0.0
    last_result = 0.0
    rows: list[tuple] = []
    results: list[tuple[int, np.ndarray]] = []

    # Pending next arrival per worker: time (inf = chain done), the
    # pedigree (send fire time, compute fire time, predecessor rank),
    # and the request payload (acp, carries-results flag, nbytes).
    nxt_t = [_INF] * n_nodes
    nxt_s = [0.0] * n_nodes
    nxt_c = [0.0] * n_nodes
    nxt_rank = [0] * n_nodes
    nxt_acp: list = [None] * n_nodes
    nxt_carry = [False] * n_nodes
    nxt_nb = [0.0] * n_nodes

    # Initial requests: direct calls in the DES too, worker index
    # order -- seqs 0..P-1 below every later seq, encoded as negative
    # ranks with pedigree (-1, -1) < any real fire time.
    active = 0
    for idx, s in enumerate(participants):
        i = s.index
        tx = latency[i] + request_bytes / bandwidth[i]
        acc_com[i] += tx
        nxt_t[i] = tx
        nxt_s[i] = -1.0
        nxt_c[i] = -1.0
        nxt_rank[i] = idx - n_nodes
        if distributed:
            nxt_acp[i] = acp_model.acp(vpower[i], load_of[i].q_at(0.0))
        nxt_nb[i] = request_bytes
        active += 1

    rank = 0
    while active:
        t = min(nxt_t)
        i = nxt_t.index(t)
        if nxt_t.count(t) > 1:
            # Coincident arrivals: full DES tie-break on the pedigree.
            best = (nxt_s[i], nxt_c[i], nxt_rank[i])
            for j in range(i + 1, n_nodes):
                if nxt_t[j] == t:
                    key = (nxt_s[j], nxt_c[j], nxt_rank[j])
                    if key < best:
                        best = key
                        i = j
        # -- arrival: master link + service serialization ----------------
        nb = nxt_nb[i]
        recv_start = t if t > link_free else link_free
        arrival = recv_start + nb / master_bw
        link_free = arrival
        if nxt_carry[i] and arrival > last_result:
            last_result = arrival
        service_start = arrival if arrival > master_free else master_free
        service_end = service_start + master_service
        master_free = service_end
        acc_wait[i] += service_end - t
        rtx = reply_tx[i]
        acc_com[i] += rtx
        tc = service_end + rtx  # compute event fire time
        # -- assignment --------------------------------------------------
        if const_k is not None:
            if cursor < total:
                rem = total - cursor
                size = const_k if const_k < rem else rem
                start = cursor
                stop = cursor + size
                cursor = stop
                stage = 0
            else:
                start = -1
        else:
            a = step(i, arrival, nxt_acp[i])
            if a is None:
                start = -1
            else:
                start, stop, stage = a
        if start >= 0:
            # -- compute leg, inline ------------------------------------
            cost = pref[stop] - pref[start]
            rate = const_rate[i]
            if rate is not None:
                finish = tc + cost / rate if cost > 1e-12 else tc
            else:
                finish = integrate_compute(
                    tc, cost, speed_of[i], load_of[i]
                )
            acc_comp[i] += finish - tc
            acc_chunks[i] += 1
            acc_iters[i] += stop - start
            rows.append((i, start, stop, tc, finish, stage, nxt_acp[i]))
            if collect:
                results.append((start, workload.execute(start, stop)))
            # -- send leg, inline: next arrival becomes pending ---------
            pig = (stop - start) * res_bpi
            nb = request_bytes + pig
            tx = latency[i] + nb / bandwidth[i]
            acc_com[i] += tx
            if distributed:
                nxt_acp[i] = acp_model.acp(
                    vpower[i], load_of[i].q_at(finish)
                )
            nxt_t[i] = finish + tx
            nxt_s[i] = finish
            nxt_c[i] = tc
            nxt_rank[i] = rank
            nxt_carry[i] = pig > 0
            nxt_nb[i] = nb
        else:
            # Dry request: terminate fires at the reply's delivery.
            metrics[i].finished_at = tc
            nxt_t[i] = _INF
            active -= 1
        rank += 1

    for i, m in enumerate(metrics):
        m.t_com = acc_com[i]
        m.t_wait = acc_wait[i]
        m.t_comp = acc_comp[i]
        m.chunks = acc_chunks[i]
        m.iterations = acc_iters[i]

    t_p = last_result
    for s in participants:
        m = s.metrics
        tracked = m.t_com + m.t_wait + m.t_comp
        if tracked < t_p:
            m.t_wait += t_p - tracked
    # DES chunk order is compute-event order: compute seqs follow
    # arrival processing order (= append order here), so a stable sort
    # on fire time reproduces it exactly, ties included.
    rows.sort(key=itemgetter(3))
    chunks = LazyChunkList(rows)
    result = SimResult(
        scheme=scheduler.name,
        workers=metrics,
        t_p=t_p,
        chunks=chunks,
        rederivations=getattr(scheduler, "rederivations", 0),
        # Fault-free event census: per worker, chunks+1 arrivals (the
        # last is the dry request), one compute and one send event per
        # chunk (the first send is a direct call), one terminate.
        events=3 * len(rows) + 2 * len(participants),
    )
    assigned = sum(acc_iters)
    if assigned != total:
        raise SimulationError(
            f"scheduling leak: assigned {assigned} of {total} "
            f"iterations"
        )
    if collect:
        results.sort(key=lambda pair: pair[0])
        result.results = (
            np.concatenate([r for _, r in results])
            if results
            else np.zeros(0)
        )
    sim._chunks = chunks
    sim._last_result_arrival = last_result
    return result


# -- decentral fast path ---------------------------------------------------


def run_fast_decentral(sim) -> SimResult:
    """Fault-free shared-counter run, bit-identical to the DES.

    ``sim`` is a :class:`~repro.decentral.sim_engine.DecentralSimulation`
    that passed :func:`decentral_fast_reason`.  The whole chunk ladder
    comes from one :func:`repro.core.kernel.evaluate_ladder` call; the
    loop keeps one pending *chunk-durable* event per worker (claims
    happen at durability, so that is where counter ordering is
    decided) and evaluates claim + compute inline, replaying the
    engine's exact float expressions including the hierarchical lease
    logic.  Durable-event ties break on ``(compute fire time, claim
    rank)`` -- the DES's seq order, by the same pedigree argument as
    the master loop.
    """
    from .events import SimulationError

    calc = sim.calc
    workload = sim.workload
    cluster = sim.cluster
    total = workload.size
    pref = _pref_list(workload)

    ladder = evaluate_ladder(calc)
    starts = ladder.starts.tolist()
    stops = ladder.stops.tolist()
    stages = ladder.stages.tolist()
    n = ladder.n_chunks

    n_workers = len(sim.workers)
    metrics = [s.metrics for s in sim.workers]
    node_of = [s.node for s in sim.workers]
    req_tx = [
        node.transfer_time(cluster.request_bytes) for node in node_of
    ]
    rep_tx = [
        node.transfer_time(cluster.reply_bytes) for node in node_of
    ]
    load_of = [node.load for node in node_of]
    speed_of = [node.speed for node in node_of]
    const_rate = [
        node.speed / node.load.q if type(node.load) is ConstantLoad
        else None
        for node in node_of
    ]
    collect = sim.collect_results

    atomic_op_cost = sim.atomic_op_cost
    local_op_cost = sim.local_op_cost
    group_size = sim.group_size
    lease = sim.lease

    counter_free = 0.0
    next_ord = 0
    global_ops = 0
    local_ops = 0
    lease_state = dict(sim._lease_state)
    group_free = dict(sim._group_free)

    rows: list[tuple] = []
    results: list[tuple[int, np.ndarray]] = []
    # Per-worker metric accumulators as lists (see run_fast_master).
    acc_com = [m.t_com for m in metrics]
    acc_wait = [m.t_wait for m in metrics]
    acc_comp = [m.t_comp for m in metrics]
    acc_chunks = [m.chunks for m in metrics]
    acc_iters = [m.iterations for m in metrics]

    def allocate(i: int, at: float) -> tuple[Optional[int], float]:
        # Hierarchical (group-counter) claim path; the global-counter
        # path is inlined in the loop below.
        nonlocal next_ord, local_ops, counter_free, global_ops
        g = i // group_size
        gfree = group_free[g]
        local_start = at if at > gfree else gfree
        wait = local_start - at
        if wait:
            acc_wait[i] += wait
        local_end = local_start + local_op_cost
        group_free[g] = local_end
        nxt, lease_end = lease_state[g]
        if nxt < (lease_end if lease_end < n else n):
            lease_state[g] = (nxt + 1, lease_end)
            local_ops += 1
            return nxt, local_end
        if next_ord < n:
            base = next_ord
            next_ord += lease
            lease_state[g] = (base + 1, base + lease)
            index = base
        else:
            index = None
        gstart = local_end if local_end > counter_free else counter_free
        wait = gstart - local_end
        if wait:
            acc_wait[i] += wait
        end = gstart + atomic_op_cost
        counter_free = end
        global_ops += 1
        group_free[g] = end
        return index, end

    hierarchical = group_size is not None
    t_p = 0.0

    # Pending durable event per worker: fire time (inf = done) plus
    # the pedigree (compute fire time, claim rank); claim + compute
    # legs are evaluated inline when the event is processed.  Initial
    # claims are direct calls in the DES, worker index order at t = 0
    # (``0.0 + tx == tx`` exactly): encoded as due-at-zero events with
    # pedigree (-1, i - W), which the tie-break resolves to exactly
    # that order before any real durable can fire.
    nxt_t = [0.0] * n_workers
    nxt_c = [-1.0] * n_workers
    nxt_rank = [i - n_workers for i in range(n_workers)]
    active = n_workers

    rank = 0
    while active:
        t = min(nxt_t)
        i = nxt_t.index(t)
        if nxt_t.count(t) > 1:
            best = (nxt_c[i], nxt_rank[i])
            for j in range(i + 1, n_workers):
                if nxt_t[j] == t:
                    key = (nxt_c[j], nxt_rank[j])
                    if key < best:
                        best = key
                        i = j
        # -- claim -------------------------------------------------------
        rqx = req_tx[i]
        acc_com[i] += rqx
        at = t + rqx
        if hierarchical:
            index, access_end = allocate(i, at)
        else:
            if next_ord < n:
                index = next_ord
                next_ord += 1
            else:
                index = None
            cstart = at if at > counter_free else counter_free
            wait = cstart - at
            if wait:
                acc_wait[i] += wait
            access_end = cstart + atomic_op_cost
            counter_free = access_end
        acc_com[i] += rep_tx[i]
        resume = access_end + rep_tx[i]
        if index is None:
            # Dry counter: the chain terminates at the reply.
            metrics[i].finished_at = resume
            nxt_t[i] = _INF
            active -= 1
        else:
            # -- compute leg, inline ------------------------------------
            start = starts[index]
            stop = stops[index]
            cost = pref[stop] - pref[start]
            rate = const_rate[i]
            if rate is not None:
                finish = resume + cost / rate if cost > 1e-12 else resume
            else:
                finish = integrate_compute(
                    resume, cost, speed_of[i], load_of[i]
                )
            acc_comp[i] += finish - resume
            acc_chunks[i] += 1
            acc_iters[i] += stop - start
            rows.append((i, start, stop, resume, finish, stages[index]))
            if finish > t_p:
                t_p = finish
            if collect:
                results.append((start, workload.execute(start, stop)))
            nxt_t[i] = finish
            nxt_c[i] = resume
            nxt_rank[i] = rank
        rank += 1

    if not hierarchical:
        # Every claim -- one per startup worker plus one per durable
        # chunk -- performs exactly one global counter access.
        global_ops = len(rows) + n_workers

    for i, m in enumerate(metrics):
        m.t_com = acc_com[i]
        m.t_wait = acc_wait[i]
        m.t_comp = acc_comp[i]
        m.chunks = acc_chunks[i]
        m.iterations = acc_iters[i]

    for s in sim.workers:
        m = s.metrics
        tracked = m.t_com + m.t_wait + m.t_comp
        if tracked < t_p:
            m.t_wait += t_p - tracked
    assigned = sum(acc_iters)
    if assigned != total:
        raise SimulationError(
            f"scheduling leak: assigned {assigned} of {total} "
            f"iterations"
        )
    # DES chunk order is compute-event order; stable sort on fire time
    # (rows were appended in claim order = compute seq order).
    rows.sort(key=itemgetter(3))
    chunks = LazyChunkList(rows)
    result = SimResult(
        scheme=calc.scheme,
        workers=metrics,
        t_p=t_p,
        chunks=chunks,
        rederivations=0,
        # Census: compute + durable per chunk, terminate per worker
        # (claims are direct calls, not events).
        events=2 * len(rows) + n_workers,
    )
    if collect:
        results.sort(key=lambda pair: pair[0])
        result.results = (
            np.concatenate([r for _, r in results])
            if results
            else np.zeros(0)
        )
    sim._chunks = chunks
    sim._next = next_ord
    sim._counter_free = counter_free
    sim._global_ops = global_ops
    sim._local_ops = local_ops
    sim._lease_state = lease_state
    sim._group_free = group_free
    return result
