"""Run-queue load traces -- the nondedicated-mode model.

The paper's entire external-load model is the run-queue length ``Q_i``:
"a process running on a computer will take an equal share of its
computing resources", so a PE with ``Q`` runnable processes computes the
loop at ``speed / Q``.  A :class:`LoadTrace` is a piecewise-constant
``Q(t) >= 1`` (the loop process itself is always counted).

Traces provided:

* :class:`ConstantLoad` -- the paper's experiments: overloaded slaves
  run two extra matrix-add processes for the whole run (``Q = 3``).
* :class:`StepLoad` -- explicit breakpoints, e.g. "a new user logs in
  ... and starts a computational resources expensive task" mid-run,
  the scenario motivating DTSS's re-derivation rule.
* :class:`PeriodicLoad` -- on/off duty cycle.
* :class:`RandomLoad` -- seeded Poisson arrivals of busy periods, for
  property tests of the adaptive path.

:func:`integrate_compute` converts an amount of work into a finish time
under a trace, walking the piecewise-constant rate exactly (no time
stepping, no drift).
"""

from __future__ import annotations

import bisect
import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from .events import SimulationError

__all__ = [
    "LoadTrace",
    "ConstantLoad",
    "StepLoad",
    "PeriodicLoad",
    "RandomLoad",
    "OverlayLoad",
    "integrate_compute",
]


class LoadTrace(ABC):
    """Piecewise-constant run-queue length over virtual time."""

    @abstractmethod
    def q_at(self, t: float) -> int:
        """Run-queue length at time ``t`` (always >= 1)."""

    @abstractmethod
    def next_change(self, t: float) -> Optional[float]:
        """First instant strictly after ``t`` where ``q`` may change,
        or None if constant forever after."""


class ConstantLoad(LoadTrace):
    """``Q(t) = q`` forever; ``q = 1`` is a dedicated PE."""

    def __init__(self, q: int = 1) -> None:
        if q < 1:
            raise SimulationError(f"run-queue length must be >= 1, got {q}")
        self.q = int(q)

    def q_at(self, t: float) -> int:
        return self.q

    def next_change(self, t: float) -> Optional[float]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantLoad(q={self.q})"


class StepLoad(LoadTrace):
    """Explicit breakpoints: ``steps = [(t0, q0), (t1, q1), ...]``.

    ``q`` before the first breakpoint is ``initial`` (default 1);
    breakpoints must be strictly increasing in time.
    """

    def __init__(
        self, steps: Sequence[tuple[float, int]], initial: int = 1
    ) -> None:
        if initial < 1:
            raise SimulationError(f"initial q must be >= 1, got {initial}")
        times = [float(t) for t, _ in steps]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise SimulationError(f"breakpoints must increase: {times}")
        if any(q < 1 for _, q in steps):
            raise SimulationError("all q values must be >= 1")
        self._times = times
        self._qs = [int(q) for _, q in steps]
        self.initial = int(initial)

    def q_at(self, t: float) -> int:
        idx = bisect.bisect_right(self._times, t) - 1
        return self.initial if idx < 0 else self._qs[idx]

    def next_change(self, t: float) -> Optional[float]:
        idx = bisect.bisect_right(self._times, t)
        return self._times[idx] if idx < len(self._times) else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        steps = list(zip(self._times, self._qs))
        return f"StepLoad(steps={steps!r}, initial={self.initial})"


class PeriodicLoad(LoadTrace):
    """On/off duty cycle: ``q_on`` for ``duty * period``, then ``q_off``."""

    def __init__(
        self,
        period: float,
        q_on: int = 3,
        q_off: int = 1,
        duty: float = 0.5,
        phase: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be > 0, got {period}")
        if not 0.0 < duty < 1.0:
            raise SimulationError(f"duty must be in (0,1), got {duty}")
        if q_on < 1 or q_off < 1:
            raise SimulationError("q_on and q_off must be >= 1")
        self.period = float(period)
        self.q_on = int(q_on)
        self.q_off = int(q_off)
        self.duty = float(duty)
        self.phase = float(phase)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PeriodicLoad(period={self.period}, q_on={self.q_on}, "
            f"q_off={self.q_off}, duty={self.duty}, phase={self.phase})"
        )

    def _position(self, t: float) -> float:
        return (t - self.phase) % self.period

    def q_at(self, t: float) -> int:
        return self.q_on if self._position(t) < self.duty * self.period \
            else self.q_off

    def next_change(self, t: float) -> Optional[float]:
        pos = self._position(t)
        boundary = self.duty * self.period
        delta = (boundary - pos) if pos < boundary else (self.period - pos)
        # Guard against landing exactly on the current instant.
        return t + max(delta, 1e-12)


class RandomLoad(LoadTrace):
    """Poisson busy periods: exponential gaps, exponential durations.

    Deterministic given ``seed``; the trace is generated lazily as far
    into the future as queried, so simulations of any length see a
    consistent realization.
    """

    def __init__(
        self,
        seed: int = 0,
        arrival_rate: float = 0.05,
        mean_duration: float = 5.0,
        q_busy: int = 3,
    ) -> None:
        if arrival_rate <= 0 or mean_duration <= 0:
            raise SimulationError(
                "arrival_rate and mean_duration must be > 0"
            )
        if q_busy < 2:
            raise SimulationError(f"q_busy must be >= 2, got {q_busy}")
        self._rng = np.random.default_rng(seed)
        self.seed = int(seed)
        self.arrival_rate = float(arrival_rate)
        self.mean_duration = float(mean_duration)
        self.q_busy = int(q_busy)
        self._edges: list[float] = []  # alternating busy-start/busy-end
        self._horizon = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RandomLoad(seed={self.seed}, "
            f"arrival_rate={self.arrival_rate}, "
            f"mean_duration={self.mean_duration}, q_busy={self.q_busy})"
        )

    def _extend(self, t: float) -> None:
        while self._horizon <= t:
            gap = self._rng.exponential(1.0 / self.arrival_rate)
            dur = self._rng.exponential(self.mean_duration)
            start = self._horizon + gap
            self._edges.append(start)
            self._edges.append(start + dur)
            self._horizon = start + dur

    def q_at(self, t: float) -> int:
        self._extend(t)
        idx = bisect.bisect_right(self._edges, t)
        return self.q_busy if idx % 2 == 1 else 1

    def next_change(self, t: float) -> Optional[float]:
        self._extend(t + 1e-9)
        idx = bisect.bisect_right(self._edges, t)
        while idx >= len(self._edges):
            self._extend(self._horizon + 1.0)
            idx = bisect.bisect_right(self._edges, t)
        return self._edges[idx]


class OverlayLoad(LoadTrace):
    """A base trace plus transient extra-load windows.

    ``windows`` is a sequence of ``(start, end, extra_q)``: during each
    half-open window ``[start, end)`` the run queue is the base trace's
    value plus ``extra_q``.  Overlapping windows stack.  This is how
    chaos :class:`~repro.chaos.LoadSpike` events reach the simulator
    without mutating the caller's cluster spec.
    """

    def __init__(
        self,
        base: LoadTrace,
        windows: Sequence[tuple[float, float, int]],
    ) -> None:
        cleaned = []
        for start, end, extra in windows:
            start, end, extra = float(start), float(end), int(extra)
            if end <= start:
                raise SimulationError(
                    f"window must have end > start, got [{start}, {end})"
                )
            if extra < 1:
                raise SimulationError(
                    f"window extra_q must be >= 1, got {extra}"
                )
            cleaned.append((start, end, extra))
        self.base = base
        self.windows = sorted(cleaned)

    def q_at(self, t: float) -> int:
        q = self.base.q_at(t)
        for start, end, extra in self.windows:
            if start <= t < end:
                q += extra
        return q

    def next_change(self, t: float) -> Optional[float]:
        nxt = self.base.next_change(t)
        for start, end, _extra in self.windows:
            for edge in (start, end):
                if edge > t:
                    nxt = edge if nxt is None else min(nxt, edge)
                    break
        return nxt

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OverlayLoad(base={self.base!r}, windows={self.windows!r})"


def integrate_compute(
    start: float, work: float, speed: float, trace: LoadTrace
) -> float:
    """Finish time of ``work`` basic ops begun at ``start`` under ``trace``.

    The PE computes at ``speed / Q(t)``; the integration walks the
    piecewise-constant segments exactly.
    """
    if work < 0:
        raise SimulationError(f"work must be >= 0, got {work}")
    if speed <= 0:
        raise SimulationError(f"speed must be > 0, got {speed}")
    t = float(start)
    remaining = float(work)
    # Tolerance avoids infinite loops on zero-length segments.
    while remaining > 1e-12:
        rate = speed / trace.q_at(t)
        change = trace.next_change(t)
        if change is None or not math.isfinite(change):
            return t + remaining / rate
        dt = change - t
        capacity = rate * dt
        if capacity >= remaining:
            return t + remaining / rate
        remaining -= capacity
        t = change
    return t
