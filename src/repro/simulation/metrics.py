"""Per-PE time accounting and run-level results.

The paper tabulates, per slave, ``T_com / T_wait / T_comp`` (Tables 2
and 3) and the total parallel time ``T_p`` "measured on the Master PE".
The simulator accounts the same three buckets:

* ``t_com``  -- time the PE's messages occupy its link (request +
  piggy-backed results out, reply in, result flushes for TreeS);
* ``t_wait`` -- time between finishing a transmission and receiving the
  next assignment that is *not* link time: master queueing + service,
  plus terminal idling before the run ends;
* ``t_comp`` -- time spent executing loop iterations (wall time on the
  PE, i.e. inflated by external load in nondedicated mode).

``T_p`` is the virtual time at which the last result lands on the
master.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

__all__ = ["WorkerMetrics", "SimResult", "imbalance"]


@dataclasses.dataclass
class WorkerMetrics(object):
    """Accumulated times and counters for one slave PE."""

    name: str
    t_com: float = 0.0
    t_wait: float = 0.0
    t_comp: float = 0.0
    chunks: int = 0
    iterations: int = 0
    finished_at: float = 0.0

    @property
    def busy(self) -> float:
        """Total accounted time (com + wait + comp)."""
        return self.t_com + self.t_wait + self.t_comp

    def row(self) -> str:
        """The paper's cell format: ``T_com/T_wait/T_comp``."""
        return f"{self.t_com:.1f}/{self.t_wait:.1f}/{self.t_comp:.1f}"


@dataclasses.dataclass
class ChunkRecord(object):
    """One scheduling decision, for traces and post-hoc analysis."""

    worker: int
    start: int
    stop: int
    assigned_at: float
    completed_at: float
    stage: int = 0
    #: the ACP the worker attached to the request that won this chunk
    #: (None for non-distributed schemes and requeued assignments).
    acp: Optional[int] = None

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclasses.dataclass
class SimResult(object):
    """Everything a simulated run produced."""

    scheme: str
    workers: list[WorkerMetrics]
    t_p: float
    chunks: list[ChunkRecord]
    results: Optional[np.ndarray] = None
    rederivations: int = 0
    events: int = 0
    #: unified observability trace (list of :class:`repro.obs.ObsEvent`)
    #: when the run was asked to collect one; ``events`` above predates
    #: the trace layer and counts *simulator queue* events, not these.
    obs_events: Optional[list] = None

    @property
    def total_iterations(self) -> int:
        return sum(w.iterations for w in self.workers)

    @property
    def total_chunks(self) -> int:
        return sum(w.chunks for w in self.workers)

    def comp_times(self) -> list[float]:
        return [w.t_comp for w in self.workers]

    def comp_imbalance(self) -> float:
        """Imbalance of computation time across PEs (see :func:`imbalance`)."""
        return imbalance(self.comp_times())

    def summary(self) -> str:
        lines = [f"{self.scheme}: T_p = {self.t_p:.2f}s, "
                 f"{self.total_chunks} chunks, "
                 f"imbalance = {self.comp_imbalance():.3f}"]
        for i, w in enumerate(self.workers, start=1):
            lines.append(f"  PE{i} ({w.name}): {w.row()}  "
                         f"[{w.chunks} chunks, {w.iterations} iters]")
        return "\n".join(lines)


def imbalance(values: list[float]) -> float:
    """Relative imbalance: ``(max - min) / mean`` (0 = perfectly even).

    Used to check the paper's qualitative claims ("the execution is
    well-balanced, in terms of the computation times" for distributed
    schemes; "not well-balanced" for simple ones on the heterogeneous
    cluster).
    """
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0 or not math.isfinite(mean):
        return 0.0
    return (max(values) - min(values)) / mean
