"""Per-PE time accounting and run-level results.

The paper tabulates, per slave, ``T_com / T_wait / T_comp`` (Tables 2
and 3) and the total parallel time ``T_p`` "measured on the Master PE".
The simulator accounts the same three buckets:

* ``t_com``  -- time the PE's messages occupy its link (request +
  piggy-backed results out, reply in, result flushes for TreeS);
* ``t_wait`` -- time between finishing a transmission and receiving the
  next assignment that is *not* link time: master queueing + service,
  plus terminal idling before the run ends;
* ``t_comp`` -- time spent executing loop iterations (wall time on the
  PE, i.e. inflated by external load in nondedicated mode).

``T_p`` is the virtual time at which the last result lands on the
master.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

__all__ = [
    "WorkerMetrics", "ChunkRecord", "LazyChunkList", "SimResult",
    "imbalance",
]


@dataclasses.dataclass
class WorkerMetrics(object):
    """Accumulated times and counters for one slave PE."""

    name: str
    t_com: float = 0.0
    t_wait: float = 0.0
    t_comp: float = 0.0
    chunks: int = 0
    iterations: int = 0
    finished_at: float = 0.0

    @property
    def busy(self) -> float:
        """Total accounted time (com + wait + comp)."""
        return self.t_com + self.t_wait + self.t_comp

    def row(self) -> str:
        """The paper's cell format: ``T_com/T_wait/T_comp``."""
        return f"{self.t_com:.1f}/{self.t_wait:.1f}/{self.t_comp:.1f}"


@dataclasses.dataclass(slots=True)
class ChunkRecord(object):
    """One scheduling decision, for traces and post-hoc analysis.

    ``slots=True``: simulations produce one record per chunk on the
    hot path, and slots construction is measurably cheaper at the
    million-run sweep scale (no per-record ``__dict__``).
    """

    worker: int
    start: int
    stop: int
    assigned_at: float
    completed_at: float
    stage: int = 0
    #: the ACP the worker attached to the request that won this chunk
    #: (None for non-distributed schemes and requeued assignments).
    acp: Optional[int] = None

    @property
    def size(self) -> int:
        return self.stop - self.start


class LazyChunkList(object):
    """Sequence of :class:`ChunkRecord` materialized on first access.

    The analytic fast path produces one record per chunk, and once its
    event loop is lean, record construction dominates the per-chunk
    cost.  At million-run sweep scale most results only read ``t_p``
    and the worker metrics, never the per-chunk trace -- so the fast
    path stores the raw field rows and this wrapper builds the real
    :class:`ChunkRecord` objects only when someone actually touches
    them.  Materialization is exact (rows hold the final field values,
    in final order) and happens at most once.
    """

    __slots__ = ("_rows", "_records")

    def __init__(self, rows: list[tuple]):
        self._rows = rows
        self._records: Optional[list[ChunkRecord]] = None

    def _materialize(self) -> list[ChunkRecord]:
        records = self._records
        if records is None:
            records = self._records = [
                ChunkRecord(*row) for row in self._rows
            ]
            self._rows = None
        return records

    def __len__(self) -> int:
        rows = self._rows
        return len(rows) if rows is not None else len(self._records)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyChunkList):
            other = other._materialize()
        return self._materialize() == other

    def __repr__(self) -> str:
        return repr(self._materialize())

    def __reduce__(self):
        # Pickles (e.g. crossing a process pool) as a plain list of
        # records -- consumers only rely on the sequence protocol.
        return (list, (self._materialize(),))


@dataclasses.dataclass
class SimResult(object):
    """Everything a simulated run produced."""

    scheme: str
    workers: list[WorkerMetrics]
    t_p: float
    chunks: list[ChunkRecord]
    results: Optional[np.ndarray] = None
    rederivations: int = 0
    events: int = 0
    #: unified observability trace (list of :class:`repro.obs.ObsEvent`)
    #: when the run was asked to collect one; ``events`` above predates
    #: the trace layer and counts *simulator queue* events, not these.
    obs_events: Optional[list] = None

    @property
    def total_iterations(self) -> int:
        return sum(w.iterations for w in self.workers)

    @property
    def total_chunks(self) -> int:
        return sum(w.chunks for w in self.workers)

    def comp_times(self) -> list[float]:
        return [w.t_comp for w in self.workers]

    def comp_imbalance(self) -> float:
        """Imbalance of computation time across PEs (see :func:`imbalance`)."""
        return imbalance(self.comp_times())

    def summary(self) -> str:
        lines = [f"{self.scheme}: T_p = {self.t_p:.2f}s, "
                 f"{self.total_chunks} chunks, "
                 f"imbalance = {self.comp_imbalance():.3f}"]
        for i, w in enumerate(self.workers, start=1):
            lines.append(f"  PE{i} ({w.name}): {w.row()}  "
                         f"[{w.chunks} chunks, {w.iterations} iters]")
        return "\n".join(lines)

    def to_dict(self, include_results: bool = False) -> dict:
        """JSON-safe dict; exact round trip via :meth:`from_dict`.

        Floats survive JSON exactly (``repr`` round-trips doubles in
        Python 3), so a persisted result is bit-identical after
        reload.  ``obs_events`` is intentionally excluded -- traces
        are bulky and have their own sinks (:mod:`repro.obs`);
        ``results`` arrays ride along only on request.
        """
        d = {
            "scheme": self.scheme,
            "t_p": self.t_p,
            "rederivations": self.rederivations,
            "events": self.events,
            "workers": [dataclasses.asdict(w) for w in self.workers],
            "chunks": [dataclasses.asdict(c) for c in self.chunks],
        }
        if include_results and self.results is not None:
            d["results"] = self.results.tolist()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SimResult":
        """Rebuild a result persisted with :meth:`to_dict`."""
        results = d.get("results")
        return cls(
            scheme=d["scheme"],
            workers=[WorkerMetrics(**w) for w in d["workers"]],
            t_p=d["t_p"],
            chunks=[ChunkRecord(**c) for c in d["chunks"]],
            results=(
                None if results is None
                else np.asarray(results, dtype=float)
            ),
            rederivations=d.get("rederivations", 0),
            events=d.get("events", 0),
        )


def imbalance(values: list[float]) -> float:
    """Relative imbalance: ``(max - min) / mean`` (0 = perfectly even).

    Used to check the paper's qualitative claims ("the execution is
    well-balanced, in terms of the computation times" for distributed
    schemes; "not well-balanced" for simple ones on the heterogeneous
    cluster).
    """
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0 or not math.isfinite(mean):
        return 0.0
    return (max(values) - min(values)) / mean
