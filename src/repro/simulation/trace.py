"""Trace export and timeline rendering for simulated runs.

A :class:`~repro.simulation.metrics.SimResult` carries the full chunk
trace (who computed which interval, when).  This module turns that into

* CSV / JSON lines for offline analysis (:func:`chunks_to_csv`,
  :func:`chunks_to_json`);
* an ASCII **Gantt chart** of per-PE busy periods
  (:func:`gantt_chart`), the quickest way to *see* the load-balance
  story of Tables 2 and 3: simple schemes show ragged right edges
  (stragglers) while distributed schemes end almost flush.
"""

from __future__ import annotations

import io
import json
from typing import Optional

from .metrics import SimResult

__all__ = ["chunks_to_csv", "chunks_to_json", "gantt_chart"]


def chunks_to_csv(result: SimResult) -> str:
    """The chunk trace as CSV text (header + one row per chunk)."""
    out = io.StringIO()
    out.write("worker,start,stop,size,stage,assigned_at,completed_at\n")
    for c in result.chunks:
        out.write(
            f"{c.worker},{c.start},{c.stop},{c.size},{c.stage},"
            f"{c.assigned_at:.6f},{c.completed_at:.6f}\n"
        )
    return out.getvalue()


def chunks_to_json(result: SimResult) -> str:
    """The run (metadata + chunk trace) as a JSON document."""
    doc = {
        "scheme": result.scheme,
        "t_p": result.t_p,
        "rederivations": result.rederivations,
        "workers": [
            {
                "name": w.name,
                "t_com": w.t_com,
                "t_wait": w.t_wait,
                "t_comp": w.t_comp,
                "chunks": w.chunks,
                "iterations": w.iterations,
            }
            for w in result.workers
        ],
        "chunks": [
            {
                "worker": c.worker,
                "start": c.start,
                "stop": c.stop,
                "stage": c.stage,
                "assigned_at": c.assigned_at,
                "completed_at": c.completed_at,
            }
            for c in result.chunks
        ],
    }
    return json.dumps(doc, indent=2)


def gantt_chart(
    result: SimResult,
    width: int = 72,
    until: Optional[float] = None,
) -> str:
    """ASCII Gantt chart: one row per PE, '#' while computing a chunk.

    Distinct consecutive chunks alternate '#'/'=' so chunk boundaries
    stay visible; '.' marks idle/communicating time.  The x-axis spans
    ``[0, until]`` (default ``T_p``).
    """
    horizon = float(until if until is not None else result.t_p)
    if horizon <= 0:
        return "(empty run)"
    rows = []
    for wid, metrics in enumerate(result.workers):
        cells = ["."] * width
        glyphs = "#="
        count = 0
        for c in result.chunks:
            if c.worker != wid:
                continue
            lo = int(c.assigned_at / horizon * width)
            hi = int(c.completed_at / horizon * width)
            lo = max(0, min(lo, width - 1))
            hi = max(lo + 1, min(hi, width))
            for i in range(lo, hi):
                cells[i] = glyphs[count % 2]
            count += 1
        rows.append(f"{metrics.name.rjust(8)} |" + "".join(cells))
    header = (
        f"{result.scheme}: T_p = {result.t_p:.1f}s  "
        f"('#'/'=' computing, '.' idle/comm)"
    )
    axis = " " * 9 + "+" + "-" * width
    scale = " " * 10 + "0" + " " * (width - 8) + f"{horizon:.0f}s"
    return "\n".join([header, *rows, axis, scale])
