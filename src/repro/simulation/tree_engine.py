"""Discrete-event execution of Tree Scheduling (TreeS).

TreeS (Kim & Purtilo 1996; paper Sec. 5) is decentralized: there is no
per-chunk master request.  Each slave starts with a contiguous block
(even split in the *simple* experiments, virtual-power-proportional in
the *distributed* ones); a slave that runs dry steals **half of a
predefined partner's remaining iterations**, sweeping its partner list
in the fixed order of :func:`repro.core.tree.partner_order`.

Results "still have to be collected on a single central processor"; the
paper found that sending everything at the end made slaves idle in a
contention storm, so its implementation of record flushes "from time to
time, at predefined time intervals" -- reproduced here as a blocking
flush of accumulated results every ``flush_interval`` of computation.

Termination: work only shrinks, so a slave whose full partner sweep
finds nothing stealable (every partner holds < ``min_steal``) can
finish -- at most ``p - 1`` iterations are outstanding and their owners
will complete them.  ``T_p`` is the arrival of the last result flush at
the master.

Mechanics: a slave computes ``grain`` iterations per event, so a victim
can be stolen from between events (grain 1 = per-iteration fidelity);
steal round-trips cost request/reply transfers on both links and are
accounted as wait time for the thief.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..core.tree import TreePartition, partner_order
from ..obs import ObsEvent
from ..obs import resolve as _resolve_collector
from ..workloads import Workload
from .cluster import ClusterSpec, NodeSpec
from .events import EventQueue, SimulationError
from .loadgen import integrate_compute
from .metrics import ChunkRecord, SimResult, WorkerMetrics

__all__ = ["simulate_tree", "TreeSimulation"]

#: Event-source tag for the unified observability stream.
_SRC = "sim.tree"


@dataclasses.dataclass
class _TreeWorker(object):
    index: int
    node: NodeSpec
    metrics: WorkerMetrics
    ranges: list[list[int]]  # list of mutable [start, stop) ranges
    partners: list[int]
    pending_items: int = 0  # computed results not yet flushed
    next_flush: float = 0.0
    sweep_pos: int = 0
    done: bool = False
    dead: bool = False
    current_block: Optional[tuple[int, int]] = None
    #: computed blocks whose results have not left this PE yet; lost
    #: (and rolled back) if the PE dies.
    unflushed: list = dataclasses.field(default_factory=list)
    #: blocks inside the flush message currently on the wire; lost with
    #: the sender under fail-stop.
    inflight: list = dataclasses.field(default_factory=list)
    #: incarnation counter; see the master-slave engine.
    epoch: int = 0

    def remaining(self) -> int:
        return sum(r[1] - r[0] for r in self.ranges)

    def pop_block(self, grain: int) -> Optional[tuple[int, int]]:
        """Take up to ``grain`` iterations from the front of the queue."""
        while self.ranges and self.ranges[0][0] >= self.ranges[0][1]:
            self.ranges.pop(0)
        if not self.ranges:
            return None
        r = self.ranges[0]
        take = min(grain, r[1] - r[0])
        block = (r[0], r[0] + take)
        r[0] += take
        if r[0] >= r[1]:
            self.ranges.pop(0)
        return block

    def steal_half(self, min_steal: int) -> Optional[tuple[int, int]]:
        """Give away the back half of the remaining work, if enough."""
        total = self.remaining()
        if total < min_steal:
            return None
        take = total // 2
        stolen_lo: Optional[int] = None
        stolen_hi: Optional[int] = None
        # Peel ranges from the tail.  TreeS transfers a single interval
        # when possible; across multiple ranges we return the last
        # contiguous piece and leave the rest for the next steal.
        last = self.ranges[-1]
        size = last[1] - last[0]
        if size <= take:
            stolen_lo, stolen_hi = last[0], last[1]
            self.ranges.pop()
        else:
            stolen_lo, stolen_hi = last[1] - take, last[1]
            last[1] -= take
        return (stolen_lo, stolen_hi)

    def strip_range(self) -> Optional[tuple[int, int]]:
        """Take one whole remaining range, no ``min_steal`` threshold.

        Dead-PE recovery: survivors reclaim a dead partner's queue in
        full, however small, or its residue would be lost forever.
        """
        while self.ranges and self.ranges[-1][0] >= self.ranges[-1][1]:
            self.ranges.pop()
        if not self.ranges:
            return None
        lo, hi = self.ranges.pop()
        return (lo, hi)


class TreeSimulation(object):
    """One simulated TreeS run; construct and call :meth:`run` once."""

    def __init__(
        self,
        workload: Workload,
        cluster: ClusterSpec,
        weighted: bool = False,
        flush_interval: float = 2.0,
        grain: int = 1,
        min_steal: int = 2,
        collect_results: bool = False,
        chaos=None,
        collector=None,
    ) -> None:
        self.obs = _resolve_collector(collector)
        # Cached truthiness: the hot loops test this plain bool
        # (~5x cheaper than NullCollector.__bool__ per gate);
        # the collector never changes after construction.
        self.observing = bool(self.obs)
        if flush_interval <= 0:
            raise SimulationError("flush_interval must be > 0")
        if grain < 1:
            raise SimulationError(f"grain must be >= 1, got {grain}")
        if min_steal < 2:
            raise SimulationError(f"min_steal must be >= 2, got {min_steal}")
        self.chaos = chaos
        if chaos is not None:
            if chaos.max_worker >= cluster.size:
                raise SimulationError(
                    f"fault plan targets worker {chaos.max_worker} but "
                    f"cluster has {cluster.size} nodes"
                )
            from .engine import _overlay_load_spikes

            cluster = _overlay_load_spikes(cluster, chaos)
        self.workload = workload
        self.cluster = cluster
        self.flush_interval = float(flush_interval)
        self.grain = int(grain)
        self.min_steal = int(min_steal)
        self.collect_results = collect_results
        self.queue = EventQueue()
        partition = (
            TreePartition.weighted(
                workload.size, cluster.virtual_powers()
            )
            if weighted
            else TreePartition.even(workload.size, cluster.size)
        )
        blocks = partition.blocks()
        self.workers = [
            _TreeWorker(
                index=i,
                node=node,
                metrics=WorkerMetrics(name=node.name),
                ranges=[[lo, hi]] if hi > lo else [],
                partners=partner_order(i, cluster.size),
            )
            for i, (node, (lo, hi)) in enumerate(zip(cluster.nodes, blocks))
        ]
        self.weighted = weighted
        self._master_link_free = 0.0
        self._last_result_arrival = 0.0
        self._chunks: list[ChunkRecord] = []
        self._results: list[tuple[int, np.ndarray]] = []
        self._steals = 0
        self._death_schedule: dict[int, list[float]] = {}
        self._future_restarts = 0
        self._message_faults: dict[int, list[tuple[float, str, float]]] = {}

    # -- fault plumbing ----------------------------------------------------------

    def _alive_action(self, w: _TreeWorker, fn, *args):
        """Event action that no-ops if ``w`` died (or was reborn) since."""
        epoch = w.epoch

        def action(_event) -> None:
            if w.dead or w.epoch != epoch:
                return
            fn(w, *args)

        return action

    def _pop_message_fault(
        self, w: _TreeWorker, t: float
    ) -> Optional[tuple[float, str, float]]:
        faults = self._message_faults.get(w.index)
        if not faults or faults[0][0] > t:
            return None
        return faults.pop(0)

    def _schedule_faults(self) -> None:
        if self.chaos is None:
            return
        deaths: dict[int, list[float]] = {}
        for ev in self.chaos.events:
            kind = ev.kind
            if kind == "death":
                deaths.setdefault(ev.worker, []).append(float(ev.at))
            elif kind == "restart":
                self._future_restarts += 1
                self.queue.schedule_at(
                    float(ev.at),
                    lambda _e, s=self.workers[ev.worker]:
                        self._worker_restart(s),
                    kind="chaos-restart",
                )
            elif kind == "stall":
                self.queue.schedule_at(
                    float(ev.at),
                    lambda _e, d=float(ev.duration): self._master_stall(d),
                    kind="chaos-stall",
                )
            elif kind in ("delay", "loss"):
                self._message_faults.setdefault(ev.worker, [])
        for idx in self._message_faults:
            self._message_faults[idx] = self.chaos.message_faults(idx)
        for idx, times in deaths.items():
            times.sort()
            self._death_schedule[idx] = times
            for at in times:
                self.queue.schedule_at(
                    at,
                    lambda _e, s=self.workers[idx]: self._worker_die(s),
                    kind="death",
                )

    def _master_stall(self, duration: float) -> None:
        """The master's NIC accepts nothing for ``duration`` from now."""
        if self.observing:
            self.obs.emit(ObsEvent(
                "fault", _SRC, self.queue.now, value=float(duration),
                detail="stall",
            ))
        self._master_link_free = max(
            self._master_link_free, self.queue.now + float(duration)
        )

    def _worker_die(self, w: _TreeWorker) -> None:
        """Fail-stop: computed-but-undelivered results are lost and the
        PE's remaining queue becomes reclaimable by its partners."""
        t = self.queue.now
        schedule = self._death_schedule.get(w.index)
        if schedule:
            schedule.pop(0)
        if w.dead or w.done:
            return
        w.dead = True
        w.epoch += 1
        w.metrics.finished_at = t
        if self.observing:
            self.obs.emit(ObsEvent(
                "fault", _SRC, t, w.index, detail="death",
            ))
        lost = list(w.unflushed) + list(w.inflight)
        w.unflushed.clear()
        w.inflight.clear()
        w.pending_items = 0
        for start, stop in lost:
            for i in range(len(self._chunks) - 1, -1, -1):
                rec = self._chunks[i]
                if rec.worker == w.index and rec.start == start \
                        and rec.stop == stop:
                    if rec.completed_at > t:
                        # Died mid-block: un-book the never-executed
                        # tail of the pre-integrated compute time.
                        w.metrics.t_comp -= rec.completed_at - t
                    w.metrics.chunks -= 1
                    w.metrics.iterations -= stop - start
                    del self._chunks[i]
                    break
            if self.collect_results:
                for i in range(len(self._results) - 1, -1, -1):
                    if self._results[i][0] == start:
                        del self._results[i]
                        break
            # The lost interval rejoins the dead PE's queue, where the
            # partner sweep (strip_range) recovers it -- TreeS has no
            # central requeue, so recovery is decentralized too.
            w.ranges.append([start, stop])
        w.ranges.sort(key=lambda r: r[0])
        merged: list[list[int]] = []
        for r in w.ranges:
            if merged and merged[-1][1] == r[0]:
                merged[-1][1] = r[1]
            else:
                merged.append(r)
        w.ranges = merged
        alive = [s for s in self.workers if not s.dead and not s.done]
        outstanding = sum(s.remaining() for s in self.workers)
        if not alive and self._future_restarts == 0 and outstanding > 0:
            raise SimulationError(
                "every TreeS PE died or finished with iterations "
                "outstanding; the loop cannot complete"
            )

    def _worker_restart(self, w: _TreeWorker) -> None:
        """A chaos restart: the PE rejoins and resumes its own queue."""
        self._future_restarts -= 1
        if not w.dead:
            return
        t = self.queue.now
        w.dead = False
        w.done = False
        w.pending_items = 0
        w.unflushed.clear()
        w.inflight.clear()
        if self.observing:
            self.obs.emit(ObsEvent("restart", _SRC, t, w.index))
        # Rejoin handshake, then resume whatever is left of the queue
        # (or sweep partners if it was emptied while dead).
        delay = w.node.transfer_time(self.cluster.reply_bytes)
        w.metrics.t_com += delay
        w.next_flush = self._next_epoch(t + delay)
        self.queue.schedule(
            delay, self._alive_action(w, self._compute_next),
            kind="chaos-rejoin",
        )

    # -- phases ------------------------------------------------------------------

    def _next_epoch(self, t: float) -> float:
        """First flush epoch strictly after ``t`` (fixed global grid).

        The paper's TreeS sends results "at predefined time intervals";
        a *global* epoch grid means all slaves flush in the same window
        and contend for the master -- the residual contention the paper
        observed ("cannot be totally eliminated").
        """
        import math as _math

        return (_math.floor(t / self.flush_interval) + 1) \
            * self.flush_interval

    def _start_worker(self, w: _TreeWorker) -> None:
        # Initial allocation message from the master.
        delay = w.node.transfer_time(self.cluster.reply_bytes)
        w.metrics.t_com += delay
        w.next_flush = self._next_epoch(delay)
        self.queue.schedule(
            delay, self._alive_action(w, self._compute_next), kind="start"
        )

    def _compute_next(self, w: _TreeWorker) -> None:
        t = self.queue.now
        if w.pending_items and t >= w.next_flush:
            self._flush(w, final=False)
            return
        block = w.pop_block(self.grain)
        if block is None:
            self._begin_sweep(w)
            return
        start, stop = block
        cost = self.workload.chunk_cost(start, stop)
        finish = integrate_compute(t, cost, w.node.speed, w.node.load)
        if self.observing:
            self.obs.emit(ObsEvent(
                "compute", _SRC, t, w.index, start=start, stop=stop,
                value=finish - t,
            ))
        w.metrics.t_comp += finish - t
        w.metrics.iterations += stop - start
        w.metrics.chunks += 1
        w.pending_items += stop - start
        w.unflushed.append((start, stop))
        self._chunks.append(
            ChunkRecord(
                worker=w.index,
                start=start,
                stop=stop,
                assigned_at=t,
                completed_at=finish,
            )
        )
        if self.collect_results:
            self._results.append((start, self.workload.execute(start, stop)))
        self.queue.schedule_at(
            finish, self._alive_action(w, self._compute_next),
            kind="compute",
        )

    def _flush(self, w: _TreeWorker, final: bool) -> None:
        t = self.queue.now
        fault = self._pop_message_fault(w, t)
        if fault is not None:
            # Chaos delay/loss: the flush leaves (or retransmits) late.
            _at, kind, extra = fault
            w.metrics.t_wait += extra
            if self.observing:
                self.obs.emit(ObsEvent(
                    "fault", _SRC, t, w.index, value=extra, detail=kind,
                ))
            self.queue.schedule_at(
                t + extra,
                self._alive_action(w, self._flush, final),
                kind=f"chaos-{kind}",
            )
            return
        nbytes = (
            self.cluster.request_bytes
            + w.pending_items * self.cluster.result_bytes_per_item
        )
        items = w.pending_items
        w.pending_items = 0
        w.inflight = list(w.unflushed)
        w.unflushed.clear()
        tx = w.node.transfer_time(nbytes)
        w.metrics.t_com += tx
        # The master's single inbound NIC serializes concurrent flushes;
        # the sender blocks (flow control) until its data has landed --
        # the paper's "contend for master access in order to send their
        # results ... they will have to idle" effect.
        port_arrival = t + tx
        recv_start = max(port_arrival, self._master_link_free)
        arrival = recv_start + nbytes / self.cluster.master_bandwidth
        self._master_link_free = arrival
        w.metrics.t_wait += arrival - port_arrival
        w.next_flush = self._next_epoch(arrival)

        epoch = w.epoch

        def arrive(ev, items=items, s=w, final=final):
            if s.dead or s.epoch != epoch:
                # Fail-stop: the flush died on the wire with its sender
                # (the death handler rolled the blocks back).
                return
            if self.observing:
                for blk_start, blk_stop in s.inflight:
                    self.obs.emit(ObsEvent(
                        "result", _SRC, self.queue.now, s.index,
                        start=blk_start, stop=blk_stop,
                    ))
            s.inflight.clear()
            if items:
                self._last_result_arrival = max(
                    self._last_result_arrival, self.queue.now
                )
            if final:
                s.done = True
                s.metrics.finished_at = self.queue.now
                if self.observing:
                    self.obs.emit(ObsEvent(
                        "terminate", _SRC, self.queue.now, s.index,
                    ))

        self.queue.schedule_at(arrival, arrive, kind="flush-arrival")
        if not final:
            self.queue.schedule_at(
                arrival, self._alive_action(w, self._compute_next),
                kind="resume",
            )

    def _begin_sweep(self, w: _TreeWorker) -> None:
        w.sweep_pos = 0
        self._try_steal(w)

    def _try_steal(self, w: _TreeWorker) -> None:
        if w.sweep_pos >= len(w.partners):
            # Full sweep dry: nothing stealable anywhere; send the last
            # results at the next flush epoch (idling until then, as the
            # paper's interval-based collection implies).
            t = self.queue.now
            if w.pending_items and t < w.next_flush:
                w.metrics.t_wait += w.next_flush - t
                self.queue.schedule_at(
                    w.next_flush,
                    self._alive_action(w, self._flush, True),
                    kind="final-flush",
                )
            else:
                self._flush(w, final=True)
            return
        victim = self.workers[w.partners[w.sweep_pos]]
        w.sweep_pos += 1
        # Steal round trip: request over the thief's link, reply over
        # the victim's.  The thief idles for the duration.
        rtt = (
            w.node.transfer_time(self.cluster.request_bytes)
            + victim.node.transfer_time(self.cluster.reply_bytes)
        )
        w.metrics.t_wait += rtt
        thief_epoch = w.epoch

        def arrive(ev, thief=w, victim=victim):
            if thief.dead or thief.epoch != thief_epoch:
                return
            # A dead victim cannot refuse: its whole queue (including
            # work rolled back by the death handler) is reclaimable a
            # range at a time, bypassing the min_steal threshold.
            stolen = (
                victim.strip_range() if victim.dead
                else victim.steal_half(self.min_steal)
            )
            if stolen is None:
                self._try_steal(thief)
            else:
                self._steals += 1
                if self.observing:
                    self.obs.emit(ObsEvent(
                        "steal", _SRC, self.queue.now, thief.index,
                        start=stolen[0], stop=stolen[1],
                        detail=f"victim={victim.index}",
                    ))
                thief.ranges.append([stolen[0], stolen[1]])
                self._compute_next(thief)

        self.queue.schedule(rtt, arrive, kind="steal")

    # -- run ----------------------------------------------------------------------

    def run(self) -> SimResult:
        self._schedule_faults()
        for w in self.workers:
            self._start_worker(w)
        self.queue.run()
        t_p = self._last_result_arrival
        for w in self.workers:
            if w.dead:
                continue
            tracked = w.metrics.busy
            if tracked < t_p:
                w.metrics.t_wait += t_p - tracked
        computed = sum(c.size for c in self._chunks)
        if computed != self.workload.size:
            if self.chaos is not None:
                raise SimulationError(
                    f"TreeS could not recover from the fault plan: "
                    f"computed {computed} of {self.workload.size} "
                    f"(every surviving PE finished before the lost work "
                    f"became reclaimable)"
                )
            raise SimulationError(
                f"TreeS leak: computed {computed} of {self.workload.size}"
            )
        result = SimResult(
            scheme="TreeS" + ("-w" if self.weighted else ""),
            workers=[w.metrics for w in self.workers],
            t_p=t_p,
            chunks=self._chunks,
            events=self.queue.processed,
        )
        result.rederivations = self._steals  # repurposed: steal count
        if self.collect_results:
            self._results.sort(key=lambda pair: pair[0])
            result.results = (
                np.concatenate([r for _, r in self._results])
                if self._results
                else np.zeros(0)
            )
        return result


def simulate_tree(
    workload: Workload,
    cluster: ClusterSpec,
    weighted: bool = False,
    flush_interval: float = 2.0,
    grain: int = 1,
    min_steal: int = 2,
    collect_results: bool = False,
    chaos=None,
    collector=None,
) -> SimResult:
    """Simulate one TreeS run (see :class:`TreeSimulation`).

    ``chaos`` takes a :class:`repro.chaos.FaultPlan`; recovery is
    decentralized (partners reclaim a dead PE's queue), see
    ``docs/fault_model.md``.
    """
    return TreeSimulation(
        workload,
        cluster,
        weighted=weighted,
        flush_interval=flush_interval,
        grain=grain,
        min_steal=min_steal,
        collect_results=collect_results,
        chaos=chaos,
        collector=collector,
    ).run()
