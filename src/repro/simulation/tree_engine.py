"""Discrete-event execution of Tree Scheduling (TreeS).

TreeS (Kim & Purtilo 1996; paper Sec. 5) is decentralized: there is no
per-chunk master request.  Each slave starts with a contiguous block
(even split in the *simple* experiments, virtual-power-proportional in
the *distributed* ones); a slave that runs dry steals **half of a
predefined partner's remaining iterations**, sweeping its partner list
in the fixed order of :func:`repro.core.tree.partner_order`.

Results "still have to be collected on a single central processor"; the
paper found that sending everything at the end made slaves idle in a
contention storm, so its implementation of record flushes "from time to
time, at predefined time intervals" -- reproduced here as a blocking
flush of accumulated results every ``flush_interval`` of computation.

Termination: work only shrinks, so a slave whose full partner sweep
finds nothing stealable (every partner holds < ``min_steal``) can
finish -- at most ``p - 1`` iterations are outstanding and their owners
will complete them.  ``T_p`` is the arrival of the last result flush at
the master.

Mechanics: a slave computes ``grain`` iterations per event, so a victim
can be stolen from between events (grain 1 = per-iteration fidelity);
steal round-trips cost request/reply transfers on both links and are
accounted as wait time for the thief.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..core.tree import TreePartition, partner_order
from ..workloads import Workload
from .cluster import ClusterSpec, NodeSpec
from .events import EventQueue, SimulationError
from .loadgen import integrate_compute
from .metrics import ChunkRecord, SimResult, WorkerMetrics

__all__ = ["simulate_tree", "TreeSimulation"]


@dataclasses.dataclass
class _TreeWorker(object):
    index: int
    node: NodeSpec
    metrics: WorkerMetrics
    ranges: list[list[int]]  # list of mutable [start, stop) ranges
    partners: list[int]
    pending_items: int = 0  # computed results not yet flushed
    next_flush: float = 0.0
    sweep_pos: int = 0
    done: bool = False
    current_block: Optional[tuple[int, int]] = None

    def remaining(self) -> int:
        return sum(r[1] - r[0] for r in self.ranges)

    def pop_block(self, grain: int) -> Optional[tuple[int, int]]:
        """Take up to ``grain`` iterations from the front of the queue."""
        while self.ranges and self.ranges[0][0] >= self.ranges[0][1]:
            self.ranges.pop(0)
        if not self.ranges:
            return None
        r = self.ranges[0]
        take = min(grain, r[1] - r[0])
        block = (r[0], r[0] + take)
        r[0] += take
        if r[0] >= r[1]:
            self.ranges.pop(0)
        return block

    def steal_half(self, min_steal: int) -> Optional[tuple[int, int]]:
        """Give away the back half of the remaining work, if enough."""
        total = self.remaining()
        if total < min_steal:
            return None
        take = total // 2
        stolen_lo: Optional[int] = None
        stolen_hi: Optional[int] = None
        # Peel ranges from the tail.  TreeS transfers a single interval
        # when possible; across multiple ranges we return the last
        # contiguous piece and leave the rest for the next steal.
        last = self.ranges[-1]
        size = last[1] - last[0]
        if size <= take:
            stolen_lo, stolen_hi = last[0], last[1]
            self.ranges.pop()
        else:
            stolen_lo, stolen_hi = last[1] - take, last[1]
            last[1] -= take
        return (stolen_lo, stolen_hi)


class TreeSimulation(object):
    """One simulated TreeS run; construct and call :meth:`run` once."""

    def __init__(
        self,
        workload: Workload,
        cluster: ClusterSpec,
        weighted: bool = False,
        flush_interval: float = 2.0,
        grain: int = 1,
        min_steal: int = 2,
        collect_results: bool = False,
    ) -> None:
        if flush_interval <= 0:
            raise SimulationError("flush_interval must be > 0")
        if grain < 1:
            raise SimulationError(f"grain must be >= 1, got {grain}")
        if min_steal < 2:
            raise SimulationError(f"min_steal must be >= 2, got {min_steal}")
        self.workload = workload
        self.cluster = cluster
        self.flush_interval = float(flush_interval)
        self.grain = int(grain)
        self.min_steal = int(min_steal)
        self.collect_results = collect_results
        self.queue = EventQueue()
        partition = (
            TreePartition.weighted(
                workload.size, cluster.virtual_powers()
            )
            if weighted
            else TreePartition.even(workload.size, cluster.size)
        )
        blocks = partition.blocks()
        self.workers = [
            _TreeWorker(
                index=i,
                node=node,
                metrics=WorkerMetrics(name=node.name),
                ranges=[[lo, hi]] if hi > lo else [],
                partners=partner_order(i, cluster.size),
            )
            for i, (node, (lo, hi)) in enumerate(zip(cluster.nodes, blocks))
        ]
        self.weighted = weighted
        self._master_link_free = 0.0
        self._last_result_arrival = 0.0
        self._chunks: list[ChunkRecord] = []
        self._results: list[tuple[int, np.ndarray]] = []
        self._steals = 0

    # -- phases ------------------------------------------------------------------

    def _next_epoch(self, t: float) -> float:
        """First flush epoch strictly after ``t`` (fixed global grid).

        The paper's TreeS sends results "at predefined time intervals";
        a *global* epoch grid means all slaves flush in the same window
        and contend for the master -- the residual contention the paper
        observed ("cannot be totally eliminated").
        """
        import math as _math

        return (_math.floor(t / self.flush_interval) + 1) \
            * self.flush_interval

    def _start_worker(self, w: _TreeWorker) -> None:
        # Initial allocation message from the master.
        delay = w.node.transfer_time(self.cluster.reply_bytes)
        w.metrics.t_com += delay
        w.next_flush = self._next_epoch(delay)
        self.queue.schedule(
            delay, lambda ev, s=w: self._compute_next(s), kind="start"
        )

    def _compute_next(self, w: _TreeWorker) -> None:
        t = self.queue.now
        if w.pending_items and t >= w.next_flush:
            self._flush(w, final=False)
            return
        block = w.pop_block(self.grain)
        if block is None:
            self._begin_sweep(w)
            return
        start, stop = block
        cost = self.workload.chunk_cost(start, stop)
        finish = integrate_compute(t, cost, w.node.speed, w.node.load)
        w.metrics.t_comp += finish - t
        w.metrics.iterations += stop - start
        w.metrics.chunks += 1
        w.pending_items += stop - start
        self._chunks.append(
            ChunkRecord(
                worker=w.index,
                start=start,
                stop=stop,
                assigned_at=t,
                completed_at=finish,
            )
        )
        if self.collect_results:
            self._results.append((start, self.workload.execute(start, stop)))
        self.queue.schedule_at(
            finish, lambda ev, s=w: self._compute_next(s), kind="compute"
        )

    def _flush(self, w: _TreeWorker, final: bool) -> None:
        t = self.queue.now
        nbytes = (
            self.cluster.request_bytes
            + w.pending_items * self.cluster.result_bytes_per_item
        )
        items = w.pending_items
        w.pending_items = 0
        tx = w.node.transfer_time(nbytes)
        w.metrics.t_com += tx
        # The master's single inbound NIC serializes concurrent flushes;
        # the sender blocks (flow control) until its data has landed --
        # the paper's "contend for master access in order to send their
        # results ... they will have to idle" effect.
        port_arrival = t + tx
        recv_start = max(port_arrival, self._master_link_free)
        arrival = recv_start + nbytes / self.cluster.master_bandwidth
        self._master_link_free = arrival
        w.metrics.t_wait += arrival - port_arrival
        w.next_flush = self._next_epoch(arrival)

        def arrive(ev, items=items, s=w, final=final):
            if items:
                self._last_result_arrival = max(
                    self._last_result_arrival, self.queue.now
                )
            if final:
                s.done = True
                s.metrics.finished_at = self.queue.now

        self.queue.schedule_at(arrival, arrive, kind="flush-arrival")
        if not final:
            self.queue.schedule_at(
                arrival, lambda ev, s=w: self._compute_next(s),
                kind="resume",
            )

    def _begin_sweep(self, w: _TreeWorker) -> None:
        w.sweep_pos = 0
        self._try_steal(w)

    def _try_steal(self, w: _TreeWorker) -> None:
        if w.sweep_pos >= len(w.partners):
            # Full sweep dry: nothing stealable anywhere; send the last
            # results at the next flush epoch (idling until then, as the
            # paper's interval-based collection implies).
            t = self.queue.now
            if w.pending_items and t < w.next_flush:
                w.metrics.t_wait += w.next_flush - t
                self.queue.schedule_at(
                    w.next_flush,
                    lambda ev, s=w: self._flush(s, final=True),
                    kind="final-flush",
                )
            else:
                self._flush(w, final=True)
            return
        victim = self.workers[w.partners[w.sweep_pos]]
        w.sweep_pos += 1
        # Steal round trip: request over the thief's link, reply over
        # the victim's.  The thief idles for the duration.
        rtt = (
            w.node.transfer_time(self.cluster.request_bytes)
            + victim.node.transfer_time(self.cluster.reply_bytes)
        )
        w.metrics.t_wait += rtt

        def arrive(ev, thief=w, victim=victim):
            stolen = victim.steal_half(self.min_steal)
            if stolen is None:
                self._try_steal(thief)
            else:
                self._steals += 1
                thief.ranges.append([stolen[0], stolen[1]])
                self._compute_next(thief)

        self.queue.schedule(rtt, arrive, kind="steal")

    # -- run ----------------------------------------------------------------------

    def run(self) -> SimResult:
        for w in self.workers:
            self._start_worker(w)
        self.queue.run()
        t_p = self._last_result_arrival
        for w in self.workers:
            tracked = w.metrics.busy
            if tracked < t_p:
                w.metrics.t_wait += t_p - tracked
        computed = sum(c.size for c in self._chunks)
        if computed != self.workload.size:
            raise SimulationError(
                f"TreeS leak: computed {computed} of {self.workload.size}"
            )
        result = SimResult(
            scheme="TreeS" + ("-w" if self.weighted else ""),
            workers=[w.metrics for w in self.workers],
            t_p=t_p,
            chunks=self._chunks,
            events=self.queue.processed,
        )
        result.rederivations = self._steals  # repurposed: steal count
        if self.collect_results:
            self._results.sort(key=lambda pair: pair[0])
            result.results = (
                np.concatenate([r for _, r in self._results])
                if self._results
                else np.zeros(0)
            )
        return result


def simulate_tree(
    workload: Workload,
    cluster: ClusterSpec,
    weighted: bool = False,
    flush_interval: float = 2.0,
    grain: int = 1,
    min_steal: int = 2,
    collect_results: bool = False,
) -> SimResult:
    """Simulate one TreeS run (see :class:`TreeSimulation`)."""
    return TreeSimulation(
        workload,
        cluster,
        weighted=weighted,
        flush_interval=flush_interval,
        grain=grain,
        min_steal=min_steal,
        collect_results=collect_results,
    ).run()
