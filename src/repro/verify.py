"""Trace invariant auditor: proof-check a run's chunk trace.

Every substrate in this repo -- the master--slave simulator, the TreeS
simulator, and the real multiprocessing runtime -- produces a chunk
trace: which worker executed which half-open interval ``[start, stop)``
and (for simulations) when.  The auditor checks the invariants that any
*correct* self-scheduled run must satisfy, fault plan or not:

* **exactly-once coverage** -- the executed intervals tile ``[0, I)``
  with no gap and no overlap, even across death/requeue/recompute
  cycles (the chunk log keeps only the incarnation that delivered);
* **sane chunks** -- every interval is non-empty and inside the loop;
* **monotone event times** -- ``0 <= assigned_at <= completed_at``,
  per-worker chunks do not overlap in time, and the reported parallel
  time ``T_p`` is not before the last completion;
* **metrics agreement** -- per-worker chunk/iteration counters match
  the trace (deaths must roll both back consistently);
* **ACP bounds** -- reported ACPs are positive integers, and at most
  ``scale * max(V_i)`` when the cluster is known;
* **policy conformance** -- for order-independent schemes, the trace's
  interval boundaries equal a pure :class:`~repro.core.Scheduler`
  replay's (requeued intervals are reassigned verbatim, so faults must
  not move a single cut point).

:func:`audit_sim` audits a :class:`~repro.simulation.SimResult`,
:func:`audit_run` a runtime :class:`~repro.runtime.RunResult` (or
:class:`~repro.runtime.MasterResult`), and :func:`audit_events` the
unified observability stream itself (see :mod:`repro.obs`) -- the same
coverage, sanity, and conformance core applied to ``result`` events, so
a trace captured from *any* substrate can be proof-checked without the
substrate's native result object.  All return an :class:`AuditReport`;
``report.raise_if_failed()`` turns violations into an
:class:`AuditError`.  The ``repro-experiments verify-chaos`` command
and the test-suite fixtures are thin wrappers over these.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Iterable, Optional, Sequence

import numpy as np

from .core import Scheduler, WorkerView, make
from .core import registry as _registry
from .core.kernel import CALCULATORS, evaluate_ladder, make_calculator
from .obs.events import ObsEvent, SchemaError, validate_event

__all__ = [
    "AuditError",
    "AuditReport",
    "audit_adaptive",
    "audit_chunks",
    "audit_events",
    "audit_service_log",
    "audit_sim",
    "audit_subscription",
    "audit_run",
    "replay_cut_points",
]

#: tolerance for floating-point time comparisons.
_EPS = 1e-9

#: Schemes whose chunk boundaries are a pure function of the remaining
#: count / step index -- independent of which worker asks, or how often.
#: Only these have a substrate-independent reference replay; the stage
#: ladders (FSS/FISS/TFSS) descend per-PE, WF weighs by requester, and
#: the distributed family consumes runtime ACP reports.
_ORDER_INVARIANT = frozenset({"S", "BC", "SS", "CSS", "GSS", "TSS"})

#: Event sources whose ``t`` values share one monotone clock for the
#: whole run (virtual simulation time, or the master's single
#: ``monotonic`` base).  Worker-process sources are excluded: each
#: incarnation stamps ``t`` from its own birth, so a chaos respawn
#: legitimately resets the clock.
_MONOTONE_SOURCES = frozenset(
    {"sim.master", "sim.tree", "sim.decentral", "runtime.master"}
)


class AuditError(AssertionError):
    """A trace violated a run invariant (see :class:`AuditReport`)."""


@dataclasses.dataclass
class AuditReport(object):
    """Outcome of one audit: which checks ran, what they found.

    ``checks`` lists every invariant that was actually evaluated (some,
    like policy conformance, are skipped when they do not apply);
    ``violations`` holds one human-readable line per broken invariant.
    """

    subject: str
    checks: list[str] = dataclasses.field(default_factory=list)
    violations: list[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> "AuditReport":
        if self.violations:
            lines = "\n  - ".join(self.violations)
            raise AuditError(
                f"{self.subject}: {len(self.violations)} invariant "
                f"violation(s):\n  - {lines}"
            )
        return self

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        lines = [f"{self.subject}: {state} "
                 f"({len(self.checks)} checks: {', '.join(self.checks)})"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def _check_coverage(
    spans: Sequence[tuple[int, int]], total: int, report: AuditReport
) -> None:
    """Exactly-once tiling of ``[0, total)`` by half-open intervals."""
    report.checks.append("coverage")
    report.checks.append("chunk-sanity")
    bad = [s for s in spans if s[1] <= s[0] or s[0] < 0 or s[1] > total]
    for start, stop in bad[:5]:
        report.violations.append(
            f"chunk [{start}, {stop}) is empty or outside [0, {total})"
        )
    if bad:
        return
    cursor = 0
    for start, stop in sorted(spans):
        if start > cursor:
            report.violations.append(
                f"gap: iterations [{cursor}, {start}) never executed"
            )
        elif start < cursor:
            report.violations.append(
                f"overlap: iteration {start} executed more than once "
                f"(chunk [{start}, {stop}))"
            )
        cursor = max(cursor, stop)
    if cursor < total:
        report.violations.append(
            f"gap: iterations [{cursor}, {total}) never executed"
        )


def _length_matches(n_values: int, total: int) -> bool:
    """True when ``n_values`` results can cover ``total`` iterations.

    Workloads may produce one value *or one fixed-width vector* per
    iteration (e.g. a Mandelbrot column), so any positive integer
    multiple of ``total`` is a legal flattened length.
    """
    if total == 0:
        return n_values == 0
    return n_values >= total and n_values % total == 0


def replay_cut_points(
    scheme: str | Scheduler,
    total: int,
    workers: int,
    order: Optional[Sequence[int]] = None,
    **scheme_kwargs,
) -> Optional[frozenset[int]]:
    """Interval boundaries a pure scheduler replay would produce.

    Serves homogeneous requests round-robin in ``order`` (default
    ``0..workers-1``) until the scheduler runs dry and returns the set
    of cut points ``{start_0, stop_0, start_1, ...}``.  Returns None
    for distributed schemes (their sizes depend on runtime ACP reports,
    so there is no substrate-independent reference sequence).

    Registry names with a pure :data:`repro.core.kernel.CALCULATORS`
    form short-circuit through one vectorized
    :func:`~repro.core.kernel.evaluate_ladder` call instead of the
    step-by-step replay -- the same boundary set (the kernel is proven
    against this replay by ``tests/core/test_kernel.py``), without the
    per-request scheduler walk.  Custom ``order`` still replays: the
    kernel has no notion of request interleaving.
    """
    if isinstance(scheme, str) and order is None:
        key, _inline = _registry.parse(scheme)
        if key in CALCULATORS:
            return evaluate_ladder(
                make_calculator(scheme, total, workers, **scheme_kwargs)
            ).cut_points()
    sched = (
        make(scheme, total, workers, **scheme_kwargs)
        if isinstance(scheme, str)
        # Scheduler instances are single-use: replay a private copy so
        # the caller's object (and a second replay) stay pristine.
        else copy.deepcopy(scheme)
    )
    if sched.distributed:
        return None
    order = list(order) if order is not None else list(range(workers))
    cuts: set[int] = set()
    served = 0
    dry = 0
    i = 0
    # total + workers is a hard upper bound on request count: every
    # served request covers >= 1 iteration, plus one dry reply each.
    for _ in range(2 * (total + workers) + 4):
        wid = order[i % len(order)]
        i += 1
        chunk = sched.next_chunk(WorkerView(worker_id=wid))
        if chunk is None:
            # Static schemes run one worker dry while others still
            # hold unclaimed blocks: only stop once everyone is dry.
            dry += 1
            if dry >= workers:
                break
            continue
        dry = 0
        cuts.add(chunk.start)
        cuts.add(chunk.stop)
        served += chunk.stop - chunk.start
        if served >= total:
            break
    return frozenset(cuts)


def _check_conformance(
    spans: Sequence[tuple[int, int]],
    scheme: str | Scheduler,
    total: int,
    workers: int,
    report: AuditReport,
    **scheme_kwargs,
) -> None:
    """Trace boundaries must equal a pure-policy replay's.

    Requeued intervals are reassigned *verbatim* on every substrate, so
    a fault plan may reorder chunks across workers but never move a cut
    point.  The check only applies to the ``_ORDER_INVARIANT`` schemes
    (size is a pure function of the remaining count / step index).
    Schemes whose sizes depend on which worker asks or how often (WF's
    weights, the per-PE stage ladders of FSS/FISS/TFSS, the ACP-driven
    distributed family) have no substrate-independent reference
    sequence and are skipped -- by whitelist, and double-checked by
    replaying with structurally different worker orders (reversed, and
    skewed so worker 0 requests far more often).
    """
    name = scheme if isinstance(scheme, str) else scheme.name
    if name.split("(")[0] not in _ORDER_INVARIANT:
        return
    forward = replay_cut_points(
        scheme, total, workers, **scheme_kwargs
    )
    if forward is None:  # distributed scheme: no reference replay
        return
    skewed = [
        x for w in range(1, workers) for x in (0, w)
    ] or [0]
    for order in (list(reversed(range(workers))), skewed):
        if replay_cut_points(
            scheme, total, workers, order=order, **scheme_kwargs
        ) != forward:  # order-dependent despite whitelist: bail out
            return
    report.checks.append("policy-conformance")
    traced = frozenset(
        pt for start, stop in spans for pt in (start, stop)
    )
    if traced != forward:
        extra = sorted(traced - forward)[:8]
        missing = sorted(forward - traced)[:8]
        report.violations.append(
            f"chunk boundaries diverge from pure "
            f"{scheme if isinstance(scheme, str) else scheme.name} "
            f"replay (unexpected cuts {extra}, missing cuts {missing})"
        )


def audit_sim(
    result,
    total: Optional[int] = None,
    scheme: Optional[str | Scheduler] = None,
    max_acp: Optional[int] = None,
    **scheme_kwargs,
) -> AuditReport:
    """Audit a :class:`~repro.simulation.SimResult` trace.

    ``total`` defaults to the iteration count implied by the trace
    itself (pass it explicitly to also catch whole-trace truncation).
    ``scheme`` (a registry name or fresh :class:`Scheduler`) enables
    the policy-conformance replay; ``max_acp`` bounds reported ACPs
    (e.g. ``acp_model.scale * max(virtual_powers)``).
    """
    report = AuditReport(subject=f"SimResult[{result.scheme}]")
    spans = [(rec.start, rec.stop) for rec in result.chunks]
    if total is None:
        total = max((stop for _start, stop in spans), default=0)
    _check_coverage(spans, total, report)

    report.checks.append("event-times")
    last_end: dict[int, float] = {}
    for rec in sorted(result.chunks, key=lambda r: (r.assigned_at, r.start)):
        if rec.assigned_at < -_EPS or rec.completed_at < rec.assigned_at - _EPS:
            report.violations.append(
                f"chunk [{rec.start}, {rec.stop}) has non-causal times "
                f"assigned={rec.assigned_at:.6f} "
                f"completed={rec.completed_at:.6f}"
            )
        prev = last_end.get(rec.worker)
        if prev is not None and rec.assigned_at < prev - _EPS:
            report.violations.append(
                f"worker {rec.worker} chunks overlap in time: "
                f"[{rec.start}, {rec.stop}) assigned at "
                f"{rec.assigned_at:.6f} before previous completion "
                f"{prev:.6f}"
            )
        last_end[rec.worker] = rec.completed_at
    if result.chunks:
        report.checks.append("t_p-bound")
        last = max(rec.completed_at for rec in result.chunks)
        if result.t_p < last - _EPS:
            report.violations.append(
                f"T_p={result.t_p:.6f} earlier than last chunk "
                f"completion {last:.6f}"
            )

    report.checks.append("metrics-agreement")
    by_worker: dict[int, list] = {}
    for rec in result.chunks:
        by_worker.setdefault(rec.worker, []).append(rec)
    for idx, w in enumerate(result.workers):
        recs = by_worker.get(idx, [])
        iters = sum(r.stop - r.start for r in recs)
        if w.chunks != len(recs) or w.iterations != iters:
            report.violations.append(
                f"worker {idx} ({w.name}) metrics disagree with trace: "
                f"counters say {w.chunks} chunks/{w.iterations} iters, "
                f"trace says {len(recs)}/{iters}"
            )
    stray = sorted(set(by_worker) - set(range(len(result.workers))))
    if stray:
        report.violations.append(
            f"trace references unknown worker index(es) {stray}"
        )

    acps = [rec.acp for rec in result.chunks if rec.acp is not None]
    if acps:
        report.checks.append("acp-bounds")
        for rec in result.chunks:
            if rec.acp is None:
                continue
            if rec.acp < 1 or (max_acp is not None and rec.acp > max_acp):
                report.violations.append(
                    f"chunk [{rec.start}, {rec.stop}) carries ACP "
                    f"{rec.acp} outside [1, {max_acp or 'inf'}]"
                )

    if result.results is not None:
        report.checks.append("result-length")
        if not _length_matches(len(result.results), total):
            report.violations.append(
                f"collected results hold {len(result.results)} values "
                f"for a {total}-iteration loop"
            )

    if scheme is not None and report.ok:
        _check_conformance(
            spans, scheme, total, len(result.workers), report,
            **scheme_kwargs,
        )
    return report


def audit_chunks(
    chunks: Iterable[tuple[int, int, int]],
    total: int,
    subject: str = "chunks",
) -> AuditReport:
    """Audit a bare ``(worker, start, stop)`` log for exactly-once
    coverage of ``[0, total)``."""
    report = AuditReport(subject=subject)
    spans = [(start, stop) for _worker, start, stop in chunks]
    _check_coverage(spans, total, report)
    return report


def audit_run(
    run,
    total: Optional[int] = None,
    scheme: Optional[str | Scheduler] = None,
    workload=None,
    workers: Optional[int] = None,
    **scheme_kwargs,
) -> AuditReport:
    """Audit a runtime :class:`~repro.runtime.RunResult` (or
    :class:`~repro.runtime.MasterResult`).

    ``workload`` additionally checks the reassembled results bit for
    bit against ``workload.execute_serial()`` -- the runtime's core
    correctness property, fault plan or not.
    """
    name = getattr(run, "scheme", None) or "runtime"
    report = AuditReport(subject=f"RunResult[{name}]")
    spans = [(start, stop) for _worker, start, stop in run.chunks]
    if total is None:
        total = (
            workload.size if workload is not None
            else max((stop for _s, stop in spans), default=0)
        )
    _check_coverage(spans, total, report)

    results = getattr(run, "results", None)
    if results is not None and workload is not None:
        report.checks.append("results-vs-serial")
        expected = workload.execute_serial()
        got = np.asarray(results)
        if got.shape != np.asarray(expected).shape or not np.array_equal(
            got, expected
        ):
            report.violations.append(
                "reassembled results differ from the serial execution "
                f"(shapes {got.shape} vs {np.asarray(expected).shape})"
            )
    elif results is not None:
        report.checks.append("result-length")
        if not _length_matches(len(results), total):
            report.violations.append(
                f"collected results hold {len(results)} values for a "
                f"{total}-iteration loop"
            )

    if scheme is not None and report.ok:
        nworkers = workers
        if nworkers is None:
            nworkers = max(
                (worker for worker, _s, _e in run.chunks), default=0
            ) + 1
        _check_conformance(
            spans, scheme, total, nworkers, report, **scheme_kwargs
        )
    return report


def _extract_spans(trace) -> list[tuple[int, int]]:
    """Chunk spans from a SimResult, runtime result, or raw span list."""
    chunks = getattr(trace, "chunks", trace)
    spans: list[tuple[int, int]] = []
    for rec in chunks:
        if hasattr(rec, "start"):
            spans.append((rec.start, rec.stop))
        elif len(rec) == 3:  # runtime (worker, start, stop) triple
            spans.append((rec[1], rec[2]))
        else:
            spans.append((rec[0], rec[1]))
    return spans


def audit_adaptive(
    trace,
    decisions,
    total: Optional[int] = None,
    workers: Optional[int] = None,
) -> AuditReport:
    """Audit an adaptive run against its own decision log.

    ``trace`` is a :class:`~repro.simulation.SimResult`, a runtime
    result (``.chunks`` of ``(worker, start, stop)``), or a raw span
    list; ``decisions`` is an
    :class:`~repro.adaptive.AdaptiveScheduler` (its ``decisions`` log
    is read) or the :class:`~repro.adaptive.StageDecision` list itself.

    Checks, on top of the exactly-once core:

    * **stage-tiling** -- the ``select`` decisions partition
      ``[0, total)``: consecutive stage windows abut and cover the
      loop, so no switch ever skipped or re-issued an iteration;
    * **stage-alignment** -- every executed chunk lies inside exactly
      one stage window (a chunk crossing a switch point would mean the
      sub-scheduler escaped its stage);
    * **stage-conformance** -- for stages whose scheme is
      order-invariant (the :data:`_ORDER_INVARIANT` set), the traced
      cut points inside the window equal a pure
      :func:`replay_cut_points` of that stage's scheme and recorded
      parameters, shifted to the stage base.  Requeued intervals are
      reassigned verbatim on every substrate, so this holds under
      fault plans too.  Stages running request-order-dependent schemes
      (FSS/FISS/TFSS/WF ladders) are skipped, like the fixed-scheme
      conformance audit skips them.
    """
    decs = list(getattr(decisions, "decisions", decisions))
    selects = sorted(
        (d for d in decs if d.kind == "select"), key=lambda d: d.stage
    )
    spans = _extract_spans(trace)
    if total is None:
        total = max((stop for _start, stop in spans), default=0)
    report = AuditReport(subject=f"adaptive[{len(selects)} stages]")
    _check_coverage(spans, total, report)

    report.checks.append("stage-tiling")
    cursor = 0
    for d in selects:
        if d.base != cursor:
            report.violations.append(
                f"stage {d.stage} opens at {d.base}, expected {cursor} "
                f"(stages must abut)"
            )
        cursor = d.base + d.size
    if selects and cursor != total:
        report.violations.append(
            f"stages cover [0, {cursor}) but the loop has {total} "
            f"iterations"
        )

    report.checks.append("stage-alignment")
    bounds = sorted((d.base, d.base + d.size) for d in selects)
    for start, stop in spans:
        inside = any(b <= start and stop <= e for b, e in bounds)
        if not inside:
            report.violations.append(
                f"chunk [{start}, {stop}) crosses a stage boundary"
            )
    if not report.ok:
        return report

    if workers is None:
        workers = max(
            (
                getattr(rec, "worker", rec[0] if len(rec) == 3 else 0)
                for rec in getattr(trace, "chunks", trace)
            ),
            default=0,
        ) + 1
    checked = 0
    for d in selects:
        key, _inline = _registry.parse(d.scheme)
        if key not in _ORDER_INVARIANT:
            continue
        expected = replay_cut_points(
            d.scheme, d.size, workers, **d.params
        )
        if expected is None:  # pragma: no cover - candidates are simple
            continue
        checked += 1
        window = frozenset(d.base + pt for pt in expected)
        traced = frozenset(
            pt
            for start, stop in spans
            if d.base <= start and stop <= d.base + d.size
            for pt in (start, stop)
        )
        if traced != window:
            extra = sorted(traced - window)[:8]
            missing = sorted(window - traced)[:8]
            report.violations.append(
                f"stage {d.stage} ({d.scheme}) boundaries diverge from "
                f"the pure replay (unexpected cuts {extra}, missing "
                f"cuts {missing})"
            )
    if checked:
        report.checks.append("stage-conformance")
    return report


def audit_events(
    events: Iterable,
    total: Optional[int] = None,
    scheme: Optional[str | Scheduler] = None,
    workers: Optional[int] = None,
    subject: str = "events",
    **scheme_kwargs,
) -> AuditReport:
    """Audit a unified observability stream (see :mod:`repro.obs`).

    ``events`` is any iterable of :class:`~repro.obs.ObsEvent` (or
    their ``to_dict`` forms, e.g. straight from
    :func:`~repro.obs.read_jsonl`) -- a :class:`~repro.obs.capture`
    buffer, a merged trace file, anything.  The audit needs nothing
    else: the ``result`` events alone carry the exactly-once ledger,
    so the same coverage / sanity / policy-conformance core that
    :func:`audit_sim` and :func:`audit_run` apply to native result
    objects runs here on the trace every substrate emits.

    Checks, in order: every event satisfies the :mod:`repro.obs`
    schema; ``result`` intervals tile ``[0, total)`` exactly once;
    per-worker ``result`` event times are non-decreasing within each
    event source (time bases differ *across* sources, so only
    within-source order is meaningful); and, with ``scheme``, the cut
    points match a pure scheduler replay.
    """
    report = AuditReport(subject=subject)
    evs: list[ObsEvent] = []
    report.checks.append("schema")
    for ev in events:
        if not isinstance(ev, ObsEvent):
            try:
                ev = ObsEvent.from_dict(ev)
            except (SchemaError, TypeError, KeyError) as exc:
                if len(report.violations) < 5:
                    report.violations.append(f"undecodable event: {exc}")
                continue
        try:
            validate_event(ev)
        except SchemaError as exc:
            if len(report.violations) < 5:
                report.violations.append(str(exc))
            continue
        evs.append(ev)
    if report.violations:
        return report

    results = [e for e in evs if e.kind == "result"]
    spans = [(e.start, e.stop) for e in results]
    if total is None:
        total = max((stop for _start, stop in spans), default=0)
    _check_coverage(spans, total, report)

    report.checks.append("event-times")
    last_t: dict[tuple[str, int], float] = {}
    for ev in results:
        if ev.t < -_EPS:
            report.violations.append(
                f"result [{ev.start}, {ev.stop}) carries negative "
                f"time t={ev.t:.6f}"
            )
        if ev.source not in _MONOTONE_SOURCES:
            # Worker-process clocks restart from zero on a chaos
            # respawn, so cross-incarnation order is not meaningful.
            continue
        key = (ev.source, ev.worker)
        prev = last_t.get(key)
        if prev is not None and ev.t < prev - _EPS:
            report.violations.append(
                f"{ev.source} worker {ev.worker} result times regress: "
                f"[{ev.start}, {ev.stop}) at t={ev.t:.6f} after "
                f"t={prev:.6f}"
            )
        last_t[key] = ev.t

    if scheme is not None and report.ok:
        nworkers = workers
        if nworkers is None:
            # Infer from *every* event, not just results: a fast worker
            # can drain the whole loop before its peers claim anything,
            # but the idle peers still emit request/heartbeat/acp
            # events, and TSS-family ladders depend on the true count.
            nworkers = max(
                (e.worker for e in evs if e.worker >= 0), default=0
            ) + 1
        _check_conformance(
            spans, scheme, total, nworkers, report, **scheme_kwargs
        )
    return report


def audit_service_log(
    log: Iterable[dict],
    require_terminal: bool = True,
    subject: str = "service-log",
) -> AuditReport:
    """Audit a service job ledger (:attr:`repro.service.WorkerPool.log`).

    The ledger records every job state transition the shared pool made
    (``submit`` / ``assign`` / ``requeue`` / ``worker-death`` /
    ``stale-result`` / ``result`` / ``error``); this audit proves the
    service's delivery contract from it:

    * **exactly-once delivery** -- every submitted job has at most one
      terminal entry (``result`` or ``error``), and exactly one when
      ``require_terminal`` (the post-drain form); duplicated results
      from stale incarnations must appear as ``stale-result``, never
      as a second ``result``;
    * **incarnation freshness** -- a terminal ``result`` carries the
      worker slot *and* incarnation of that job's most recent
      ``assign``: a result accepted from an incarnation the job was
      not currently assigned to is a double-execution hazard;
    * **requeue accounting** -- a terminal job was assigned exactly
      ``requeues + 1`` times (every death-triggered requeue led to
      exactly one fresh assignment);
    * **tenant isolation** -- all entries for one job id carry one
      tenant;
    * **ordering** -- per job: ``submit`` first, every ``assign``
      after it, and nothing after the terminal entry except
      ``stale-result`` drops.
    """
    report = AuditReport(subject=subject)
    entries = list(log)
    by_job: dict[str, list[dict]] = {}
    report.checks.append("ledger-shape")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "ev" not in entry \
                or "job" not in entry:
            if len(report.violations) < 5:
                report.violations.append(
                    f"ledger entry {i} is not a job transition: "
                    f"{entry!r}"
                )
            continue
        by_job.setdefault(entry["job"], []).append(entry)
    if report.violations:
        return report

    report.checks.append("exactly-once")
    report.checks.append("incarnation-freshness")
    report.checks.append("requeue-accounting")
    report.checks.append("tenant-isolation")
    report.checks.append("ordering")
    for job_id, seq in by_job.items():
        kinds = [e["ev"] for e in seq]
        tenants = {e.get("tenant") for e in seq}
        if len(tenants) > 1:
            report.violations.append(
                f"job {job_id} crosses tenants: {sorted(map(str, tenants))}"
            )
        if kinds.count("submit") != 1:
            report.violations.append(
                f"job {job_id} has {kinds.count('submit')} submit "
                f"entries (want exactly 1)"
            )
        elif kinds[0] != "submit":
            report.violations.append(
                f"job {job_id} log starts with {kinds[0]!r}, not "
                f"'submit'"
            )
        terminals = [e for e in seq if e["ev"] in ("result", "error")]
        if len(terminals) > 1:
            report.violations.append(
                f"job {job_id} delivered {len(terminals)} terminal "
                f"entries -- exactly-once violated"
            )
        elif not terminals and require_terminal:
            report.violations.append(
                f"job {job_id} never reached a terminal state"
            )
        if terminals:
            term_idx = seq.index(terminals[0])
            trailing = [
                e["ev"] for e in seq[term_idx + 1:]
                if e["ev"] != "stale-result"
            ]
            if trailing:
                report.violations.append(
                    f"job {job_id} has transitions after its terminal "
                    f"entry: {trailing}"
                )
        assigns = [e for e in seq if e["ev"] == "assign"]
        requeues = kinds.count("requeue")
        if terminals:
            term = terminals[0]
            if term["ev"] == "result":
                if not assigns:
                    report.violations.append(
                        f"job {job_id} has a result but was never "
                        f"assigned"
                    )
                else:
                    last = assigns[-1]
                    if (term.get("worker"), term.get("incarnation")) != (
                        last.get("worker"), last.get("incarnation")
                    ):
                        report.violations.append(
                            f"job {job_id} result came from "
                            f"worker={term.get('worker')} "
                            f"inc={term.get('incarnation')} but was "
                            f"assigned to worker={last.get('worker')} "
                            f"inc={last.get('incarnation')} -- stale "
                            f"incarnation accepted"
                        )
            if assigns and len(assigns) != requeues + 1:
                report.violations.append(
                    f"job {job_id} was assigned {len(assigns)} times "
                    f"for {requeues} requeue(s) (want requeues + 1)"
                )
        for e in seq:
            if e["ev"] == "worker-death" and "requeue" not in kinds \
                    and not terminals:
                report.violations.append(
                    f"job {job_id} lost its worker but was neither "
                    f"requeued nor failed"
                )
                break
    return report


def audit_subscription(
    frames: Iterable[dict],
    trace: Optional[Iterable] = None,
    complete: bool = False,
    subject: str = "subscription",
) -> AuditReport:
    """Audit a live-telemetry subscription's pushed frames.

    ``frames`` is the sequence of ``{"watch": ...}`` documents a
    subscriber read off one connection (what
    :meth:`repro.service.ServiceClient.watch` yields).  The audit
    proves the streaming contract:

    * **frame shape** -- every frame is an ``events`` or ``end``
      document carrying an integer sequence number ``n`` and a
      cumulative ``drops`` counter;
    * **gapless sequencing** -- ``n`` starts at 1 and increments by
      exactly 1 per frame: a missing or reordered frame is visible as
      a gap, independent of its payload;
    * **drop accounting** -- ``drops`` never decreases (it is the
      *cumulative* count of events the daemon shed to protect the
      pool from a slow subscriber);
    * **termination** -- at most one ``end`` frame, and only as the
      final frame;
    * **fidelity** (when ``trace`` is given) -- every streamed event
      also appears in the server-side tenant trace: streaming is a
      tap, never a second source of truth.  With ``complete=True``
      (a subscription that covered the whole run, ``drops == 0``)
      the two multisets must be *equal*, so the subscriber holds a
      bit-identical copy of the ledger-consistent trace.
    """
    import json as _json

    report = AuditReport(subject=subject)
    docs = list(frames)

    report.checks.append("frame-shape")
    for i, frame in enumerate(docs):
        if not isinstance(frame, dict) \
                or frame.get("watch") not in ("events", "end") \
                or not isinstance(frame.get("n"), int) \
                or not isinstance(frame.get("drops"), int):
            if len(report.violations) < 5:
                report.violations.append(
                    f"frame {i} is not a stream document: {frame!r}"
                )
    if report.violations:
        return report

    report.checks.append("sequence")
    for i, frame in enumerate(docs):
        if frame["n"] != i + 1:
            report.violations.append(
                f"frame {i} carries n={frame['n']} (want {i + 1}) -- "
                f"gap or reorder"
            )
            break

    report.checks.append("drop-accounting")
    last_drops = 0
    for i, frame in enumerate(docs):
        if frame["drops"] < last_drops:
            report.violations.append(
                f"frame {i} drops={frame['drops']} < previous "
                f"{last_drops} -- cumulative counter went backwards"
            )
            break
        last_drops = frame["drops"]

    report.checks.append("termination")
    ends = [i for i, f in enumerate(docs) if f["watch"] == "end"]
    if len(ends) > 1:
        report.violations.append(
            f"{len(ends)} end frames (want at most 1)"
        )
    elif ends and ends[0] != len(docs) - 1:
        report.violations.append(
            f"end frame at index {ends[0]} is not the final frame"
        )

    if trace is None:
        return report

    def _normalize(ev) -> str:
        if not isinstance(ev, ObsEvent):
            ev = ObsEvent.from_dict(ev)
        return _json.dumps(ev.to_dict(), sort_keys=True)

    streamed: dict[str, int] = {}
    for frame in docs:
        for ev in frame.get("events", ()):
            key = _normalize(ev)
            streamed[key] = streamed.get(key, 0) + 1
    recorded: dict[str, int] = {}
    for ev in trace:
        key = _normalize(ev)
        recorded[key] = recorded.get(key, 0) + 1

    report.checks.append("fidelity")
    for key, count in streamed.items():
        if count > recorded.get(key, 0):
            report.violations.append(
                f"streamed event not in (or exceeding) the server "
                f"trace: {key}"
            )
            if sum(
                1 for v in report.violations
                if v.startswith("streamed event")
            ) >= 5:
                break

    if complete:
        report.checks.append("completeness")
        if last_drops:
            report.violations.append(
                f"complete subscription audit with drops={last_drops} "
                f"-- a lossy stream cannot be complete"
            )
        missing = sum(
            count - streamed.get(key, 0)
            for key, count in recorded.items()
            if count > streamed.get(key, 0)
        )
        if missing:
            report.violations.append(
                f"{missing} trace event(s) never reached the "
                f"subscriber despite drops=0"
            )
    return report
