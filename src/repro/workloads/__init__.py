"""Parallel-loop workloads: Mandelbrot (the paper's test problem),
the Sec. 2.1 synthetic loop styles, sampling reordering, and the
matrix-add background load used for nondedicated runs."""

from .base import Workload, WorkloadError
from .mandelbrot import MandelbrotWorkload, escape_counts, render_ascii
from .matrix import MatrixAddWorkload, matrix_add_load
from .reorder import (
    ReorderedWorkload,
    inverse_permutation,
    sampling_permutation,
)
from .synthetic import (
    ConditionalWorkload,
    GaussianPeakWorkload,
    LinearWorkload,
    RandomWorkload,
    SpinWorkload,
    TraceWorkload,
    UniformWorkload,
)

__all__ = [
    "Workload",
    "WorkloadError",
    "MandelbrotWorkload",
    "escape_counts",
    "render_ascii",
    "ReorderedWorkload",
    "sampling_permutation",
    "inverse_permutation",
    "UniformWorkload",
    "SpinWorkload",
    "TraceWorkload",
    "LinearWorkload",
    "ConditionalWorkload",
    "RandomWorkload",
    "GaussianPeakWorkload",
    "MatrixAddWorkload",
    "matrix_add_load",
]
