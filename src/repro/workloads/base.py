"""Workload protocol: a parallel loop with per-iteration costs.

The paper's loop taxonomy (Sec. 2.1) classifies parallel loops by the
shape of ``L(i)``, the execution time of iteration ``i``: *uniform*,
*linearly distributed* (increasing/decreasing), *conditional*, and
*irregular* (the Mandelbrot case -- "the most severe test for a
scheduling scheme").

A :class:`Workload` exposes both faces a scheduling experiment needs:

* an **abstract cost profile** ``cost(i)`` in *basic computations*
  (the paper's Figure 1 y-axis) -- the discrete-event simulator charges
  ``cost(chunk) / effective_speed`` of virtual time per chunk;
* a **concrete executor** ``execute(start, stop)`` that really computes
  the iterations -- the multiprocessing runtime runs this, and engines
  use it to verify that scheduled execution reproduces serial results.

Costs are cached as a NumPy vector with a prefix-sum, so chunk costs are
O(1) regardless of chunk size.

Workloads whose cost vector is a pure function of their construction
parameters additionally expose :meth:`Workload.cost_signature`, which
:meth:`Workload.cost_key` hashes into a content address; ``costs()``
then consults the persistent :mod:`repro.cache` store before running
``_compute_costs()``, so an expensive profile (the Mandelbrot grid) is
computed once per machine rather than once per experiment module.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from .. import cache as _cost_cache

__all__ = ["Workload", "WorkloadError"]


class WorkloadError(ValueError):
    """Raised for invalid workload parameters or out-of-range indices."""


class Workload(ABC):
    """A parallel loop of ``size`` independent iterations ("tasks")."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise WorkloadError(f"size must be >= 0, got {size}")
        self._size = int(size)
        self._costs: Optional[np.ndarray] = None
        self._prefix: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        """Number of loop iterations ``I``."""
        return self._size

    #: short label used in experiment reports.
    name: str = "workload"

    # -- cost profile --------------------------------------------------------

    @abstractmethod
    def _compute_costs(self) -> np.ndarray:
        """Return the full ``L(i)`` vector (float64, length ``size``)."""

    def cost_signature(self) -> Optional[list]:
        """JSON-able parameters that fully determine the cost vector.

        ``None`` (the default) marks the profile uncacheable -- either
        because it is trivially cheap or because it depends on state
        outside the constructor arguments.  Deterministic workloads
        (Mandelbrot, reordering wrappers) override this; the signature
        feeds :meth:`cost_key` and must change whenever any parameter
        that changes ``L(i)`` changes.
        """
        return None

    def cost_key(self) -> Optional[str]:
        """Content address of the cost vector (``None`` = uncacheable)."""
        signature = self.cost_signature()
        if signature is None:
            return None
        return _cost_cache.signature_key(signature)

    def _install_costs(self, costs: np.ndarray) -> np.ndarray:
        """Validate, freeze, and prefix-sum a cost vector."""
        costs = np.ascontiguousarray(costs, dtype=np.float64)
        if costs.shape != (self._size,):
            raise WorkloadError(
                f"cost vector shape {costs.shape} != ({self._size},)"
            )
        if self._size and costs.min() < 0:
            raise WorkloadError("iteration costs must be >= 0")
        costs = costs.copy() if not costs.flags.owndata else costs
        costs.setflags(write=False)
        self._costs = costs
        prefix = np.concatenate(([0.0], np.cumsum(costs)))
        prefix.setflags(write=False)
        self._prefix = prefix
        return costs

    def set_costs(self, costs: np.ndarray) -> None:
        """Inject a precomputed cost vector, bypassing computation.

        The batch layer uses this to ship a cached/parent-computed
        profile to pool workers so no process ever re-derives it.  The
        vector must match what ``_compute_costs()`` would produce.
        """
        self._install_costs(np.asarray(costs, dtype=np.float64))

    def costs(self) -> np.ndarray:
        """The full cost vector, computed once and cached (read-only).

        Lookup order: this instance's memo, the persistent cost-profile
        cache (:mod:`repro.cache`, keyed by :meth:`cost_key`), and only
        then ``_compute_costs()``; a fresh computation is written back
        to the persistent cache.
        """
        if self._costs is None:
            key = self.cost_key()
            cached = _cost_cache.get_cache().get(key)
            if cached is not None:
                try:
                    self._install_costs(cached)
                except WorkloadError:
                    cached = None  # poisoned entry: recompute below
            if cached is None:
                self._install_costs(self._compute_costs())
                _cost_cache.get_cache().put(key, self._costs)
        return self._costs

    def cost(self, index: int) -> float:
        """``L(index)``: basic computations for one iteration."""
        if not 0 <= index < self._size:
            raise WorkloadError(
                f"iteration {index} out of range [0, {self._size})"
            )
        return float(self.costs()[index])

    def chunk_cost(self, start: int, stop: int) -> float:
        """Total cost of iterations ``[start, stop)`` in O(1)."""
        if not 0 <= start <= stop <= self._size:
            raise WorkloadError(
                f"chunk [{start}, {stop}) out of range [0, {self._size}]"
            )
        self.costs()
        assert self._prefix is not None
        return float(self._prefix[stop] - self._prefix[start])

    def total_cost(self) -> float:
        """Total serial basic computations of the whole loop."""
        return self.chunk_cost(0, self._size)

    # -- execution -------------------------------------------------------------

    def execute(self, start: int, stop: int) -> np.ndarray:
        """Actually compute iterations ``[start, stop)``; return results.

        The default implementation returns the cost values themselves
        (adequate for synthetic loops whose "result" is their profile);
        real workloads (Mandelbrot) override this with the true
        computation.  Results concatenated over any partition of
        ``[0, size)`` in index order must equal a serial run -- engines
        assert this.
        """
        if not 0 <= start <= stop <= self._size:
            raise WorkloadError(
                f"chunk [{start}, {stop}) out of range [0, {self._size}]"
            )
        return np.asarray(self.costs()[start:stop])

    def execute_serial(self) -> np.ndarray:
        """Run the whole loop serially (baseline for correctness/speedup)."""
        return self.execute(0, self._size)

    def burn(self, start: int, stop: int) -> None:
        """Re-do the work of ``[start, stop)`` without using any cache.

        The multiprocessing runtime emulates slower PEs by re-executing
        chunks; workloads that memoize results (Mandelbrot) override
        this so the re-execution actually burns CPU.
        """
        self.execute(start, stop)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} size={self._size}>"
