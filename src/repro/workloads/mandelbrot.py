"""Mandelbrot-set column workload -- the paper's test problem (Sec. 2.1).

The paper computes the Mandelbrot fractal on the domain
``[-2.0, 1.25] x [-1.25, 1.25]`` for window sizes like 4000x2000; "the
computation of one column is considered the smallest unit that can be
scheduled independently (i.e. a task)", so a ``width x height`` window
is a parallel loop of ``I = width`` iterations whose cost ``L(i)`` is
the total escape-time iteration count down column ``i`` -- an
*irregular, unpredictable* profile (Figure 1 shows 1200..56000 basic
computations per column for a 1200x1200 window).

Implementation notes
--------------------
The escape-time kernel is fully vectorized over a column (one complex
vector per column, iterated with a live-point mask), per the
numerical-Python guidance: the per-point Python loop would be ~100x
slower and this kernel is the hot path of every real execution.
Columns are computed lazily and memoized column-by-column so that a
worker executing chunk ``[a, b)`` touches only its own columns.
"""

from __future__ import annotations

import numpy as np

from .base import Workload, WorkloadError

__all__ = ["MandelbrotWorkload", "escape_counts", "render_ascii"]

#: The paper's domain: real in [-2.0, 1.25], imaginary in [-1.25, 1.25].
PAPER_DOMAIN = (-2.0, 1.25, -1.25, 1.25)


def escape_counts(
    c: np.ndarray, max_iter: int, *, out_dtype=np.int32
) -> np.ndarray:
    """Escape-time iteration counts for an array of complex points.

    Returns, per point, the number of iterations of ``z <- z^2 + c``
    performed before ``|z| > 2`` (points that never escape cost the full
    ``max_iter``).  This count *is* the paper's "basic computations"
    measure: work is proportional to iterations executed.
    """
    if max_iter < 1:
        raise WorkloadError(f"max_iter must be >= 1, got {max_iter}")
    c = np.asarray(c, dtype=np.complex128)
    shape = c.shape
    # Work on compacted live-point vectors: most points escape within a
    # few iterations, so shrinking the working set each step is the
    # difference between O(escaped work) and O(max_iter * grid) -- the
    # classic profile-then-vectorize win for this kernel.
    flat_c = c.reshape(-1)
    counts = np.zeros(flat_c.shape[0], dtype=out_dtype)
    live_idx = np.arange(flat_c.shape[0])
    z = np.zeros(flat_c.shape[0], dtype=np.complex128)
    cc = flat_c.copy()
    for _ in range(max_iter):
        z = z * z + cc
        counts[live_idx] += 1
        # |z| <= 2 without the sqrt of np.abs.
        alive = (z.real * z.real + z.imag * z.imag) <= 4.0
        if alive.all():
            continue
        live_idx = live_idx[alive]
        if live_idx.size == 0:
            break
        z = z[alive]
        cc = cc[alive]
    return counts.reshape(shape)


class MandelbrotWorkload(Workload):
    """One task per pixel column of a ``width x height`` window.

    Parameters mirror the paper: ``domain`` defaults to
    ``[-2.0, 1.25] x [-1.25, 1.25]``; ``max_iter`` bounds the escape
    loop.  ``execute`` returns the per-pixel escape counts of the
    requested columns flattened in column-major task order, so that
    concatenating chunk results in index order reconstructs the image.
    """

    name = "mandelbrot"

    def __init__(
        self,
        width: int,
        height: int,
        max_iter: int = 64,
        domain: tuple[float, float, float, float] = PAPER_DOMAIN,
    ) -> None:
        if width < 0 or height < 1:
            raise WorkloadError(
                f"invalid window {width}x{height}: width >= 0, height >= 1"
            )
        super().__init__(width)
        self.width = int(width)
        self.height = int(height)
        self.max_iter = int(max_iter)
        xmin, xmax, ymin, ymax = map(float, domain)
        if not (xmin < xmax and ymin < ymax):
            raise WorkloadError(f"degenerate domain {domain}")
        self.domain = (xmin, xmax, ymin, ymax)
        self._xs = np.linspace(xmin, xmax, num=max(width, 1))
        self._ys = np.linspace(ymin, ymax, num=height)
        # Column-count cache: computed on demand, shared by cost() and
        # execute() so simulation and execution agree exactly.
        self._columns: dict[int, np.ndarray] = {}

    def cost_signature(self) -> list:
        """Everything that determines the Figure 1 profile -- class,
        window, iteration bound, and domain -- for the persistent
        cost-profile cache (:mod:`repro.cache`)."""
        return [
            "mandelbrot",
            self.width,
            self.height,
            self.max_iter,
            list(self.domain),
        ]

    def __getstate__(self) -> dict:
        """Pickle without the column memo: pool workers re-derive any
        column they actually execute, and shipping a full-grid memo
        (hundreds of MB at paper scale) would swamp job submission."""
        state = self.__dict__.copy()
        state["_columns"] = {}
        return state

    # -- kernels ---------------------------------------------------------------

    def column_counts(self, col: int) -> np.ndarray:
        """Escape counts for every pixel of column ``col`` (memoized)."""
        if not 0 <= col < self.width:
            raise WorkloadError(
                f"column {col} out of range [0, {self.width})"
            )
        cached = self._columns.get(col)
        if cached is None:
            c = self._xs[col] + 1j * self._ys
            cached = escape_counts(c, self.max_iter)
            cached.setflags(write=False)
            self._columns[col] = cached
        return cached

    #: Columns per block in the whole-grid cost pass.  Blocks keep the
    #: working set cache-sized: one giant grid pass thrashes (hundreds
    #: of MB of complex128 temporaries) while ~512 columns x 2000 rows
    #: stays around 16 MB.
    _COST_BLOCK = 512

    def _compute_costs(self) -> np.ndarray:
        # Whole-grid vectorized pass, block of columns at a time.  This
        # is the profile of Figure 1 (per-column basic computations).
        if self.width == 0:
            return np.zeros(0)
        costs = np.empty(self.width, dtype=np.float64)
        for lo in range(0, self.width, self._COST_BLOCK):
            hi = min(lo + self._COST_BLOCK, self.width)
            c = self._xs[None, lo:hi] + 1j * self._ys[:, None]
            counts = escape_counts(c, self.max_iter)
            for col in range(lo, hi):
                frozen = counts[:, col - lo].copy()
                frozen.setflags(write=False)
                self._columns.setdefault(col, frozen)
            costs[lo:hi] = counts.sum(axis=0, dtype=np.float64)
        return costs

    def execute(self, start: int, stop: int) -> np.ndarray:
        """Compute columns ``[start, stop)``; returns counts flattened
        column-by-column (length ``(stop-start) * height``)."""
        if not 0 <= start <= stop <= self.width:
            raise WorkloadError(
                f"chunk [{start}, {stop}) out of range [0, {self.width}]"
            )
        if start == stop:
            return np.zeros(0, dtype=np.int32)
        return np.concatenate(
            [self.column_counts(col) for col in range(start, stop)]
        )

    def burn(self, start: int, stop: int) -> None:
        """Recompute columns without the memo cache (slowdown emulation)."""
        if not 0 <= start <= stop <= self.width:
            raise WorkloadError(
                f"chunk [{start}, {stop}) out of range [0, {self.width}]"
            )
        for col in range(start, stop):
            escape_counts(self._xs[col] + 1j * self._ys, self.max_iter)

    def image(self) -> np.ndarray:
        """The full ``height x width`` escape-count image (Figure 2)."""
        flat = self.execute(0, self.width)
        return flat.reshape(self.width, self.height).T


def render_ascii(
    image: np.ndarray, charset: str = " .:-=+*#%@"
) -> str:
    """Render an escape-count image as ASCII art (Figure 2 stand-in)."""
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise WorkloadError(f"image must be 2-D, got shape {img.shape}")
    lo, hi = float(img.min()), float(img.max())
    span = (hi - lo) or 1.0
    idx = ((img - lo) / span * (len(charset) - 1)).round().astype(int)
    return "\n".join("".join(charset[v] for v in row) for row in idx)
