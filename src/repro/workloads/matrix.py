"""Matrix-addition background load -- the paper's nondedicated stressor.

For the *nondedicated* experiments the paper "started resource expensive
processes on some slaves.  Two such processes are started.  Each one
adds two random matrices of size 1000."  This module supplies both
faces of that stressor:

* :func:`matrix_add_load` -- the real thing, for the multiprocessing
  runtime: a process target that repeatedly adds two random matrices
  until told to stop, pinning a CPU exactly like the paper's load.
* :class:`MatrixAddWorkload` -- matrix addition *as a parallel loop*
  (one row-block add per iteration), usable as a uniform real workload
  for the runtime's correctness tests.
"""

from __future__ import annotations

import numpy as np

from .base import Workload, WorkloadError

__all__ = ["matrix_add_load", "MatrixAddWorkload"]


def matrix_add_load(
    stop_event, size: int = 1000, seed: int = 0, max_rounds: int | None = None
) -> int:
    """Busy-load loop: repeatedly add two random ``size x size`` matrices.

    Designed as a :class:`multiprocessing.Process` target.  Runs until
    ``stop_event`` (a :class:`multiprocessing.Event`-alike with
    ``is_set``) fires or ``max_rounds`` is reached; returns the number
    of additions performed (useful in tests).
    """
    if size < 1:
        raise WorkloadError(f"matrix size must be >= 1, got {size}")
    rng = np.random.default_rng(seed)
    a = rng.random((size, size))
    b = rng.random((size, size))
    rounds = 0
    while not stop_event.is_set():
        np.add(a, b)
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            break
    return rounds


class MatrixAddWorkload(Workload):
    """Matrix addition as a uniform parallel loop.

    The ``n x n`` addition is split into ``size`` row blocks; iteration
    ``i`` adds block ``i``.  Every iteration costs the same (``n/size``
    rows of ``n`` additions), so this doubles as the paper's *uniform*
    loop style backed by real computation.
    """

    name = "matrix-add"

    def __init__(self, n: int = 256, size: int = 64, seed: int = 0) -> None:
        if n < 1:
            raise WorkloadError(f"matrix dimension must be >= 1, got {n}")
        if size < 1 or size > n:
            raise WorkloadError(
                f"size must be in [1, n={n}], got {size}"
            )
        super().__init__(size)
        self.n = int(n)
        rng = np.random.default_rng(seed)
        self.a = rng.random((n, n))
        self.b = rng.random((n, n))
        # Row-block boundaries (last block absorbs the remainder).
        edges = np.linspace(0, n, num=size + 1).round().astype(int)
        self._edges = edges

    def _compute_costs(self) -> np.ndarray:
        rows = np.diff(self._edges).astype(np.float64)
        return rows * self.n  # additions per block

    def execute(self, start: int, stop: int) -> np.ndarray:
        if not 0 <= start <= stop <= self.size:
            raise WorkloadError(
                f"chunk [{start}, {stop}) out of range [0, {self.size}]"
            )
        lo, hi = self._edges[start], self._edges[stop]
        return self.a[lo:hi] + self.b[lo:hi]

    def expected(self) -> np.ndarray:
        """The full serial result ``a + b`` for verification."""
        return self.a + self.b
