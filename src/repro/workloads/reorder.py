"""Loop reordering by sampling -- paper Sec. 2.1.

"For a loop with I iterations, a sampling frequency ``S_f`` is given.
We sample the loop ``S_f`` times, taking first the iterations whose
index ``i`` satisfies ``i mod S_f = 0``, then the iterations with
``i mod S_f = 1``, and so on.  After sampling, the ``S_f`` samples are
placed in a sequence."  Iterations are independent, so the sampled loop
computes the same results; chunks of consecutive *reordered* indices
stripe across the original domain and "the loop appears more uniform"
(Figure 1b).  The paper runs every experiment with ``S_f = 4``.

:func:`sampling_permutation` builds the permutation;
:class:`ReorderedWorkload` wraps any workload so schedulers and engines
operate transparently in the reordered index space, with
:meth:`~ReorderedWorkload.restore` mapping gathered results back to
original order.
"""

from __future__ import annotations

import numpy as np

from .base import Workload, WorkloadError

__all__ = ["sampling_permutation", "inverse_permutation", "ReorderedWorkload"]


def sampling_permutation(size: int, sf: int) -> np.ndarray:
    """Permutation ``perm`` with ``perm[new_index] = original_index``.

    ``sf = 1`` is the identity.  ``sf`` may exceed ``size`` (degenerate
    samples are empty); it must be positive.
    """
    if size < 0:
        raise WorkloadError(f"size must be >= 0, got {size}")
    if sf < 1:
        raise WorkloadError(f"sampling frequency must be >= 1, got {sf}")
    return np.concatenate(
        [np.arange(r, size, sf, dtype=np.int64) for r in range(sf)]
    ) if size else np.zeros(0, dtype=np.int64)


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse of a permutation vector: ``inv[perm[k]] = k``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


class ReorderedWorkload(Workload):
    """View of ``inner`` with iterations permuted by sampling order.

    Iteration ``k`` of this workload is iteration ``perm[k]`` of the
    inner workload; costs and execution follow.  ``execute`` returns
    one result row per iteration (the inner per-iteration result), so
    results can be un-permuted with :meth:`restore`.
    """

    def __init__(self, inner: Workload, sf: int) -> None:
        super().__init__(inner.size)
        self.inner = inner
        self.sf = int(sf)
        self.perm = sampling_permutation(inner.size, sf)
        self.name = f"{inner.name}/Sf={sf}"

    def cost_signature(self):
        """Cacheable iff the inner profile is: the reordered vector is
        the inner signature plus the sampling frequency (which fixes
        the permutation)."""
        inner = self.inner.cost_signature()
        if inner is None:
            return None
        return ["reordered", self.sf, inner]

    def _compute_costs(self) -> np.ndarray:
        inner_costs = self.inner.costs()
        return inner_costs[self.perm] if self.size else inner_costs

    def execute(self, start: int, stop: int) -> np.ndarray:
        if not 0 <= start <= stop <= self.size:
            raise WorkloadError(
                f"chunk [{start}, {stop}) out of range [0, {self.size}]"
            )
        parts = [
            self.inner.execute(int(orig), int(orig) + 1)
            for orig in self.perm[start:stop]
        ]
        if not parts:
            return np.zeros(0)
        return np.stack(parts)

    def burn(self, start: int, stop: int) -> None:
        """Forward cache-bypassing re-execution to the inner workload."""
        for orig in self.perm[start:stop]:
            self.inner.burn(int(orig), int(orig) + 1)

    def restore(self, rows: np.ndarray) -> np.ndarray:
        """Un-permute per-iteration result rows back to original order."""
        rows = np.asarray(rows)
        if rows.shape[0] != self.size:
            raise WorkloadError(
                f"expected {self.size} result rows, got {rows.shape[0]}"
            )
        return rows[inverse_permutation(self.perm)]
