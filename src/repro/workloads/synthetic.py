"""Synthetic parallel-loop styles from the paper's taxonomy (Sec. 2.1).

Each class realizes one of the ``L(i)`` shapes the paper enumerates as
DOALL examples, so scheduling behaviour can be studied on loops whose
cost structure is known in closed form:

* :class:`UniformWorkload` -- ``X[K] = X[K] + A``: constant ``L(i)``.
* :class:`LinearWorkload` -- the increasing (``J = 1..K``) and
  decreasing (``J = 1..I-K+1``) nested-serial-loop examples.
* :class:`ConditionalWorkload` -- the IF/ELSE example: two cost levels
  selected per-iteration by a predicate.
* :class:`RandomWorkload` -- seeded irregular costs (the "cannot be
  ordered" class) for stress tests beyond Mandelbrot.
* :class:`GaussianPeakWorkload` -- a smooth hump, a stand-in for the
  Mandelbrot profile with tunable sharpness.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .base import Workload, WorkloadError

__all__ = [
    "UniformWorkload",
    "LinearWorkload",
    "ConditionalWorkload",
    "RandomWorkload",
    "GaussianPeakWorkload",
]


class UniformWorkload(Workload):
    """Uniformly distributed loop: every iteration costs ``unit``."""

    name = "uniform"

    def __init__(self, size: int, unit: float = 1.0) -> None:
        super().__init__(size)
        if unit <= 0:
            raise WorkloadError(f"unit cost must be > 0, got {unit}")
        self.unit = float(unit)

    def _compute_costs(self) -> np.ndarray:
        return np.full(self.size, self.unit)


class LinearWorkload(Workload):
    """Linearly distributed loop (paper's increasing/decreasing DOALLs).

    Increasing: ``L(i) = base + slope * i`` (the inner serial loop runs
    ``K`` times at iteration ``K``); ``increasing=False`` mirrors it.
    """

    def __init__(
        self,
        size: int,
        increasing: bool = True,
        base: float = 1.0,
        slope: float = 1.0,
    ) -> None:
        super().__init__(size)
        if base <= 0 or slope < 0:
            raise WorkloadError(
                f"need base > 0 and slope >= 0, got base={base} slope={slope}"
            )
        self.increasing = bool(increasing)
        self.base = float(base)
        self.slope = float(slope)
        self.name = "linear-inc" if increasing else "linear-dec"

    def _compute_costs(self) -> np.ndarray:
        ramp = self.base + self.slope * np.arange(self.size)
        return ramp if self.increasing else ramp[::-1].copy()


def _every_third(idx: np.ndarray) -> np.ndarray:
    """Default conditional predicate: Block1 on every third iteration.

    Module-level (not a lambda) so conditional workloads stay picklable
    for the multiprocessing runtime.
    """
    return idx % 3 == 0


class ConditionalWorkload(Workload):
    """Conditional loop: ``cost_true`` where ``predicate(i)`` else
    ``cost_false`` (the paper's IF/ELSE Block1/Block2 example).

    The default predicate (every third iteration) makes an uneven comb.
    """

    name = "conditional"

    def __init__(
        self,
        size: int,
        cost_true: float = 10.0,
        cost_false: float = 1.0,
        predicate: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        super().__init__(size)
        if cost_true <= 0 or cost_false <= 0:
            raise WorkloadError("both branch costs must be > 0")
        self.cost_true = float(cost_true)
        self.cost_false = float(cost_false)
        self.predicate = predicate or _every_third

    def _compute_costs(self) -> np.ndarray:
        idx = np.arange(self.size)
        mask = np.asarray(self.predicate(idx), dtype=bool)
        if mask.shape != (self.size,):
            raise WorkloadError(
                f"predicate returned shape {mask.shape}, "
                f"expected ({self.size},)"
            )
        return np.where(mask, self.cost_true, self.cost_false)


class RandomWorkload(Workload):
    """Irregular loop: i.i.d. costs from a seeded lognormal distribution.

    Lognormal matches the heavy-tailed flavour of real irregular loops
    (a few iterations dominate).  Deterministic given ``seed``.
    """

    name = "random"

    def __init__(
        self,
        size: int,
        seed: int = 0,
        mean: float = 1.0,
        sigma: float = 1.0,
    ) -> None:
        super().__init__(size)
        if mean <= 0 or sigma < 0:
            raise WorkloadError(
                f"need mean > 0 and sigma >= 0, got {mean}, {sigma}"
            )
        self.seed = int(seed)
        self.mean = float(mean)
        self.sigma = float(sigma)

    def _compute_costs(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        raw = rng.lognormal(mean=0.0, sigma=self.sigma, size=self.size)
        return raw * self.mean / (raw.mean() or 1.0) if self.size else raw


class TraceWorkload(Workload):
    """A loop whose per-iteration costs come from a user-supplied array.

    The escape hatch for studying scheduling against *measured*
    profiles: record per-iteration times from any real program, load
    them here, and every scheme/engine/experiment in the library works
    unchanged.  ``execute`` returns the costs (there is no real
    computation behind a trace).
    """

    name = "trace"

    def __init__(self, costs) -> None:
        arr = np.asarray(costs, dtype=np.float64).ravel()
        if arr.size and arr.min() < 0:
            raise WorkloadError("trace costs must be >= 0")
        super().__init__(arr.size)
        self._trace = arr.copy()

    def _compute_costs(self) -> np.ndarray:
        return self._trace.copy()


class SpinWorkload(Workload):
    """Uniform *compute-bound* loop: each iteration chains ``spins``
    vectorized transcendental passes over a ``veclen`` vector.

    Unlike matrix addition (memory-bound: repeat executions run
    cache-hot and cost far less than the first), a sin/sqrt chain keeps
    the ALU busy every time -- which makes this the right probe for
    wall-clock speed estimation (:mod:`repro.runtime.estimator`) and
    for slowdown emulation tests.
    """

    name = "spin"

    def __init__(
        self, size: int, spins: int = 20, veclen: int = 2048
    ) -> None:
        super().__init__(size)
        if spins < 1 or veclen < 1:
            raise WorkloadError(
                f"spins and veclen must be >= 1, got {spins}, {veclen}"
            )
        self.spins = int(spins)
        self.veclen = int(veclen)

    def _compute_costs(self) -> np.ndarray:
        return np.full(self.size, float(self.spins * self.veclen))

    def execute(self, start: int, stop: int) -> np.ndarray:
        if not 0 <= start <= stop <= self.size:
            raise WorkloadError(
                f"chunk [{start}, {stop}) out of range [0, {self.size}]"
            )
        out = np.empty(stop - start)
        for k, i in enumerate(range(start, stop)):
            x = np.linspace(0.1, 1.0, self.veclen) + i
            for _ in range(self.spins):
                x = np.sqrt(np.abs(np.sin(x)) + 0.5)
            out[k] = float(x.sum())
        return out


class GaussianPeakWorkload(Workload):
    """Smooth hump: ``L(i) = floor_ + amp * exp(-((i-mu)/width)^2)``.

    A differentiable stand-in for the Mandelbrot column profile
    (Figure 1a): cheap at the edges, expensive around the peak.
    """

    name = "gaussian-peak"

    def __init__(
        self,
        size: int,
        amplitude: float = 100.0,
        floor: float = 1.0,
        center: Optional[float] = None,
        width: Optional[float] = None,
    ) -> None:
        super().__init__(size)
        if amplitude < 0 or floor <= 0:
            raise WorkloadError(
                f"need amplitude >= 0 and floor > 0, got {amplitude}, {floor}"
            )
        self.amplitude = float(amplitude)
        self.floor = float(floor)
        self.center = float(center) if center is not None else size / 2.0
        self.width = float(width) if width is not None else max(size / 6.0, 1.0)

    def _compute_costs(self) -> np.ndarray:
        i = np.arange(self.size, dtype=np.float64)
        return self.floor + self.amplitude * np.exp(
            -(((i - self.center) / self.width) ** 2)
        )
