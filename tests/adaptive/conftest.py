"""Shared helpers for the adaptive meta-scheduler suite."""

from __future__ import annotations

from repro.core.base import WorkerView


def drain(scheduler, workers=None):
    """Drive a scheduler to exhaustion round-robin; returns the
    ``(worker, start, stop)`` ledger in assignment order.

    The standalone analogue of the master loop: workers request in a
    fixed rotation, which for the adaptive scheduler exercises stage
    opening/closing without any substrate attached.
    """
    p = workers if workers is not None else scheduler.workers
    views = [WorkerView(worker_id=i) for i in range(p)]
    ledger = []
    i = 0
    while not scheduler.finished:
        chunk = scheduler.next_chunk(views[i % p])
        if chunk is None:
            break
        ledger.append((i % p, chunk.start, chunk.stop))
        i += 1
    return ledger
