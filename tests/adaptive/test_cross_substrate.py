"""Cross-substrate identity: adaptive decisions replay everywhere.

In the default cost-feedback mode the policy's observations are the
workload's per-chunk costs -- known at assignment time, identical on
every substrate -- so one spec + seed + workload must produce the same
chunk ledger, the same decision log, and the same canonical event
stream on the virtual-time simulator and the real multiprocessing
runtime, *including* under a seeded fault plan (requeued intervals are
reassigned verbatim, bypassing the scheduler, on both substrates).

Candidates are restricted to the order-invariant set: FSS-family
ladders depend on request arrival order, which wall-clock scheduling
does not reproduce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import FaultPlan, run_chaos
from repro.core import make
from repro.obs import capture, canonical_stream, stream_digest
from repro.runtime import run_parallel
from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.verify import audit_adaptive, audit_run, audit_sim
from repro.workloads import SpinWorkload

SPEC = "adaptive:TSS+GSS+CSS(16)@5"
N_WORKERS = 3


@pytest.fixture(scope="module")
def workload():
    return SpinWorkload(60, spins=50, veclen=4096)


@pytest.fixture(scope="module")
def serial(workload):
    return workload.execute_serial()


def sim_cluster(n: int = N_WORKERS) -> ClusterSpec:
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


def test_clean_run_same_ledger_and_stream(workload, serial):
    sim_sched = make(SPEC, workload.size, N_WORKERS, seed=1)
    with capture() as sim_trace:
        sim = simulate(sim_sched, workload, sim_cluster(),
                       collect_results=True, collector=sim_trace)
    run_sched = make(SPEC, workload.size, N_WORKERS, seed=1)
    with capture() as run_trace:
        run = run_parallel(run_sched, workload, N_WORKERS,
                           collector=run_trace)

    # identical decisions, identical interval sets, identical results
    assert sim_sched.decisions == run_sched.decisions
    assert sorted((s, e) for _w, s, e in [
        (c.worker, c.start, c.stop) for c in sim.chunks
    ]) == sorted((s, e) for _w, s, e in run.chunks)
    np.testing.assert_array_equal(sim.results, serial)
    np.testing.assert_array_equal(run.results, serial)

    # the canonical streams (result intervals, clocks stripped) match
    assert canonical_stream(sim_trace.events) == canonical_stream(
        run_trace.events
    )
    assert stream_digest(sim_trace.events) == stream_digest(
        run_trace.events
    )
    # both legs pass the adaptive audit against their own logs
    audit_adaptive(sim, sim_sched, total=workload.size,
                   workers=N_WORKERS).raise_if_failed()
    audit_adaptive(run.chunks, run_sched, total=workload.size,
                   workers=N_WORKERS).raise_if_failed()
    # and both traces carry adapt events describing the same decisions
    sim_adapt = [e.detail for e in sim_trace.events
                 if e.kind == "adapt"]
    run_adapt = [e.detail for e in run_trace.events
                 if e.kind == "adapt"]
    assert sim_adapt and sim_adapt == run_adapt


@pytest.mark.parametrize("seed", [0, 2])
def test_same_fault_plan_sim_vs_runtime(seed, workload, serial):
    plan = FaultPlan.random(seed=seed, workers=N_WORKERS, horizon=1.0)

    clean = simulate("TSS", workload, sim_cluster())
    sim_sched = make(SPEC, workload.size, N_WORKERS, seed=seed)
    with capture() as sim_trace:
        sim = simulate(
            sim_sched, workload, sim_cluster(),
            chaos=plan.scaled(0.5 * clean.t_p), collect_results=True,
            collector=sim_trace,
        )
    audit_sim(sim, workload.size).raise_if_failed()
    np.testing.assert_array_equal(sim.results, serial)

    run_sched = make(SPEC, workload.size, N_WORKERS, seed=seed)
    with capture() as run_trace:
        run = run_chaos(run_sched, workload, N_WORKERS, plan,
                        time_scale=0.15, collector=run_trace)
    audit_run(run, workload=workload,
              workers=N_WORKERS).raise_if_failed()
    np.testing.assert_array_equal(run.results, serial)

    # same decisions under the same plan on both substrates
    assert sim_sched.decisions == run_sched.decisions
    audit_adaptive(sim, sim_sched, total=workload.size,
                   workers=N_WORKERS).raise_if_failed()
    audit_adaptive(run.chunks, run_sched, total=workload.size,
                   workers=N_WORKERS).raise_if_failed()
    # matching canonical streams: the wall-clock-free result ledger is
    # substrate-invariant even under faults
    assert stream_digest(sim_trace.events) == stream_digest(
        run_trace.events
    )
