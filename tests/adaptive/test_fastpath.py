"""The analytic fast path must refuse feedback-dependent schedulers.

The fast path collapses a run to the scheme's chunk recurrence under
the fault-free, homogeneous assumptions -- but the adaptive scheduler's
recurrence *is* the feedback it observes, so there is nothing to
collapse.  ``fast="auto"`` must fall back to the DES silently;
``fast=True`` must fail loudly with the reason.
"""

from __future__ import annotations

import pytest

from repro.core import make
from repro.simulation import ClusterSpec, NodeSpec, SimulationError, simulate
from repro.simulation.fastpath import master_fast_reason
from repro.workloads import UniformWorkload

WL = UniformWorkload(size=400, unit=2.0)


def _cluster(n=4):
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


def test_fast_reason_names_feedback_dependence():
    from repro.simulation.engine import MasterSlaveSimulation

    sim = MasterSlaveSimulation(
        make("adaptive:TSS+GSS", WL.size, 4), WL, _cluster()
    )
    reason = master_fast_reason(sim)
    assert reason is not None
    assert "feedback-dependent" in reason


def test_fast_true_raises_with_clear_error():
    with pytest.raises(SimulationError) as exc:
        simulate("adaptive:TSS+GSS", WL, _cluster(), fast=True)
    msg = str(exc.value)
    assert "fast=True" in msg
    assert "feedback-dependent" in msg


def test_fast_auto_falls_back_to_des():
    auto = simulate("adaptive:TSS+GSS@4", WL, _cluster(), fast="auto")
    des = simulate("adaptive:TSS+GSS@4", WL, _cluster(), fast=False)
    assert auto.t_p == des.t_p
    assert [
        (c.worker, c.start, c.stop) for c in auto.chunks
    ] == [(c.worker, c.start, c.stop) for c in des.chunks]


def test_fixed_schemes_still_take_the_fast_path():
    """The guard is scoped: plain schemes on the same cluster stay
    fast-path eligible."""
    from repro.simulation.engine import MasterSlaveSimulation

    sim = MasterSlaveSimulation(make("TSS", WL.size, 4), WL, _cluster())
    assert master_fast_reason(sim) is None
