"""Scenario-matrix regression: adaptive never loses badly.

The acceptance bound for the meta-scheduler: across a grid of workload
shapes x fault scenarios on a heterogeneous cluster, the adaptive
makespan stays within 5% of the *best fixed candidate of that cell* --
a bar no single fixed scheme clears, since each cell has a different
winner.  Marked ``slow``: the full grid simulates dozens of runs, so
tier-1 skips it (``-m "not slow"`` in the default addopts) and the
dedicated CI job runs it with cached cost profiles.
"""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan
from repro.simulation import simulate
from repro.workloads import (
    GaussianPeakWorkload,
    LinearWorkload,
    UniformWorkload,
)

from ..conftest import make_cluster

pytestmark = pytest.mark.slow

TOTAL = 1600
WORKERS = 4
CANDIDATES = ("TSS", "FSS", "GSS")
ADAPTIVE = "adaptive:" + "+".join(CANDIDATES) + "@10"
#: adaptive t_p <= best fixed t_p * BOUND per cell (the ISSUE bar).
BOUND = 1.05

WORKLOADS = {
    "uniform": lambda: UniformWorkload(TOTAL, unit=5.0),
    "peak": lambda: GaussianPeakWorkload(TOTAL, amplitude=50.0),
    "decreasing": lambda: LinearWorkload(TOTAL, increasing=False,
                                         base=40.0, slope=0.02),
}
SCENARIOS = {
    "clean": None,
    "spike": dict(deaths=0, delays=0, losses=0, stalls=0, spikes=3),
    "chaos": dict(deaths=1, spikes=1),
}


def _cell_kwargs(scenario, seed, ref_tp):
    plan_kwargs = SCENARIOS[scenario]
    if plan_kwargs is None:
        return {}
    plan = FaultPlan.random(seed, workers=WORKERS, horizon=1.0,
                            **plan_kwargs)
    return {"chaos": plan.scaled(0.5 * ref_tp)}


@pytest.mark.parametrize("scenario", list(SCENARIOS))
@pytest.mark.parametrize("wl_name", list(WORKLOADS))
@pytest.mark.parametrize("seed", [0, 1])
def test_adaptive_within_5pct_of_best_fixed(wl_name, scenario, seed):
    wl = WORKLOADS[wl_name]()
    cluster = make_cluster()
    ref_tp = simulate("TSS", wl, cluster).t_p
    kwargs = _cell_kwargs(scenario, seed, ref_tp)

    fixed = {
        scheme: simulate(scheme, wl, cluster, **kwargs).t_p
        for scheme in CANDIDATES
    }
    adaptive = simulate(ADAPTIVE, wl, cluster, seed=seed, **kwargs).t_p

    best_scheme = min(fixed, key=fixed.get)
    best = fixed[best_scheme]
    assert adaptive <= best * BOUND, (
        f"cell ({wl_name}, {scenario}, seed={seed}): adaptive "
        f"{adaptive:.4f}s vs best fixed {best_scheme} {best:.4f}s "
        f"(ratio {adaptive / best:.3f} > {BOUND})"
    )
