"""Property tests: the adaptive guarantees hold over the input space.

Two invariants no policy decision may break:

* the concatenated stages tile ``[0, N)`` exactly once, and each
  order-invariant stage's cut points replay from the decision log
  (``repro.verify.audit_adaptive`` checks both);
* the whole trajectory is a pure function of (spec, seed, workload) --
  same inputs, bit-identical ledger and decision log.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make
from repro.verify import audit_adaptive
from repro.workloads import GaussianPeakWorkload, UniformWorkload

from .conftest import drain

# Candidate pool for generated specs.  All order-invariant, so the
# audit's per-stage cut-point replay applies to every stage.
POOL = ("TSS", "GSS", "CSS(16)", "CSS(64)", "SS", "BC(8)")


specs = st.builds(
    lambda cands, stages: "adaptive:" + "+".join(cands) + f"@{stages}",
    st.lists(st.sampled_from(POOL), min_size=1, max_size=4,
             unique=True),
    st.integers(min_value=1, max_value=9),
)


@given(
    spec=specs,
    total=st.integers(min_value=1, max_value=3000),
    workers=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_stages_tile_exactly_once_and_conform(spec, total, workers,
                                              seed):
    sched = make(spec, total, workers, seed=seed)
    ledger = drain(sched)
    spans = sorted((s, e) for _w, s, e in ledger)
    cursor = 0
    for start, stop in spans:
        assert start == cursor, f"gap or overlap at {start}"
        assert stop > start
        cursor = stop
    assert cursor == total
    # the audit re-derives the same invariant from the decision log,
    # plus per-stage cut-point conformance against a pure replay
    report = audit_adaptive(ledger, sched, total=total, workers=workers)
    report.raise_if_failed()
    assert "stage-tiling" in report.checks
    assert "stage-conformance" in report.checks


@given(
    spec=specs,
    total=st.integers(min_value=2, max_value=1500),
    workers=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
    peaked=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_same_seed_is_bit_identical(spec, total, workers, seed, peaked):
    wl = (
        GaussianPeakWorkload(total, amplitude=40.0)
        if peaked else UniformWorkload(total)
    )

    def run():
        sched = make(spec, total, workers, seed=seed)
        sched.bind_workload(wl)
        return drain(sched), list(sched.decisions)

    ledger_a, decisions_a = run()
    ledger_b, decisions_b = run()
    assert ledger_a == ledger_b
    assert decisions_a == decisions_b


@given(
    total=st.integers(min_value=10, max_value=1000),
    workers=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=30, deadline=None)
def test_stage_windows_abut_in_decision_log(total, workers, seed):
    sched = make("adaptive:TSS+FSS+GSS", total, workers, seed=seed)
    drain(sched)
    cursor = 0
    for d in sched.stage_decisions():
        assert d.base == cursor
        assert d.size >= 1
        cursor += d.size
    assert cursor == total
