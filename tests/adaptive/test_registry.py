"""Spec parsing and error reporting for ``adaptive:...`` strings.

Every string entry point (simulate, run_parallel, SimJob, the CLIs)
funnels through ``registry.parse``, so a malformed spec must die there
with a message that names the problem *and* the valid alternatives.
"""

from __future__ import annotations

import pytest

from repro.adaptive import DEFAULT_CANDIDATES, AdaptiveScheduler
from repro.core import make, names, registry
from repro.core.base import SchemeError


class TestParse:
    def test_bare_adaptive_uses_defaults(self):
        key, kwargs = registry.parse("adaptive")
        assert key == "ADAPTIVE"
        assert kwargs == {}

    def test_candidates_and_stages(self):
        key, kwargs = registry.parse("adaptive:TSS+FSS@8")
        assert key == "ADAPTIVE"
        assert kwargs == {"candidates": ("TSS", "FSS"), "stages": 8}

    def test_case_insensitive_with_inline_candidate(self):
        _, kwargs = registry.parse("Adaptive:tss+css(64)")
        assert kwargs["candidates"] == ("TSS", "CSS(64)")

    def test_stages_only(self):
        _, kwargs = registry.parse("adaptive@5")
        assert kwargs == {"stages": 5}

    def test_adaptive_listed_in_names(self):
        assert "ADAPTIVE" in names()


class TestMake:
    def test_make_builds_adaptive_scheduler(self):
        sched = make("adaptive:TSS+GSS@4", 1000, 4)
        assert isinstance(sched, AdaptiveScheduler)
        assert sched.candidates == ("TSS", "GSS")
        assert sched.stages == 4
        assert sched.feedback_dependent

    def test_make_defaults(self):
        sched = make("adaptive", 1000, 4)
        assert sched.candidates == DEFAULT_CANDIDATES
        assert sched.stages == len(DEFAULT_CANDIDATES) + 3

    def test_kwargs_forwarded(self):
        sched = make("adaptive:TSS+FSS", 500, 4, seed=7,
                     feedback="timing")
        assert sched.seed == 7
        assert sched.feedback == "timing"

    def test_describe_includes_candidates(self):
        info = make("adaptive:TSS+GSS", 100, 2).describe()
        assert info["params"]["candidates"] == "TSS+GSS"


class TestMalformedSpecs:
    """The satellite fix: errors must list what *would* be valid."""

    def test_unknown_scheme_error_lists_all_names(self):
        with pytest.raises(SchemeError) as exc:
            registry.parse("BOGUS")
        msg = str(exc.value)
        assert "TSS" in msg
        assert "ADAPTIVE" in msg

    def test_unknown_candidate(self):
        with pytest.raises(SchemeError) as exc:
            registry.parse("adaptive:TSS+NOPE")
        msg = str(exc.value)
        assert "NOPE" in msg
        assert "ADAPTIVE" in msg  # the name list rides along

    def test_empty_candidate_set(self):
        with pytest.raises(SchemeError, match="empty candidate"):
            registry.parse("adaptive:")

    def test_empty_candidate_in_list(self):
        with pytest.raises(SchemeError, match="empty candidate"):
            registry.parse("adaptive:TSS+@4")

    @pytest.mark.parametrize("spec", ["adaptive@0", "adaptive@-2",
                                      "adaptive:TSS@x"])
    def test_bad_stage_count(self, spec):
        with pytest.raises(SchemeError, match="stage count"):
            registry.parse(spec)

    def test_garbage_after_adaptive(self):
        with pytest.raises(SchemeError, match="malformed adaptive"):
            registry.parse("adaptively")

    def test_nested_adaptive(self):
        with pytest.raises(SchemeError, match="nests 'adaptive'"):
            registry.parse("adaptive:ADAPTIVE")

    def test_distributed_candidate_lists_fixed_schemes(self):
        with pytest.raises(SchemeError) as exc:
            registry.parse("adaptive:DTSS")
        msg = str(exc.value)
        assert "ACP-driven" in msg
        assert "TSS" in msg and "GSS" in msg

    def test_inline_param_error_lists_parameterizable(self):
        with pytest.raises(SchemeError) as exc:
            registry.parse("TSS(9)")
        msg = str(exc.value)
        assert "CSS" in msg and "GSS" in msg and "BC" in msg

    def test_constructor_rejects_bad_feedback(self):
        with pytest.raises(SchemeError, match="feedback"):
            AdaptiveScheduler(100, 2, feedback="vibes")

    def test_constructor_rejects_bad_explore_frac(self):
        with pytest.raises(SchemeError, match="explore_frac"):
            AdaptiveScheduler(100, 2, explore_frac=1.5)

    def test_constructor_rejects_empty_candidates(self):
        with pytest.raises(SchemeError, match="empty"):
            AdaptiveScheduler(100, 2, candidates=())

    def test_constructor_rejects_bad_stages(self):
        with pytest.raises(SchemeError, match="stage count"):
            AdaptiveScheduler(100, 2, stages=0)
